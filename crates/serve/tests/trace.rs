//! Span-invariant tests for request-lifecycle tracing: monotone stage
//! telescoping, exact stage-sum accounting, terminal events for requests
//! that never execute, and partial-span flushing when a replica panics.

use std::time::Duration;

use forms_dnn::{Layer, Network};
use forms_exec::{CrossbarEngine, ExecError, Executor, Merge};
use forms_rng::StdRng;
use forms_serve::{
    serve, PacedConfig, PacedEngine, ServeConfig, Server, StageDurations, TerminalKind,
    TraceConfig, STAGE_COUNT,
};
use forms_tensor::Tensor;
use forms_workloads::ActivationModel;

/// Exact digital matvec engine (mirrors the one in `tests/service.rs`):
/// isolates tracing behavior from any analog model.
#[derive(Clone, Debug)]
struct DigitalEngine {
    weights: Tensor,
    panic_on_code: Option<u32>,
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct DigitalStats {
    mvms: u64,
}

impl Merge for DigitalStats {
    fn merge(&mut self, other: Self) {
        self.mvms += other.mvms;
    }
}

#[derive(Clone, Copy, Debug)]
struct DigitalConfig {
    panic_on_code: Option<u32>,
}

impl CrossbarEngine for DigitalEngine {
    type Config = DigitalConfig;
    type Stats = DigitalStats;
    type Scratch = Vec<f32>;

    fn map_matrix(matrix: &Tensor, config: &DigitalConfig) -> Result<Self, ExecError> {
        Ok(Self {
            weights: matrix.clone(),
            panic_on_code: config.panic_on_code,
        })
    }

    fn output_len(&self) -> usize {
        self.weights.dims()[1]
    }

    fn matvec_into(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        scratch: &mut Vec<f32>,
        out: &mut [f32],
    ) -> DigitalStats {
        if let Some(code) = self.panic_on_code {
            assert!(
                !input_codes.contains(&code),
                "injected engine fault on sentinel code {code}"
            );
        }
        scratch.clear();
        scratch.extend(input_codes.iter().map(|&c| c as f32 * input_scale));
        let y = self.weights.transpose().matvec(scratch);
        out.copy_from_slice(&y);
        DigitalStats { mvms: 1 }
    }

    fn crossbar_count(&self) -> usize {
        1
    }

    fn mean_input_cycles(stats: &DigitalStats) -> Option<f64> {
        (stats.mvms > 0).then_some(1.0)
    }

    fn max_input_cycles(_config: &DigitalConfig) -> f64 {
        16.0
    }

    fn precision_of(_config: &DigitalConfig) -> forms_exec::LayerPrecision {
        forms_exec::LayerPrecision::new(32, 16)
    }

    fn with_precision(
        config: &DigitalConfig,
        _precision: forms_exec::LayerPrecision,
    ) -> DigitalConfig {
        *config
    }
}

const OK: DigitalConfig = DigitalConfig {
    panic_on_code: None,
};

fn linear_net(inputs: usize, outputs: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::new(vec![
        Layer::flatten(),
        Layer::linear(&mut rng, inputs, outputs),
    ])
}

fn payload(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    forms_workloads::synth_request(&mut rng, ActivationModel::half_normal(0.4), len)
}

/// Property: over many requests across replicas and batch shapes, every
/// completed response's stage durations telescope exactly to its
/// end-to-end latency, and the aggregated histograms agree with the sum.
#[test]
fn stage_durations_telescope_exactly_for_every_completed_request() {
    let net = linear_net(24, 5, 11);
    let exec = Executor::<DigitalEngine>::map_network(&net, &OK, 16).unwrap();
    let config = ServeConfig {
        replicas: 3,
        queue_capacity: 128,
        max_batch: 4,
        max_delay: Duration::from_micros(300),
        default_deadline: None,
    };
    let (responses, telemetry) = serve(&exec, &[1, 4, 6], &config, |handle| {
        let tickets: Vec<_> = (0..60)
            .map(|s| handle.submit(payload(24, s)).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().unwrap())
            .collect::<Vec<_>>()
    });
    assert_eq!(telemetry.completed, 60);
    for r in &responses {
        // Exact, not approximate: consecutive monotonic stamps telescope.
        assert_eq!(r.stages.total(), r.latency);
        assert_eq!(r.stages.queue_wait, r.queue_wait);
        let ns = r.stages.as_ns();
        assert_eq!(ns.len(), STAGE_COUNT);
        assert_eq!(ns.iter().sum::<u64>(), r.latency.as_nanos() as u64);
        assert!(r.stages.execute > Duration::ZERO, "execution takes time");
    }
    // Aggregate invariant: each stage histogram saw every completion and
    // the per-stage sums telescope to the latency histogram's sum.
    let stage_sum: u64 = telemetry.stages.in_order().iter().map(|h| h.sum_ns).sum();
    assert_eq!(stage_sum, telemetry.latency.sum_ns);
    for h in telemetry.stages.in_order() {
        assert_eq!(h.count, 60);
        assert!(h.p50_ns() <= h.p99_ns() + 1e-9);
    }
    // Per-layer attribution covers the weight layer that actually ran.
    assert!(telemetry.layers.iter().any(|l| l.mvms > 0));
    assert!(telemetry.layers.iter().any(|l| l.wall_ns > 0));
    // The slowest-span list is populated and sorted descending.
    assert!(!telemetry.slowest.is_empty());
    for w in telemetry.slowest.windows(2) {
        assert!(w[0].total_ns >= w[1].total_ns);
    }
    for s in &telemetry.slowest {
        assert_eq!(s.kind, TerminalKind::Completed);
        assert_eq!(s.stage_ns.iter().sum::<u64>(), s.total_ns);
    }
}

/// Requests that die before execution (shed at the door, expired in the
/// queue, cancelled) must carry no execute stage in their terminal events.
#[test]
fn requests_that_never_execute_carry_no_execute_stage() {
    let net = linear_net(8, 2, 12);
    let exec = Executor::<PacedEngine<DigitalEngine>>::map_network(
        &net,
        &PacedConfig {
            inner: OK,
            latency: Duration::from_millis(15),
        },
        16,
    )
    .unwrap();
    let config = ServeConfig {
        replicas: 1,
        queue_capacity: 2,
        max_batch: 1,
        max_delay: Duration::ZERO,
        default_deadline: Some(Duration::from_millis(3)),
    };
    let ((), telemetry) = serve(&exec, &[8], &config, |handle| {
        // Blast a capacity-2 queue through a 15 ms device: the head
        // executes, queued requests expire, the overflow sheds.
        let tickets: Vec<_> = (0..16)
            .filter_map(|s| handle.submit(payload(8, s)).ok())
            .collect();
        for t in tickets {
            let _ = t.wait();
        }
    });
    assert!(telemetry.shed > 0, "overflow must shed");
    assert!(telemetry.expired > 0, "queued requests must expire");
    let execute = 2; // STAGE_NAMES position of the execute stage
    let mut seen_shed = 0;
    let mut seen_expired = 0;
    for event in &telemetry.events {
        match event.kind {
            TerminalKind::Shed => {
                seen_shed += 1;
                // Shed at the door: no batch was ever formed either.
                assert_eq!(event.stage_ns[1], 0, "shed span has no batch stage");
                assert_eq!(event.stage_ns[execute], 0, "shed span never executed");
            }
            TerminalKind::Expired => {
                seen_expired += 1;
                assert_eq!(event.stage_ns[execute], 0, "expired span never executed");
                assert!(event.stage_ns[0] > 0, "expiry happens after queue wait");
            }
            _ => {}
        }
        // Terminal events account all stamped time: partial stages sum to
        // the recorded total.
        assert_eq!(event.stage_ns.iter().sum::<u64>(), event.total_ns);
    }
    assert!(seen_shed > 0, "shed events reach the ring");
    assert!(seen_expired > 0, "expiry events reach the ring");
}

/// Hardening regression: a replica whose engine panics mid-batch still
/// flushes each request's partial span as a `Failed` terminal event, with
/// stages stamped up to the execution attempt and nothing after it.
#[test]
fn panicking_replica_flushes_partial_spans_as_terminal_events() {
    let net = linear_net(8, 2, 13);
    let exec = Executor::<DigitalEngine>::map_network(
        &net,
        &DigitalConfig {
            // The quantizer maps each sample's max activation to the top
            // code, so every all-positive payload contains it.
            panic_on_code: Some((1 << 16) - 1),
        },
        16,
    )
    .unwrap();
    let config = ServeConfig {
        replicas: 2,
        queue_capacity: 32,
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        default_deadline: None,
    };
    let (results, telemetry) = Server::builder()
        .config(config)
        .trace(TraceConfig {
            event_capacity: 64,
            slowest_capacity: 4,
        })
        .run(&exec, &[8], |handle| {
            let tickets: Vec<_> = (0..10)
                .map(|s| handle.submit(payload(8, s)).unwrap())
                .collect();
            tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
        });
    assert_eq!(results.len(), 10);
    assert_eq!(telemetry.failed, 10);
    let failed: Vec<_> = telemetry
        .events
        .iter()
        .filter(|e| e.kind == TerminalKind::Failed)
        .collect();
    assert_eq!(failed.len(), 10, "every failed request flushed its span");
    for event in failed {
        // The span died at the execution attempt: queue-wait, batch-form
        // and execute are stamped; respond never happened.
        assert!(event.stage_ns[2] > 0, "execution attempt was stamped");
        assert_eq!(event.stage_ns[3], 0, "no respond stage after a panic");
        assert_eq!(event.stage_ns.iter().sum::<u64>(), event.total_ns);
    }
}

/// Zeroed trace capacities disable event capture without touching the
/// stage histograms — the allocation-free hot path stays on.
#[test]
fn zero_trace_capacities_disable_events_but_not_stage_histograms() {
    let net = linear_net(8, 2, 14);
    let exec = Executor::<DigitalEngine>::map_network(&net, &OK, 16).unwrap();
    let ((), telemetry) = Server::builder()
        .trace(TraceConfig {
            event_capacity: 0,
            slowest_capacity: 0,
        })
        .run(&exec, &[8], |handle| {
            for s in 0..5 {
                handle.submit(payload(8, s)).unwrap().wait().unwrap();
            }
        });
    assert_eq!(telemetry.completed, 5);
    assert!(telemetry.events.is_empty());
    assert!(telemetry.slowest.is_empty());
    for h in telemetry.stages.in_order() {
        assert_eq!(h.count, 5, "histograms stay on with events disabled");
    }
    let total: Duration = telemetry
        .stages
        .in_order()
        .iter()
        .map(|h| Duration::from_nanos(h.sum_ns))
        .sum();
    assert_eq!(total, Duration::from_nanos(telemetry.latency.sum_ns));
    // StageDurations default is the zero breakdown.
    assert_eq!(StageDurations::default().total(), Duration::ZERO);
}
