//! Integration tests for the serving subsystem: correctness against the
//! direct forward path, bounded memory under overload, deadline and
//! cancellation semantics, and panic containment during drain.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use forms_dnn::{Layer, Network};
use forms_exec::{CrossbarEngine, ExecError, Executor, Merge};
use forms_rng::StdRng;
use forms_serve::{
    run_open_loop, serve, OpenLoopSpec, PacedConfig, PacedEngine, ServeConfig, ServeError,
};
use forms_tensor::Tensor;
use forms_workloads::ActivationModel;

/// Exact digital matvec engine: isolates serving-layer behavior from any
/// analog model while exercising the full `CrossbarEngine` plumbing.
#[derive(Clone, Debug)]
struct DigitalEngine {
    weights: Tensor,
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct DigitalStats {
    mvms: u64,
}

impl Merge for DigitalStats {
    fn merge(&mut self, other: Self) {
        self.mvms += other.mvms;
    }
}

#[derive(Debug, Default)]
struct DigitalScratch {
    x: Vec<f32>,
}

/// Configuration for [`DigitalEngine`]: a sentinel input code that makes
/// `matvec_into` panic, for fault-injection tests (`None` disables).
#[derive(Clone, Copy, Debug)]
struct DigitalConfig {
    panic_on_code: Option<u32>,
}

impl CrossbarEngine for DigitalEngine {
    type Config = DigitalConfig;
    type Stats = DigitalStats;
    type Scratch = DigitalScratch;

    fn map_matrix(matrix: &Tensor, _config: &DigitalConfig) -> Result<Self, ExecError> {
        Ok(Self {
            weights: matrix.clone(),
        })
    }

    fn output_len(&self) -> usize {
        self.weights.dims()[1]
    }

    fn matvec_into(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        scratch: &mut DigitalScratch,
        out: &mut [f32],
    ) -> DigitalStats {
        scratch.x.clear();
        scratch
            .x
            .extend(input_codes.iter().map(|&c| c as f32 * input_scale));
        let y = self.weights.transpose().matvec(&scratch.x);
        out.copy_from_slice(&y);
        DigitalStats { mvms: 1 }
    }

    fn crossbar_count(&self) -> usize {
        1
    }

    fn mean_input_cycles(stats: &DigitalStats) -> Option<f64> {
        (stats.mvms > 0).then_some(1.0)
    }

    fn max_input_cycles(_config: &DigitalConfig) -> f64 {
        16.0
    }

    fn precision_of(_config: &DigitalConfig) -> forms_exec::LayerPrecision {
        forms_exec::LayerPrecision::new(32, 16)
    }

    fn with_precision(
        config: &DigitalConfig,
        _precision: forms_exec::LayerPrecision,
    ) -> DigitalConfig {
        *config
    }
}

/// A variant whose matvec panics when the sentinel code appears in the
/// input — models a replica whose device driver dies mid-batch.
#[derive(Clone, Debug)]
struct FaultyEngine {
    inner: DigitalEngine,
    panic_on_code: Option<u32>,
}

impl CrossbarEngine for FaultyEngine {
    type Config = DigitalConfig;
    type Stats = DigitalStats;
    type Scratch = DigitalScratch;

    fn map_matrix(matrix: &Tensor, config: &DigitalConfig) -> Result<Self, ExecError> {
        Ok(Self {
            inner: DigitalEngine::map_matrix(matrix, config)?,
            panic_on_code: config.panic_on_code,
        })
    }

    fn output_len(&self) -> usize {
        self.inner.output_len()
    }

    fn matvec_into(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        scratch: &mut DigitalScratch,
        out: &mut [f32],
    ) -> DigitalStats {
        if let Some(code) = self.panic_on_code {
            assert!(
                !input_codes.contains(&code),
                "injected engine fault on sentinel code {code}"
            );
        }
        self.inner
            .matvec_into(input_codes, input_scale, scratch, out)
    }

    fn crossbar_count(&self) -> usize {
        1
    }

    fn mean_input_cycles(stats: &DigitalStats) -> Option<f64> {
        DigitalEngine::mean_input_cycles(stats)
    }

    fn max_input_cycles(config: &DigitalConfig) -> f64 {
        DigitalEngine::max_input_cycles(config)
    }

    fn precision_of(config: &DigitalConfig) -> forms_exec::LayerPrecision {
        DigitalEngine::precision_of(config)
    }

    fn with_precision(
        config: &DigitalConfig,
        precision: forms_exec::LayerPrecision,
    ) -> DigitalConfig {
        DigitalEngine::with_precision(config, precision)
    }
}

const OK: DigitalConfig = DigitalConfig {
    panic_on_code: None,
};

fn linear_net(inputs: usize, outputs: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::new(vec![
        Layer::flatten(),
        Layer::linear(&mut rng, inputs, outputs),
    ])
}

fn payload(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    forms_workloads::synth_request(&mut rng, ActivationModel::half_normal(0.4), len)
}

#[test]
fn served_outputs_match_direct_forward_bitwise() {
    let net = linear_net(24, 5, 1);
    let exec = Executor::<DigitalEngine>::map_network(&net, &OK, 16).unwrap();
    let mut reference = exec.clone();
    let config = ServeConfig {
        replicas: 2,
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let inputs: Vec<Vec<f32>> = (0..12).map(|s| payload(24, s)).collect();
    let (outputs, telemetry) = serve(&exec, &[1, 4, 6], &config, |handle| {
        let tickets: Vec<_> = inputs
            .iter()
            .map(|p| handle.submit(p.clone()).unwrap())
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().unwrap())
            .collect::<Vec<_>>()
    });
    assert_eq!(telemetry.completed, 12);
    assert_eq!(telemetry.shed, 0);
    // Per-sample activation quantization makes batched serving bitwise
    // equal to serial single-sample forwards, whatever batches formed.
    for (input, response) in inputs.iter().zip(&outputs) {
        let x = Tensor::from_vec(input.clone(), &[1, 1, 4, 6]);
        let y = reference.forward(&x);
        assert_eq!(response.output, y.data());
        assert!(response.batch_size >= 1);
        assert!(response.latency >= response.queue_wait);
    }
}

#[test]
fn overload_sheds_instead_of_growing_the_queue() {
    let net = linear_net(16, 4, 2);
    let exec = Executor::<PacedEngine<DigitalEngine>>::map_network(
        &net,
        &PacedConfig {
            inner: OK,
            latency: Duration::from_millis(5),
        },
        16,
    )
    .unwrap();
    // One slow replica, a tiny queue, and a burst far beyond capacity.
    let config = ServeConfig {
        replicas: 1,
        queue_capacity: 4,
        max_batch: 2,
        max_delay: Duration::ZERO,
        default_deadline: None,
    };
    let max_queue = Arc::new(AtomicUsize::new(0));
    let observer = Arc::clone(&max_queue);
    let ((), telemetry) = serve(&exec, &[16], &config, move |handle| {
        let mut tickets = Vec::new();
        for s in 0..64 {
            match handle.submit(payload(16, s)) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Shed) => {}
                Err(e) => panic!("unexpected submit error: {e}"),
            }
            observer.fetch_max(handle.queue_len(), Ordering::SeqCst);
        }
        for t in tickets {
            t.wait().unwrap();
        }
    });
    assert!(telemetry.shed > 0, "burst must overflow the tiny queue");
    assert_eq!(telemetry.submitted, 64);
    assert_eq!(
        telemetry.resolved(),
        64,
        "every offered request has a terminal outcome"
    );
    assert!(
        max_queue.load(Ordering::SeqCst) <= config.queue_capacity,
        "queue never exceeds its bound"
    );
}

#[test]
fn expired_requests_are_rejected_not_executed() {
    let net = linear_net(8, 2, 3);
    let exec = Executor::<PacedEngine<DigitalEngine>>::map_network(
        &net,
        &PacedConfig {
            inner: OK,
            latency: Duration::from_millis(20),
        },
        16,
    )
    .unwrap();
    let config = ServeConfig {
        replicas: 1,
        queue_capacity: 16,
        max_batch: 1,
        max_delay: Duration::ZERO,
        default_deadline: Some(Duration::from_millis(5)),
    };
    let (results, telemetry) = serve(&exec, &[8], &config, |handle| {
        // The first request occupies the replica for ~20 ms; the rest sit
        // queued past their 5 ms budget and must be rejected unexecuted.
        let tickets: Vec<_> = (0..4)
            .map(|s| handle.submit(payload(8, s)).unwrap())
            .collect();
        tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
    });
    assert!(results[0].is_ok(), "head of line completes");
    let expired = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::DeadlineExceeded)))
        .count();
    assert!(expired >= 2, "queued requests expired, got {results:?}");
    assert_eq!(telemetry.expired as usize, expired);
    assert_eq!(telemetry.resolved(), 4);
}

#[test]
fn cancellation_resolves_without_execution() {
    let net = linear_net(8, 2, 4);
    let exec = Executor::<PacedEngine<DigitalEngine>>::map_network(
        &net,
        &PacedConfig {
            inner: OK,
            latency: Duration::from_millis(20),
        },
        16,
    )
    .unwrap();
    let config = ServeConfig {
        replicas: 1,
        queue_capacity: 16,
        max_batch: 1,
        max_delay: Duration::ZERO,
        default_deadline: None,
    };
    let (result, telemetry) = serve(&exec, &[8], &config, |handle| {
        let head = handle.submit(payload(8, 0)).unwrap();
        let victim = handle.submit(payload(8, 1)).unwrap();
        victim.cancel();
        let head_result = head.wait();
        let victim_result = victim.wait();
        (head_result, victim_result)
    });
    assert!(result.0.is_ok());
    assert_eq!(result.1.unwrap_err(), ServeError::Cancelled);
    assert_eq!(telemetry.cancelled, 1);
    assert_eq!(telemetry.completed, 1);
}

#[test]
fn bad_shape_is_refused_at_the_door() {
    let net = linear_net(8, 2, 5);
    let exec = Executor::<DigitalEngine>::map_network(&net, &OK, 16).unwrap();
    let ((), telemetry) = serve(&exec, &[8], &ServeConfig::default(), |handle| {
        let err = handle.submit(vec![0.0; 7]).unwrap_err();
        assert_eq!(
            err,
            ServeError::BadShape {
                expected: 8,
                got: 7
            }
        );
    });
    assert_eq!(telemetry.completed, 0);
}

#[test]
fn panicking_engine_fails_its_batch_and_service_drains() {
    let net = linear_net(8, 2, 6);
    let exec = Executor::<FaultyEngine>::map_network(
        &net,
        &DigitalConfig {
            // The quantizer maps each sample's max activation to the top
            // code, so every all-positive payload contains it.
            panic_on_code: Some((1 << 16) - 1),
        },
        16,
    )
    .unwrap();
    let config = ServeConfig {
        replicas: 2,
        queue_capacity: 32,
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        default_deadline: None,
    };
    // Must terminate: a panicking replica may not hang shutdown. The
    // harness's per-test timeout would catch a deadlock here.
    let (results, telemetry) = serve(&exec, &[8], &config, |handle| {
        let tickets: Vec<_> = (0..10)
            .map(|s| handle.submit(payload(8, s)).unwrap())
            .collect();
        tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
    });
    assert_eq!(results.len(), 10);
    for r in &results {
        assert_eq!(r.as_ref().unwrap_err(), &ServeError::EngineFailed);
    }
    assert_eq!(telemetry.failed, 10);
    assert_eq!(telemetry.resolved(), 10);
}

#[test]
fn open_loop_load_generator_accounts_every_request() {
    let net = linear_net(16, 4, 7);
    let exec = Executor::<DigitalEngine>::map_network(&net, &OK, 16).unwrap();
    let config = ServeConfig {
        replicas: 2,
        queue_capacity: 32,
        max_batch: 4,
        max_delay: Duration::from_millis(1),
        default_deadline: None,
    };
    let spec = OpenLoopSpec {
        rate_rps: 2000.0,
        requests: 100,
        seed: 42,
        model: ActivationModel::half_normal(0.4),
        deadline: None,
    };
    let (report, telemetry) = serve(&exec, &[16], &config, |handle| run_open_loop(handle, &spec));
    assert_eq!(report.offered, 100);
    assert_eq!(
        report.completed + report.shed + report.expired + report.failed,
        100
    );
    assert!(report.completed > 0);
    assert_eq!(report.latencies.len(), report.completed);
    assert_eq!(telemetry.completed as usize, report.completed);
    assert!(report.throughput_rps() > 0.0);
    let p50 = report.latency_quantile(0.5).unwrap();
    let p99 = report.latency_quantile(0.99).unwrap();
    assert!(p50 <= p99);
}

#[test]
fn replicas_scale_throughput_with_paced_engines() {
    let net = linear_net(16, 4, 8);
    let exec = Executor::<PacedEngine<DigitalEngine>>::map_network(
        &net,
        &PacedConfig {
            inner: OK,
            latency: Duration::from_millis(4),
        },
        16,
    )
    .unwrap();
    // Saturating closed burst: wall clock is requests × 4 ms / replicas
    // (batching disabled), so 4 replicas must beat 1 clearly even with
    // scheduler noise on a single host core.
    let run = |replicas: usize| {
        let config = ServeConfig {
            replicas,
            queue_capacity: 64,
            max_batch: 1,
            max_delay: Duration::ZERO,
            default_deadline: None,
        };
        let start = std::time::Instant::now();
        let ((), _) = serve(&exec, &[16], &config, |handle| {
            let tickets: Vec<_> = (0..32)
                .map(|s| handle.submit(payload(16, s)).unwrap())
                .collect();
            for t in tickets {
                t.wait().unwrap();
            }
        });
        start.elapsed()
    };
    let one = run(1);
    let four = run(4);
    let speedup = one.as_secs_f64() / four.as_secs_f64();
    assert!(
        speedup > 1.5,
        "4 device-bound replicas should beat 1 by >1.5x, got {speedup:.2}x ({one:?} vs {four:?})"
    );
}
