//! A device-latency pacing wrapper around any [`CrossbarEngine`].
//!
//! The serving benches must measure the *serving layer* — queueing,
//! batching, replica overlap — not the host CPU. A real deployment runs one
//! accelerator device per replica, so while one replica's crossbars
//! integrate, the other replicas' devices are busy in parallel regardless
//! of how many host cores drive them. [`PacedEngine`] models that: every
//! MVM takes at least a configured device latency (the host computes the
//! result, then sleeps out the remainder of the device's occupancy
//! window). Replica throughput then scales with the number of modeled
//! devices, exactly as it would with physical hardware, even on a
//! single-core host.
//!
//! Pacing is against an *absolute* per-scratch deadline, not per-call
//! elapsed time: call `k`'s occupancy window ends at
//! `max(now, previous window end) + latency`, and the wait sleeps the
//! bulk then spins the final stretch so the deadline is met to
//! microseconds. Sleeping out a per-call remainder instead added the
//! sleep's overshoot (OS timer quantum, wakeup jitter — around a
//! millisecond) to every MVM, so sustained throughput drifted far below
//! the modeled `1/latency` and the error compounded with request count.

use std::time::{Duration, Instant};

use forms_exec::{
    CrossbarEngine, EngineHealth, ExecError, FaultCampaign, FaultReport, FaultableEngine,
};
use forms_tensor::Tensor;

/// Configuration for a paced engine: the wrapped engine's config plus the
/// modeled per-MVM device latency.
#[derive(Clone, Debug)]
pub struct PacedConfig<C> {
    /// Configuration forwarded to the wrapped engine.
    pub inner: C,
    /// Minimum wall-clock duration of one MVM (device occupancy window).
    pub latency: Duration,
}

/// A [`CrossbarEngine`] whose every MVM takes at least a fixed wall-clock
/// latency, modeling one attached accelerator device per replica.
///
/// Numerical results, statistics and crossbar counts are exactly those of
/// the wrapped engine — only timing changes.
#[derive(Clone, Debug)]
pub struct PacedEngine<E> {
    inner: E,
    latency: Duration,
}

impl<E> PacedEngine<E> {
    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The modeled per-MVM device latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }
}

/// Scratch of a [`PacedEngine`]: the wrapped engine's scratch plus the
/// absolute end of the last modeled occupancy window.
///
/// The deadline lives in the scratch — not the engine — because one mapped
/// engine is shared immutably across replica threads, each modeling its
/// *own* device; per-engine state would serialize replicas that own
/// separate devices.
#[derive(Debug, Default)]
pub struct PacedScratch<S> {
    inner: S,
    next_free: Option<Instant>,
}

impl<E: CrossbarEngine> CrossbarEngine for PacedEngine<E> {
    type Config = PacedConfig<E::Config>;
    type Stats = E::Stats;
    type Scratch = PacedScratch<E::Scratch>;

    fn map_matrix(matrix: &Tensor, config: &Self::Config) -> Result<Self, ExecError> {
        Ok(Self {
            inner: E::map_matrix(matrix, &config.inner)?,
            latency: config.latency,
        })
    }

    fn output_len(&self) -> usize {
        self.inner.output_len()
    }

    fn matvec_into(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        scratch: &mut Self::Scratch,
        out: &mut [f32],
    ) -> Self::Stats {
        let start = Instant::now();
        let stats = self
            .inner
            .matvec_into(input_codes, input_scale, &mut scratch.inner, out);
        // This MVM's occupancy window ends `latency` after the later of
        // "now" and the previous window's end: back-to-back MVMs chain off
        // the absolute schedule (sleep overshoot is absorbed by the next
        // window), while an idle gap restarts the schedule from the
        // current instant.
        let window_start = match scratch.next_free {
            Some(next_free) if next_free > start => next_free,
            _ => start,
        };
        let target = window_start + self.latency;
        scratch.next_free = Some(target);
        wait_until(target);
        stats
    }

    fn crossbar_count(&self) -> usize {
        self.inner.crossbar_count()
    }

    fn mean_input_cycles(stats: &Self::Stats) -> Option<f64> {
        E::mean_input_cycles(stats)
    }

    fn max_input_cycles(config: &Self::Config) -> f64 {
        E::max_input_cycles(&config.inner)
    }

    fn precision_of(config: &Self::Config) -> forms_exec::LayerPrecision {
        E::precision_of(&config.inner)
    }

    fn with_precision(
        config: &Self::Config,
        precision: forms_exec::LayerPrecision,
    ) -> Self::Config {
        PacedConfig {
            inner: E::with_precision(&config.inner, precision),
            latency: config.latency,
        }
    }

    fn health(&self) -> EngineHealth {
        self.inner.health()
    }

    fn output_ceiling(&self) -> Option<f64> {
        self.inner.output_ceiling()
    }
}

impl<E: FaultableEngine> FaultableEngine for PacedEngine<E> {
    fn inject_faults(&mut self, campaign: &FaultCampaign, salt: u64) -> FaultReport {
        self.inner.inject_faults(campaign, salt)
    }
}

/// OS sleeps overshoot by up to a timer quantum (≈1 ms on this class of
/// host) — far more than a sub-millisecond device latency. Sleep only
/// while more than this window remains, then spin out the tail, so the
/// deadline is met to microseconds instead of drifting a quantum per MVM.
const SPIN_WINDOW: Duration = Duration::from_millis(2);

/// Blocks until `target`, sleeping the bulk and spinning the last
/// [`SPIN_WINDOW`].
fn wait_until(target: Instant) {
    while let Some(remaining) = target.checked_duration_since(Instant::now()) {
        if remaining.is_zero() {
            break;
        }
        if remaining > SPIN_WINDOW {
            std::thread::sleep(remaining - SPIN_WINDOW);
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_exec::Merge;

    /// A free-running engine: zero compute, so elapsed time is pure pacing.
    #[derive(Clone, Debug)]
    struct Instant1x1;

    #[derive(Clone, Copy, Debug, Default)]
    struct NoStats;
    impl Merge for NoStats {
        fn merge(&mut self, _: Self) {}
    }

    impl CrossbarEngine for Instant1x1 {
        type Config = ();
        type Stats = NoStats;
        type Scratch = ();

        fn map_matrix(_: &Tensor, _: &()) -> Result<Self, ExecError> {
            Ok(Self)
        }
        fn output_len(&self) -> usize {
            1
        }
        fn matvec_into(&self, _: &[u32], _: f32, _: &mut (), out: &mut [f32]) -> NoStats {
            out[0] = 0.0;
            NoStats
        }
        fn crossbar_count(&self) -> usize {
            1
        }
        fn mean_input_cycles(_: &NoStats) -> Option<f64> {
            None
        }
        fn max_input_cycles(_: &()) -> f64 {
            1.0
        }
        fn precision_of(_: &()) -> forms_exec::LayerPrecision {
            forms_exec::LayerPrecision::new(32, 16)
        }
        fn with_precision(_: &(), _: forms_exec::LayerPrecision) {}
    }

    #[test]
    fn sustained_rate_tracks_the_modeled_latency_without_drift() {
        let latency = Duration::from_micros(500);
        let config = PacedConfig { inner: (), latency };
        let engine =
            PacedEngine::<Instant1x1>::map_matrix(&Tensor::ones(&[1, 1]), &config).expect("map");
        let mut scratch = PacedScratch::default();
        let mut out = [0.0f32];
        let k = 50u32;
        let start = Instant::now();
        for _ in 0..k {
            engine.matvec_into(&[1], 1.0, &mut scratch, &mut out);
        }
        let elapsed = start.elapsed();
        let modeled = latency * k;
        assert!(elapsed >= modeled, "paced below device rate: {elapsed:?}");
        // Per-call remainder sleeping accumulated the OS sleep overshoot
        // (tens of µs each on a 500 µs budget) into >25% drift over 50
        // calls; the absolute schedule only pays the final call's
        // overshoot.
        let ceiling = modeled.mul_f64(1.25) + Duration::from_millis(5);
        assert!(
            elapsed <= ceiling,
            "sustained rate drifted: {elapsed:?} for modeled {modeled:?}"
        );
    }

    #[test]
    fn idle_gaps_restart_the_schedule_instead_of_back_crediting() {
        let latency = Duration::from_micros(200);
        let config = PacedConfig { inner: (), latency };
        let engine =
            PacedEngine::<Instant1x1>::map_matrix(&Tensor::ones(&[1, 1]), &config).expect("map");
        let mut scratch = PacedScratch::default();
        let mut out = [0.0f32];
        engine.matvec_into(&[1], 1.0, &mut scratch, &mut out);
        // A long idle gap must not bank credit for free MVMs afterwards.
        std::thread::sleep(Duration::from_millis(5));
        let start = Instant::now();
        engine.matvec_into(&[1], 1.0, &mut scratch, &mut out);
        assert!(start.elapsed() >= latency, "idle credit leaked into pacing");
    }
}
