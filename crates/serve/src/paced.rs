//! A device-latency pacing wrapper around any [`CrossbarEngine`].
//!
//! The serving benches must measure the *serving layer* — queueing,
//! batching, replica overlap — not the host CPU. A real deployment runs one
//! accelerator device per replica, so while one replica's crossbars
//! integrate, the other replicas' devices are busy in parallel regardless
//! of how many host cores drive them. [`PacedEngine`] models that: every
//! MVM takes at least a configured device latency (the host computes the
//! result, then sleeps out the remainder of the device's occupancy
//! window). Replica throughput then scales with the number of modeled
//! devices, exactly as it would with physical hardware, even on a
//! single-core host.

use std::time::{Duration, Instant};

use forms_exec::{CrossbarEngine, ExecError};
use forms_tensor::Tensor;

/// Configuration for a paced engine: the wrapped engine's config plus the
/// modeled per-MVM device latency.
#[derive(Clone, Debug)]
pub struct PacedConfig<C> {
    /// Configuration forwarded to the wrapped engine.
    pub inner: C,
    /// Minimum wall-clock duration of one MVM (device occupancy window).
    pub latency: Duration,
}

/// A [`CrossbarEngine`] whose every MVM takes at least a fixed wall-clock
/// latency, modeling one attached accelerator device per replica.
///
/// Numerical results, statistics and crossbar counts are exactly those of
/// the wrapped engine — only timing changes.
#[derive(Clone, Debug)]
pub struct PacedEngine<E> {
    inner: E,
    latency: Duration,
}

impl<E> PacedEngine<E> {
    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The modeled per-MVM device latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }
}

impl<E: CrossbarEngine> CrossbarEngine for PacedEngine<E> {
    type Config = PacedConfig<E::Config>;
    type Stats = E::Stats;
    type Scratch = E::Scratch;

    fn map_matrix(matrix: &Tensor, config: &Self::Config) -> Result<Self, ExecError> {
        Ok(Self {
            inner: E::map_matrix(matrix, &config.inner)?,
            latency: config.latency,
        })
    }

    fn output_len(&self) -> usize {
        self.inner.output_len()
    }

    fn matvec_into(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        scratch: &mut Self::Scratch,
        out: &mut [f32],
    ) -> Self::Stats {
        let start = Instant::now();
        let stats = self.inner.matvec_into(input_codes, input_scale, scratch, out);
        // Sleep out the remainder of the device occupancy window; if the
        // host compute already exceeded it, the device was the faster side
        // and there is nothing to pace.
        if let Some(remainder) = self.latency.checked_sub(start.elapsed()) {
            if !remainder.is_zero() {
                std::thread::sleep(remainder);
            }
        }
        stats
    }

    fn crossbar_count(&self) -> usize {
        self.inner.crossbar_count()
    }

    fn mean_input_cycles(stats: &Self::Stats) -> Option<f64> {
        E::mean_input_cycles(stats)
    }

    fn max_input_cycles(config: &Self::Config) -> f64 {
        E::max_input_cycles(&config.inner)
    }
}
