//! A minimal JSON writer and parser, replacing the former `serde_json`
//! dependency.
//!
//! Only covers what the serving telemetry and experiment reports need —
//! strings, numbers, bools, arrays and objects, pretty-printed with
//! two-space indentation (the same layout `serde_json::to_string_pretty`
//! produced, so existing result files stay diffable). [`parse`] is the
//! inverse, used by `ci.sh` (through the bench binaries) to verify that
//! emitted `BENCH_*.json` files are well-formed.
//!
//! The module lives in `forms-serve` (it started in `forms-bench`, which
//! still re-exports it as `forms_bench::json`) so that
//! [`TelemetrySnapshot`](crate::TelemetrySnapshot) can render itself —
//! [`to_json`](crate::TelemetrySnapshot::to_json) /
//! [`from_json`](crate::TelemetrySnapshot::from_json) — and the `forms-net`
//! wire protocol can carry telemetry frames without depending on the
//! benchmark harness.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Number(f64),
    /// A string (escaped on output).
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array of strings.
    pub fn strings(items: &[String]) -> Self {
        JsonValue::Array(items.iter().cloned().map(JsonValue::String).collect())
    }

    /// Pretty-prints with two-space indentation and a trailing-newline-free
    /// body, matching `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// Accepts exactly the JSON subset [`JsonValue::pretty`] emits (which is
/// standard JSON), plus arbitrary inter-token whitespace.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first malformed token,
/// or of trailing garbage after the document.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("malformed number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        let v = JsonValue::String("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_object_layout_matches_serde_style() {
        let v = JsonValue::object(vec![
            ("id", JsonValue::String("Fig. 9".into())),
            (
                "rows",
                JsonValue::Array(vec![JsonValue::strings(&["a".into()])]),
            ),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let expected = "{\n  \"id\": \"Fig. 9\",\n  \"rows\": [\n    [\n      \"a\"\n    ]\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.pretty(), expected);
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::String("quoted \"x\"\n".into())),
            ("count", JsonValue::Number(3.0)),
            ("rate", JsonValue::Number(-1.25e3)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "items",
                JsonValue::Array(vec![
                    JsonValue::Number(1.0),
                    JsonValue::strings(&["a".into(), "µ".into()]),
                    JsonValue::Object(vec![]),
                    JsonValue::Array(vec![]),
                ]),
            ),
        ]);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_accessors_walk_the_tree() {
        let doc = parse("{\"a\": [1, {\"b\": \"c\"}]}").unwrap();
        let items = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].get("b").unwrap().as_str(), Some("c"));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// Generates an arbitrary [`JsonValue`] of bounded depth, biased
    /// toward the writer's tricky spots: escape-heavy strings, negative
    /// and exponent-range numbers, deep nesting, empty containers.
    fn arbitrary_value(rng: &mut StdRng, depth: usize) -> JsonValue {
        let leaf_only = depth == 0;
        match rng.next_u32() % if leaf_only { 4 } else { 6 } {
            0 => JsonValue::Null,
            1 => JsonValue::Bool(rng.next_u32().is_multiple_of(2)),
            2 => JsonValue::Number(arbitrary_number(rng)),
            3 => JsonValue::String(arbitrary_string(rng)),
            4 => {
                let n = (rng.next_u32() % 4) as usize;
                JsonValue::Array((0..n).map(|_| arbitrary_value(rng, depth - 1)).collect())
            }
            _ => {
                let n = (rng.next_u32() % 4) as usize;
                JsonValue::Object(
                    (0..n)
                        .map(|_| (arbitrary_string(rng), arbitrary_value(rng, depth - 1)))
                        .collect(),
                )
            }
        }
    }

    fn arbitrary_number(rng: &mut StdRng) -> f64 {
        let mantissa = (rng.next_u32() as i64) - (u32::MAX / 2) as i64;
        match rng.next_u32() % 4 {
            // Small integers: the writer's `as i64` fast path.
            0 => (mantissa % 1000) as f64,
            // Large integers near the 1e15 formatting boundary.
            1 => mantissa as f64 * 1e7,
            // Fractions.
            2 => mantissa as f64 / 997.0,
            // Exponent-notation range, both tiny and huge.
            _ => mantissa as f64 * 10f64.powi((rng.next_u32() % 60) as i32 - 30),
        }
    }

    fn arbitrary_string(rng: &mut StdRng) -> String {
        const POOL: &[char] = &[
            'a', 'Z', '9', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{8}', '\u{c}', '\u{1f}',
            '\u{7f}', 'µ', '√', '試', '🎉', '/',
        ];
        let n = (rng.next_u32() % 12) as usize;
        (0..n)
            .map(|_| POOL[(rng.next_u32() as usize) % POOL.len()])
            .collect()
    }

    use forms_rng::{Rng, StdRng};

    #[test]
    fn property_parse_inverts_pretty_on_arbitrary_values() {
        let mut rng = StdRng::seed_from_u64(0x150_B3DC);
        for case in 0..500 {
            let v = arbitrary_value(&mut rng, 4);
            let text = v.pretty();
            let reparsed = parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(reparsed, v, "case {case} did not round-trip:\n{text}");
        }
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(JsonValue::Number(3.0).pretty(), "3");
        assert_eq!(JsonValue::Number(3.25).pretty(), "3.25");
        assert_eq!(JsonValue::Number(f64::NAN).pretty(), "null");
        assert_eq!(JsonValue::Bool(true).pretty(), "true");
        assert_eq!(JsonValue::Null.pretty(), "null");
    }
}
