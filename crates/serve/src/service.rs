//! The serving core: admission, dynamic batching, replica workers and
//! graceful shutdown.
//!
//! A [`serve`] call turns a mapped [`Executor`] into a running service for
//! the duration of one client closure:
//!
//! ```text
//!  submit() ──► BoundedQueue ──► replica 0 ─┐
//!     │  shed on full  │   pop_batch        ├──► Slot ──► Ticket::wait()
//!     ▼                └─────► replica N-1 ─┘
//!  Err(Shed)
//! ```
//!
//! Each replica owns one warm [`InferenceSession`](forms_exec::InferenceSession)
//! (reused buffers, shared immutable engines) and loops: pop a batch
//! (blocking, with the dynamic-batching straggler window), drop requests
//! that were cancelled or whose deadline already passed — a request past
//! its latency budget is *rejected, not executed*, because its client has
//! given up — then run the survivors as one batched forward and fill each
//! request's response slot. Sessions lower every weight layer through the
//! engines' batched [`matmul_into`](forms_exec::CrossbarEngine::matmul_into)
//! hot path — one kernel call per layer for the whole admitted batch, with
//! per-sample activation scales and per-sample sentinel checks — so batched
//! results are bitwise identical to running each request alone.
//!
//! Failure containment: the forward runs under `catch_unwind`, so a
//! panicking engine fails its batch (every request gets
//! [`ServeError::EngineFailed`]) and the replica rebuilds its session and
//! keeps serving — one poisoned request cannot take a replica down, and
//! shutdown can never hang on an abandoned slot. The queue closes via a
//! drop guard even if the client closure panics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use forms_exec::{CrossbarEngine, Executor};
use forms_tensor::Tensor;

use crate::queue::{BoundedQueue, PushError};
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use crate::trace::{SpanRecord, StageDurations, TerminalKind, TraceConfig};

/// Service sizing and batching policy.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Replica worker threads, each owning one warm inference session.
    pub replicas: usize,
    /// Admission queue bound; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Largest batch one replica executes at once.
    pub max_batch: usize,
    /// How long a replica waits for stragglers after the batch head.
    pub max_delay: Duration,
    /// Deadline applied to every request submitted without an explicit
    /// one; `None` means no deadline.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            replicas: 1,
            queue_capacity: 64,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            default_deadline: None,
        }
    }
}

/// Why a request did not produce an output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full; the request was shed at the door.
    Shed,
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
    /// The request's deadline passed before a replica could execute it.
    DeadlineExceeded,
    /// The client cancelled the request before execution.
    Cancelled,
    /// The replica's engine panicked while executing the batch.
    EngineFailed,
    /// The owning replica was unhealthy (fault density over policy or an
    /// output-range sentinel tripped) and refused to return possibly
    /// corrupted results.
    Degraded,
    /// The payload length does not match the service's sample shape.
    BadShape {
        /// Expected flattened sample length.
        expected: usize,
        /// Length actually submitted.
        got: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Shed => write!(f, "request shed: admission queue full"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::DeadlineExceeded => write!(f, "deadline passed before execution"),
            Self::Cancelled => write!(f, "request cancelled by client"),
            Self::EngineFailed => write!(f, "replica engine failed on this batch"),
            Self::Degraded => write!(f, "replica degraded: refused possibly corrupted result"),
            Self::BadShape { expected, got } => {
                write!(f, "bad payload length: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed request's output and timing.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Flattened output vector for this sample.
    pub output: Vec<f32>,
    /// End-to-end latency: submission to completion. Always exactly
    /// [`StageDurations::total`] of `stages`.
    pub latency: Duration,
    /// Time spent queued before the executing batch formed. Always
    /// exactly the `queue_wait` stage of `stages`.
    pub queue_wait: Duration,
    /// Per-stage breakdown of `latency`: queue wait, batch formation,
    /// execution, and response delivery.
    pub stages: StageDurations,
    /// Number of requests in the batch that executed this one.
    pub batch_size: usize,
}

/// One-shot response slot shared between a ticket and the replica that
/// eventually executes (or rejects) the request.
#[derive(Debug)]
pub(crate) struct Slot {
    state: Mutex<Option<Result<Response, ServeError>>>,
    done: Condvar,
    cancelled: AtomicBool,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(None),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
        })
    }

    pub(crate) fn fill(&self, result: Result<Response, ServeError>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(state.is_none(), "a slot is filled exactly once");
        *state = Some(result);
        drop(state);
        self.done.notify_all();
    }
}

/// The client's handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request resolves and returns its outcome.
    ///
    /// Never hangs: every admitted request is resolved — executed,
    /// rejected at batch formation, or failed during drain.
    ///
    /// # Errors
    ///
    /// Returns the [`ServeError`] recorded for this request when it did
    /// not complete.
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut state = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self
                .slot
                .done
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Whether the request has resolved (non-blocking).
    pub fn is_done(&self) -> bool {
        self.slot
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Requests cancellation: if no replica has started executing this
    /// request yet, it will resolve to [`ServeError::Cancelled`] instead
    /// of running. A request already executed keeps its result.
    pub fn cancel(&self) {
        self.slot.cancelled.store(true, Ordering::Release);
    }
}

/// One admitted request travelling through the queue.
#[derive(Debug)]
pub(crate) struct Pending {
    pub(crate) input: Vec<f32>,
    /// Stage timestamps for this request; `span.enqueued` is the
    /// submission instant.
    pub(crate) span: SpanRecord,
    pub(crate) deadline: Option<Instant>,
    pub(crate) slot: Arc<Slot>,
}

impl Pending {
    /// Whether the client cancelled this request.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.slot.cancelled.load(Ordering::Acquire)
    }
}

/// The client-side face of a running service: submit requests, observe
/// telemetry. Cloning is cheap (shared queue and counters); the handle is
/// `Sync`, so a load generator may submit from several threads.
#[derive(Clone, Debug)]
pub struct ServiceHandle {
    pub(crate) queue: Arc<BoundedQueue<Pending>>,
    pub(crate) telemetry: Arc<Telemetry>,
    pub(crate) sample_len: usize,
    pub(crate) default_deadline: Option<Duration>,
}

impl ServiceHandle {
    /// Submits one request with the service's default deadline policy.
    ///
    /// Never blocks: if the queue is full the request is shed
    /// immediately, which is what keeps service memory bounded under
    /// overload.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadShape`] for a wrong-length payload,
    /// [`ServeError::Shed`] when the queue is full,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, input: Vec<f32>) -> Result<Ticket, ServeError> {
        self.submit_inner(input, self.default_deadline)
    }

    /// Submits one request with an explicit latency budget, overriding the
    /// service default.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        input: Vec<f32>,
        deadline: Duration,
    ) -> Result<Ticket, ServeError> {
        self.submit_inner(input, Some(deadline))
    }

    fn submit_inner(
        &self,
        input: Vec<f32>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        if input.len() != self.sample_len {
            return Err(ServeError::BadShape {
                expected: self.sample_len,
                got: input.len(),
            });
        }
        self.telemetry.submitted.fetch_add(1, Ordering::Relaxed);
        let submitted = Instant::now();
        let slot = Slot::new();
        let pending = Pending {
            input,
            span: SpanRecord::new(submitted),
            deadline: deadline.map(|d| submitted + d),
            slot: Arc::clone(&slot),
        };
        match self.queue.try_push(pending) {
            Ok(()) => Ok(Ticket { slot }),
            Err(PushError::Full(rejected)) => {
                self.telemetry.shed.fetch_add(1, Ordering::Relaxed);
                self.telemetry.record_terminal_span(
                    TerminalKind::Shed,
                    &rejected.span,
                    Instant::now(),
                );
                Err(ServeError::Shed)
            }
            Err(PushError::Closed(rejected)) => {
                self.telemetry.shed.fetch_add(1, Ordering::Relaxed);
                self.telemetry.record_terminal_span(
                    TerminalKind::Shed,
                    &rejected.span,
                    Instant::now(),
                );
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Flattened per-sample payload length this service expects.
    pub fn sample_len(&self) -> usize {
        self.sample_len
    }

    /// Current telemetry snapshot.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// Requests currently queued (racy snapshot; bounded by the configured
    /// capacity by construction).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The admission queue's capacity bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }
}

/// Closes the queue when dropped, so replicas drain and exit even if the
/// client closure panics — shutdown can never hang on an open queue.
pub(crate) struct CloseGuard<'a>(pub(crate) &'a BoundedQueue<Pending>);

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Runs a multi-replica inference service around `executor` for the
/// duration of `client`, then drains and joins every replica.
///
/// `sample_dims` is the per-sample input shape (without the batch
/// dimension), e.g. `[1, 8, 8]` for an 8×8 single-channel image or
/// `[1152]` for a lowered linear layer. Returns the client's result and
/// the final telemetry snapshot after all replicas have drained.
///
/// Shutdown is graceful: when `client` returns, the queue closes (new
/// submissions fail with [`ServeError::ShuttingDown`]) but every
/// already-admitted request is still executed or rejected before `serve`
/// returns.
///
/// # Panics
///
/// Panics if `config.replicas`, `config.queue_capacity`, or
/// `config.max_batch` is zero, or if `sample_dims` is empty.
pub fn serve<E, R>(
    executor: &Executor<E>,
    sample_dims: &[usize],
    config: &ServeConfig,
    client: impl FnOnce(&ServiceHandle) -> R,
) -> (R, TelemetrySnapshot)
where
    E: CrossbarEngine,
    E::Stats: Sync,
{
    crate::server::Server::builder()
        .config(*config)
        .run(executor, sample_dims, client)
}

/// The serving core behind both [`serve`] and
/// [`Server::run`](crate::server::ServerBuilder::run).
pub(crate) fn serve_impl<E, R>(
    executor: &Executor<E>,
    sample_dims: &[usize],
    config: &ServeConfig,
    trace: &TraceConfig,
    client: impl FnOnce(&ServiceHandle) -> R,
) -> (R, TelemetrySnapshot)
where
    E: CrossbarEngine,
    E::Stats: Sync,
{
    assert!(config.replicas > 0, "need at least one replica");
    assert!(config.max_batch > 0, "batch size must be positive");
    assert!(!sample_dims.is_empty(), "sample shape must be non-empty");
    let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
    let telemetry = Arc::new(Telemetry::new(
        executor.plan().summary(),
        executor.engines().len(),
        trace,
    ));
    let handle = ServiceHandle {
        queue: Arc::clone(&queue),
        telemetry: Arc::clone(&telemetry),
        sample_len: sample_dims.iter().product(),
        default_deadline: config.default_deadline,
    };
    let result = std::thread::scope(|scope| {
        for _ in 0..config.replicas {
            let (queue, telemetry) = (Arc::clone(&queue), Arc::clone(&telemetry));
            scope.spawn(move || replica_loop(executor, sample_dims, config, &queue, &telemetry));
        }
        let guard = CloseGuard(&queue);
        let result = client(&handle);
        drop(guard);
        result
    });
    (result, telemetry.snapshot())
}

/// Tracks the per-layer wall-time and MVM counters of one replica's
/// session between batches, pushing only the per-batch deltas into the
/// shared telemetry so attribution stays correct across many replicas.
pub(crate) struct LayerDeltas {
    prev_wall: Vec<u64>,
    prev_mvms: Vec<u64>,
    wall_delta: Vec<u64>,
    mvm_delta: Vec<u64>,
}

impl LayerDeltas {
    pub(crate) fn new(layer_count: usize) -> Self {
        Self {
            prev_wall: vec![0; layer_count],
            prev_mvms: vec![0; layer_count],
            wall_delta: vec![0; layer_count],
            mvm_delta: vec![0; layer_count],
        }
    }

    /// Forget the previous session's counters after a rebuild (the fresh
    /// session restarts them from zero).
    pub(crate) fn reset(&mut self) {
        self.prev_wall.fill(0);
        self.prev_mvms.fill(0);
    }

    /// Publish the delta since the last call into `telemetry`.
    pub(crate) fn publish(&mut self, wall: &[u64], mvms: &[u64], telemetry: &Telemetry) {
        for (d, (&w, &p)) in self
            .wall_delta
            .iter_mut()
            .zip(wall.iter().zip(&self.prev_wall))
        {
            *d = w.saturating_sub(p);
        }
        for (d, (&m, &p)) in self
            .mvm_delta
            .iter_mut()
            .zip(mvms.iter().zip(&self.prev_mvms))
        {
            *d = m.saturating_sub(p);
        }
        self.prev_wall.copy_from_slice(wall);
        self.prev_mvms.copy_from_slice(mvms);
        telemetry.add_layer_attribution(&self.wall_delta, &self.mvm_delta);
    }
}

/// One replica: pop batches until the queue is closed and drained.
fn replica_loop<E: CrossbarEngine>(
    executor: &Executor<E>,
    sample_dims: &[usize],
    config: &ServeConfig,
    queue: &BoundedQueue<Pending>,
    telemetry: &Telemetry,
) {
    let mut session = executor.session();
    let mut deltas = LayerDeltas::new(executor.engines().len());
    let mut batch: Vec<Pending> = Vec::new();
    let mut live: Vec<Pending> = Vec::new();
    let mut staging: Vec<f32> = Vec::new();
    let mut out: Vec<f32> = Vec::new();
    while queue.pop_batch(config.max_batch, config.max_delay, &mut batch) {
        let dequeued = Instant::now();
        for pending in &mut batch {
            pending.span.dequeued = Some(dequeued);
        }
        filter_live(&mut batch, &mut live, telemetry);
        if live.is_empty() {
            continue;
        }
        let batch_size = live.len();
        staging.clear();
        for pending in &live {
            staging.extend_from_slice(&pending.input);
        }
        let mut dims = vec![batch_size];
        dims.extend_from_slice(sample_dims);
        let x = Tensor::from_vec(std::mem::take(&mut staging), &dims);
        let batch_formed = Instant::now();
        for pending in &mut live {
            pending.span.batch_formed = Some(batch_formed);
        }
        let forward = catch_unwind(AssertUnwindSafe(|| {
            session.forward_batch_into(&x, &mut out);
        }));
        let executed = Instant::now();
        for pending in &mut live {
            pending.span.executed = Some(executed);
        }
        staging = x.into_vec();
        match forward {
            Ok(()) => {
                deltas.publish(session.layer_wall_ns(), session.layer_mvms(), telemetry);
                let per_sample = out.len() / batch_size;
                for (i, mut pending) in live.drain(..).enumerate() {
                    pending.span.responded = Some(Instant::now());
                    let stages = pending.span.stages();
                    telemetry.record_completed_span(&stages);
                    pending.slot.fill(Ok(Response {
                        output: out[i * per_sample..(i + 1) * per_sample].to_vec(),
                        latency: stages.total(),
                        queue_wait: stages.queue_wait,
                        stages,
                        batch_size,
                    }));
                }
            }
            Err(_) => {
                // The engine panicked: fail this batch but keep the
                // replica alive. The session's buffers may be mid-update,
                // so rebuild it before the next batch. Each request's
                // partial span still reaches the event ring, so the
                // failure is visible with its stage breakdown.
                for pending in live.drain(..) {
                    telemetry.failed.fetch_add(1, Ordering::Relaxed);
                    telemetry.record_terminal_span(TerminalKind::Failed, &pending.span, executed);
                    pending.slot.fill(Err(ServeError::EngineFailed));
                }
                out.clear();
                session = executor.session();
                deltas.reset();
            }
        }
    }
}

/// Rejects batch members that cannot usefully execute — cancelled requests
/// have no consumer and requests past their latency budget are useless to
/// their clients; running either would only add load while overloaded —
/// and moves the survivors into `live`.
pub(crate) fn filter_live(
    batch: &mut Vec<Pending>,
    live: &mut Vec<Pending>,
    telemetry: &Telemetry,
) {
    let now = Instant::now();
    live.clear();
    for pending in batch.drain(..) {
        if pending.is_cancelled() {
            telemetry.cancelled.fetch_add(1, Ordering::Relaxed);
            telemetry.record_terminal_span(TerminalKind::Cancelled, &pending.span, now);
            pending.slot.fill(Err(ServeError::Cancelled));
        } else if pending.deadline.is_some_and(|d| now >= d) {
            telemetry.expired.fetch_add(1, Ordering::Relaxed);
            telemetry.record_terminal_span(TerminalKind::Expired, &pending.span, now);
            pending.slot.fill(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(pending);
        }
    }
}
