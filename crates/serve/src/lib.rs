//! # forms-serve
//!
//! A batched multi-replica inference serving layer over any
//! [`Executor`](forms_exec::Executor): the subsystem that turns one mapped
//! FORMS (or baseline) accelerator model into a service under open-loop
//! load, with bounded memory and measurable tail latency.
//!
//! ```text
//!              ┌──────────────────────── serve() ───────────────────────┐
//!  client ──► ServiceHandle::submit ──► BoundedQueue ──► replica workers │
//!    ▲             │ shed when full       (MPMC,          (one warm      │
//!    │             ▼                       bounded)        session each) │
//!    └── Ticket::wait ◄───────── response slots ◄──────────────┘         │
//!              └────────────── Telemetry (lock-free) ────────────────────┘
//! ```
//!
//! The pieces, each its own module:
//!
//! - [`queue`]: bounded MPMC admission queue — producers shed instead of
//!   blocking, consumers pop dynamic batches (flush on `max_batch` or
//!   `max_delay`), close-and-drain shutdown.
//! - [`service`]: [`serve`] spins up N replica threads each owning one warm
//!   [`InferenceSession`](forms_exec::InferenceSession) over the *shared*
//!   mapped engines; requests carry deadlines (expired ⇒ rejected, not
//!   executed) and cancellation; a panicking engine fails its batch and
//!   the replica recovers.
//! - [`telemetry`]: lock-free outcome counters and a log-bucketed latency
//!   histogram with p50/p95/p99 extraction.
//! - [`paced`]: [`PacedEngine`] gives every MVM a modeled device-occupancy
//!   latency, so replica scaling measures the serving layer rather than
//!   host-core count.
//! - [`loadgen`]: seeded open-loop Poisson load generator
//!   ([`run_open_loop`]) built on `forms-workloads` request traces.
//! - [`json`]: the workspace's minimal JSON tree ([`json::JsonValue`],
//!   [`json::parse`]) — hosted here so telemetry snapshots render
//!   themselves and the `forms-net` metrics frame / bench report writers
//!   share one schema.
//! - [`health`]: [`serve_resilient`] — fault-tolerant serving where every
//!   replica owns an executor clone, polices its fault density and output
//!   sentinels against a [`HealthPolicy`], rebuilds from the pristine
//!   mapping with exponential backoff, and quarantines when recovery
//!   keeps failing; clients inject seeded fault campaigns per replica
//!   through a [`FaultInjector`].
//!
//! # Example
//!
//! ```
//! use forms_serve::{serve, ServeConfig};
//! # use forms_exec::Executor;
//! # let mut rng = forms_rng::StdRng::seed_from_u64(0);
//! # let mut net = forms_dnn::Network::new(vec![
//! #     forms_dnn::Layer::flatten(),
//! #     forms_dnn::Layer::linear(&mut rng, 16, 4),
//! # ]);
//! # // All-positive weights are trivially fragment-polarized.
//! # net.for_each_weight_layer(&mut |wl| {
//! #     if let forms_dnn::WeightLayerMut::Linear(l) = wl {
//! #         l.set_weight_matrix(&forms_tensor::Tensor::from_fn(&[16, 4], |i| {
//! #             0.05 + (i % 9) as f32 * 0.1
//! #         }));
//! #     }
//! # });
//! # let exec = Executor::<forms_arch::MappedLayer>::map_network(
//! #     &net, &forms_arch::MappingConfig::paper(8), 16).unwrap();
//! let config = ServeConfig { replicas: 2, ..ServeConfig::default() };
//! let (result, telemetry) = serve(&exec, &[1, 4, 4], &config, |handle| {
//!     let ticket = handle.submit(vec![0.5; 16]).unwrap();
//!     ticket.wait().unwrap().output
//! });
//! assert_eq!(result.len(), 4);
//! assert_eq!(telemetry.completed, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod health;
pub mod json;
pub mod loadgen;
pub mod paced;
pub mod queue;
pub mod server;
pub mod service;
pub mod telemetry;
pub mod trace;

pub use health::{serve_resilient, FaultInjector, HealthPolicy, ResilientConfig};
pub use loadgen::{run_open_loop, LoadReport, OpenLoopSpec};
pub use paced::{PacedConfig, PacedEngine, PacedScratch};
pub use queue::{BoundedQueue, PopWait, PushError};
pub use server::{ConfigError, Server, ServerBuilder};
pub use service::{serve, Response, ServeConfig, ServeError, ServiceHandle, Ticket};
pub use telemetry::{
    LayerAttribution, StageSnapshots, Telemetry, TelemetrySnapshot, TELEMETRY_SCHEMA_VERSION,
};
pub use trace::{
    EventRecord, SpanRecord, StageDurations, TerminalKind, TraceConfig, STAGE_COUNT, STAGE_NAMES,
};
