//! One front door for every serving mode: the [`Server`] builder.
//!
//! Historically the crate grew four divergent entry points —
//! [`serve`](crate::service::serve),
//! [`serve_resilient`](crate::health::serve_resilient), and the two
//! network-facing siblings in `forms-net` — each threading its own config
//! through its own signature. The builder unifies them: one place to set
//! the [`ServeConfig`], an optional [`HealthPolicy`] for fault-tolerant
//! serving, and the [`TraceConfig`] governing request-lifecycle tracing,
//! with a [`validate`](ServerBuilder::validate) that rejects contradictory
//! settings *before* any replica thread spawns. The legacy functions
//! remain as thin wrappers over the builder, so existing callers keep
//! compiling with bitwise-identical behavior.
//!
//! ```
//! use forms_serve::{Server, ServeConfig};
//! # use forms_exec::Executor;
//! # let mut rng = forms_rng::StdRng::seed_from_u64(0);
//! # let mut net = forms_dnn::Network::new(vec![
//! #     forms_dnn::Layer::flatten(),
//! #     forms_dnn::Layer::linear(&mut rng, 16, 4),
//! # ]);
//! # net.for_each_weight_layer(&mut |wl| {
//! #     if let forms_dnn::WeightLayerMut::Linear(l) = wl {
//! #         l.set_weight_matrix(&forms_tensor::Tensor::from_fn(&[16, 4], |i| {
//! #             0.05 + (i % 9) as f32 * 0.1
//! #         }));
//! #     }
//! # });
//! # let exec = Executor::<forms_arch::MappedLayer>::map_network(
//! #     &net, &forms_arch::MappingConfig::paper(8), 16).unwrap();
//! let builder = Server::builder().config(ServeConfig {
//!     replicas: 2,
//!     ..ServeConfig::default()
//! });
//! builder.validate().unwrap();
//! let (out, telemetry) = builder.run(&exec, &[1, 4, 4], |handle| {
//!     handle.submit(vec![0.5; 16]).unwrap().wait().unwrap().output
//! });
//! assert_eq!(out.len(), 4);
//! assert_eq!(telemetry.completed, 1);
//! assert_eq!(telemetry.stages.execute.count, 1);
//! ```

use forms_exec::{CrossbarEngine, Executor, FaultableEngine};

use crate::health::{serve_resilient_impl, FaultInjector, HealthPolicy, ResilientConfig};
use crate::service::{serve_impl, ServeConfig, ServiceHandle};
use crate::telemetry::TelemetrySnapshot;
use crate::trace::TraceConfig;

/// Namespace for the unified serving entry point; see [`Server::builder`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Starts building a service: defaults everywhere, then chain
    /// [`config`](ServerBuilder::config), [`health`](ServerBuilder::health)
    /// and [`trace`](ServerBuilder::trace) before
    /// [`run`](ServerBuilder::run) /
    /// [`run_resilient`](ServerBuilder::run_resilient).
    pub fn builder() -> ServerBuilder {
        ServerBuilder {
            serve: ServeConfig::default(),
            health: None,
            trace: TraceConfig::default(),
        }
    }
}

/// Accumulates serving, health and tracing configuration, then launches
/// the service in whichever mode fits: [`run`](Self::run) for plain
/// serving, [`run_resilient`](Self::run_resilient) for health-policed
/// serving (the network-facing modes are added by `forms-net` through an
/// extension trait).
#[derive(Clone, Debug, Default)]
pub struct ServerBuilder {
    serve: ServeConfig,
    health: Option<HealthPolicy>,
    trace: TraceConfig,
}

/// A contradiction or impossibility in the assembled configuration,
/// reported by [`ServerBuilder::validate`] before any thread spawns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// `replicas` is zero — nothing would ever pop the queue.
    ZeroReplicas,
    /// `queue_capacity` is zero — every submission would be shed.
    ZeroQueueCapacity,
    /// `max_batch` is zero — a replica could never form a batch.
    ZeroBatch,
    /// The health policy's `backoff_multiplier` is below 1.0, so backoff
    /// would shrink under repeated failures.
    ShrinkingBackoff {
        /// The offending multiplier.
        multiplier: f64,
    },
    /// The health policy's `max_fault_density` is negative, NaN or
    /// infinite.
    BadFaultDensity {
        /// The offending density threshold.
        density: f64,
    },
    /// The default deadline is not longer than the batching straggler
    /// window, so every request submitted under the default would expire
    /// while its batch was still forming.
    DeadlineWithinBatchWindow {
        /// The configured default deadline, in nanoseconds.
        deadline_ns: u128,
        /// The configured `max_delay`, in nanoseconds.
        max_delay_ns: u128,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroReplicas => write!(f, "replicas must be positive"),
            Self::ZeroQueueCapacity => write!(f, "queue capacity must be positive"),
            Self::ZeroBatch => write!(f, "max batch must be positive"),
            Self::ShrinkingBackoff { multiplier } => {
                write!(
                    f,
                    "backoff multiplier {multiplier} would shrink the backoff"
                )
            }
            Self::BadFaultDensity { density } => {
                write!(
                    f,
                    "fault-density threshold {density} is not a finite fraction"
                )
            }
            Self::DeadlineWithinBatchWindow {
                deadline_ns,
                max_delay_ns,
            } => write!(
                f,
                "default deadline {deadline_ns}ns cannot be met: batches may wait \
                 {max_delay_ns}ns for stragglers before executing"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl ServerBuilder {
    /// Sets the sizing/batching policy (replicas, queue bound, batching
    /// window, default deadline).
    #[must_use]
    pub fn config(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Enables health-policed serving with `policy`;
    /// [`run_resilient`](Self::run_resilient) uses it (or the default
    /// policy when never set). [`run`](Self::run) ignores it.
    #[must_use]
    pub fn health(mut self, policy: HealthPolicy) -> Self {
        self.health = Some(policy);
        self
    }

    /// Sets the request-lifecycle tracing configuration (event-ring and
    /// slowest-span capacities). Zero capacities disable event capture;
    /// per-stage histograms are always on.
    #[must_use]
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// The sizing/batching policy currently assembled.
    pub fn serve_config(&self) -> &ServeConfig {
        &self.serve
    }

    /// The health policy currently assembled, if any.
    pub fn health_policy(&self) -> Option<&HealthPolicy> {
        self.health.as_ref()
    }

    /// The tracing configuration currently assembled.
    pub fn trace_config(&self) -> &TraceConfig {
        &self.trace
    }

    /// Rejects impossible or contradictory configurations with a typed
    /// error, checking strictly more than the `run*` entry points assert:
    /// `run` only refuses configs that would wedge (zero replicas/batch),
    /// while `validate` also catches settings that are legal but can never
    /// serve a request usefully (e.g. a default deadline shorter than the
    /// batching straggler window).
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found, in field order.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.serve.replicas == 0 {
            return Err(ConfigError::ZeroReplicas);
        }
        if self.serve.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.serve.max_batch == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        if let Some(deadline) = self.serve.default_deadline {
            if deadline <= self.serve.max_delay {
                return Err(ConfigError::DeadlineWithinBatchWindow {
                    deadline_ns: deadline.as_nanos(),
                    max_delay_ns: self.serve.max_delay.as_nanos(),
                });
            }
        }
        if let Some(policy) = &self.health {
            if policy.backoff_multiplier < 1.0 {
                return Err(ConfigError::ShrinkingBackoff {
                    multiplier: policy.backoff_multiplier,
                });
            }
            if !policy.max_fault_density.is_finite() || policy.max_fault_density < 0.0 {
                return Err(ConfigError::BadFaultDensity {
                    density: policy.max_fault_density,
                });
            }
        }
        Ok(())
    }

    /// Runs a plain multi-replica service around `executor` for the
    /// duration of `client` — the builder-first form of
    /// [`serve`](crate::service::serve). Any
    /// health policy on the builder is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `replicas`, `queue_capacity` or `max_batch` is zero, or
    /// if `sample_dims` is empty.
    pub fn run<E, R>(
        &self,
        executor: &Executor<E>,
        sample_dims: &[usize],
        client: impl FnOnce(&ServiceHandle) -> R,
    ) -> (R, TelemetrySnapshot)
    where
        E: CrossbarEngine,
        E::Stats: Sync,
    {
        serve_impl(executor, sample_dims, &self.serve, &self.trace, client)
    }

    /// Runs a health-policed service around per-replica clones of
    /// `pristine` — the builder-first form of
    /// [`serve_resilient`](crate::health::serve_resilient). Uses the
    /// builder's health policy, or [`HealthPolicy::default`] when none was
    /// set.
    ///
    /// # Panics
    ///
    /// As [`run`](Self::run), plus a malformed health policy
    /// (`backoff_multiplier < 1.0` or a non-finite / negative
    /// `max_fault_density`).
    pub fn run_resilient<E, R>(
        &self,
        pristine: &Executor<E>,
        sample_dims: &[usize],
        client: impl FnOnce(&ServiceHandle, &FaultInjector<'_>) -> R,
    ) -> (R, TelemetrySnapshot)
    where
        E: FaultableEngine,
        E::Stats: Sync,
    {
        let config = ResilientConfig {
            serve: self.serve,
            policy: self.health.unwrap_or_default(),
        };
        serve_resilient_impl(pristine, sample_dims, &config, &self.trace, client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn polarized_executor() -> Executor<forms_arch::MappedLayer> {
        let mut rng = forms_rng::StdRng::seed_from_u64(0);
        let mut net = forms_dnn::Network::new(vec![
            forms_dnn::Layer::flatten(),
            forms_dnn::Layer::linear(&mut rng, 16, 4),
        ]);
        net.for_each_weight_layer(&mut |wl| {
            if let forms_dnn::WeightLayerMut::Linear(l) = wl {
                l.set_weight_matrix(&forms_tensor::Tensor::from_fn(&[16, 4], |i| {
                    0.05 + (i % 9) as f32 * 0.1
                }));
            }
        });
        Executor::map_network(&net, &forms_arch::MappingConfig::paper(8), 16).unwrap()
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_contradictions() {
        assert_eq!(Server::builder().validate(), Ok(()));
        let zero = |f: fn(&mut ServeConfig)| {
            let mut c = ServeConfig::default();
            f(&mut c);
            Server::builder().config(c).validate()
        };
        assert_eq!(zero(|c| c.replicas = 0), Err(ConfigError::ZeroReplicas));
        assert_eq!(
            zero(|c| c.queue_capacity = 0),
            Err(ConfigError::ZeroQueueCapacity)
        );
        assert_eq!(zero(|c| c.max_batch = 0), Err(ConfigError::ZeroBatch));
        // A default deadline inside the straggler window can never be met.
        let contradictory = ServeConfig {
            max_delay: Duration::from_millis(5),
            default_deadline: Some(Duration::from_millis(2)),
            ..ServeConfig::default()
        };
        assert!(matches!(
            Server::builder().config(contradictory).validate(),
            Err(ConfigError::DeadlineWithinBatchWindow { .. })
        ));
        // An explicit per-request deadline path is unaffected: only the
        // *default* deadline is checked against the window.
        let explicit_only = ServeConfig {
            max_delay: Duration::from_millis(5),
            default_deadline: None,
            ..ServeConfig::default()
        };
        assert_eq!(Server::builder().config(explicit_only).validate(), Ok(()));
        // Malformed health policies are typed errors instead of panics.
        let shrink = HealthPolicy {
            backoff_multiplier: 0.5,
            ..HealthPolicy::default()
        };
        assert!(matches!(
            Server::builder().health(shrink).validate(),
            Err(ConfigError::ShrinkingBackoff { .. })
        ));
        for density in [-0.1, f64::NAN, f64::INFINITY] {
            let bad = HealthPolicy {
                max_fault_density: density,
                ..HealthPolicy::default()
            };
            assert!(matches!(
                Server::builder().health(bad).validate(),
                Err(ConfigError::BadFaultDensity { .. })
            ));
        }
    }

    #[test]
    fn config_errors_render_useful_messages() {
        let e = ConfigError::DeadlineWithinBatchWindow {
            deadline_ns: 1_000,
            max_delay_ns: 2_000_000,
        };
        let msg = e.to_string();
        assert!(msg.contains("1000ns"), "{msg}");
        assert!(msg.contains("stragglers"), "{msg}");
    }

    #[test]
    fn builder_and_legacy_serve_agree() {
        let exec = polarized_executor();
        let config = ServeConfig {
            replicas: 2,
            ..ServeConfig::default()
        };
        let run = |via_builder: bool| {
            let client = |handle: &ServiceHandle| {
                let tickets: Vec<_> = (0..6)
                    .map(|_| handle.submit(vec![0.5; 16]).unwrap())
                    .collect();
                tickets
                    .into_iter()
                    .map(|t| t.wait().unwrap().output)
                    .collect::<Vec<_>>()
            };
            if via_builder {
                Server::builder()
                    .config(config)
                    .run(&exec, &[1, 4, 4], client)
            } else {
                crate::service::serve(&exec, &[1, 4, 4], &config, client)
            }
        };
        let (legacy_out, legacy_t) = run(false);
        let (builder_out, builder_t) = run(true);
        // Same outputs sample for sample (execution is deterministic)...
        assert_eq!(legacy_out, builder_out);
        // ...and the same outcome accounting either way.
        assert_eq!(legacy_t.submitted, builder_t.submitted);
        assert_eq!(legacy_t.completed, builder_t.completed);
        assert_eq!(legacy_t.plan, builder_t.plan);
        // The legacy wrapper routes through the builder, so tracing is on
        // there too: every completed request contributes to each stage.
        for t in [&legacy_t, &builder_t] {
            for h in t.stages.in_order() {
                assert_eq!(h.count, 6);
            }
        }
    }

    #[test]
    fn builder_and_legacy_serve_resilient_agree() {
        let exec = polarized_executor();
        let config = ServeConfig {
            replicas: 1,
            ..ServeConfig::default()
        };
        let client = |handle: &ServiceHandle, _: &FaultInjector<'_>| {
            handle.submit(vec![0.5; 16]).unwrap().wait().unwrap().output
        };
        let (legacy_out, legacy_t) = crate::health::serve_resilient(
            &exec,
            &[1, 4, 4],
            &ResilientConfig {
                serve: config,
                policy: HealthPolicy::default(),
            },
            client,
        );
        let (builder_out, builder_t) = Server::builder()
            .config(config)
            .health(HealthPolicy::default())
            .run_resilient(&exec, &[1, 4, 4], client);
        assert_eq!(legacy_out, builder_out);
        assert_eq!(legacy_t.completed, builder_t.completed);
        assert_eq!(legacy_t.quarantines, builder_t.quarantines);
        assert_eq!(legacy_t.stages.execute.count, 1);
        assert_eq!(builder_t.stages.execute.count, 1);
    }
}
