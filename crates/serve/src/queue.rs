//! A bounded MPMC admission queue with load shedding and batched pops.
//!
//! This is the front door of the serving layer: producers never block —
//! when the queue is at capacity [`BoundedQueue::try_push`] fails
//! immediately so the caller can shed the request instead of letting the
//! backlog (and memory) grow without bound. Consumers pop *batches*: the
//! first item blocks (condvar), then up to `max_batch - 1` stragglers are
//! gathered for at most `max_delay`, which is the dynamic-batching policy
//! of the service.
//!
//! Shutdown is cooperative: [`BoundedQueue::close`] rejects new pushes and
//! wakes every consumer (`notify_all`, so no consumer is lost waiting),
//! but already-admitted items continue to drain — `pop_batch` only returns
//! `false` once the queue is both closed and empty.
//!
//! Every lock acquisition is poison-tolerant: a panicking thread must
//! never turn a recoverable replica failure into a service-wide hang or a
//! cascade of poison panics, so the queue continues operating on the
//! poisoned state (which is always consistent here — no invariant spans a
//! panic point inside a critical section).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back for shedding.
    Full(T),
    /// The queue has been closed; the item is handed back.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (racy snapshot, for telemetry/tests).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item back as [`PushError::Full`] when the queue is at
    /// capacity (the caller sheds it) or [`PushError::Closed`] after
    /// shutdown began.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Closes the queue: future pushes fail, consumers drain what remains
    /// and then see end-of-stream. Wakes *all* waiting consumers so none
    /// sleeps through shutdown.
    ///
    /// Idempotent and race-free: any number of threads may call `close`
    /// concurrently with producers and draining consumers — every item
    /// either drains to exactly one consumer or bounces back to its
    /// producer as [`PushError::Closed`], never both and never neither.
    /// Returns `true` for the call that actually closed the queue, `false`
    /// for every later (redundant) call.
    pub fn close(&self) -> bool {
        let mut state = self.lock();
        let first = !state.closed;
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        first
    }

    /// Pops the next batch into `out` (cleared first): blocks until at
    /// least one item is available, then gathers up to `max_batch` items,
    /// waiting at most `max_delay` for stragglers after the first.
    ///
    /// Returns `false` — with `out` empty — only when the queue is closed
    /// *and* fully drained.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn pop_batch(&self, max_batch: usize, max_delay: Duration, out: &mut Vec<T>) -> bool {
        assert!(max_batch > 0, "batch size must be positive");
        out.clear();
        let mut state = self.lock();
        // Wait for the batch head. Loop on the predicate so spurious
        // wakeups and handoffs to faster consumers are harmless.
        loop {
            if let Some(item) = state.items.pop_front() {
                out.push(item);
                break;
            }
            if state.closed {
                return false;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        self.gather_stragglers(state, max_batch, max_delay, out);
        true
    }

    /// [`pop_batch`](Self::pop_batch) with a bounded wait for the batch
    /// head: a consumer that also watches out-of-band state (health
    /// mailboxes, shutdown signals of its own) must not sleep unboundedly
    /// on an empty queue. Returns [`PopWait::Idle`] — with `out` empty —
    /// when nothing arrived within `wait`, so the caller can poll its side
    /// channels and come back.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn pop_batch_for(
        &self,
        max_batch: usize,
        max_delay: Duration,
        wait: Duration,
        out: &mut Vec<T>,
    ) -> PopWait {
        assert!(max_batch > 0, "batch size must be positive");
        out.clear();
        let mut state = self.lock();
        let wait_until = Instant::now() + wait;
        loop {
            if let Some(item) = state.items.pop_front() {
                out.push(item);
                break;
            }
            if state.closed {
                return PopWait::Closed;
            }
            let now = Instant::now();
            if now >= wait_until {
                return PopWait::Idle;
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(state, wait_until - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        self.gather_stragglers(state, max_batch, max_delay, out);
        PopWait::Batch
    }

    /// Gathers stragglers behind a popped batch head until the batch is
    /// full, the flush timer expires, or shutdown flushes immediately.
    fn gather_stragglers(
        &self,
        mut state: MutexGuard<'_, State<T>>,
        max_batch: usize,
        max_delay: Duration,
        out: &mut Vec<T>,
    ) {
        let flush_at = Instant::now() + max_delay;
        while out.len() < max_batch {
            if let Some(item) = state.items.pop_front() {
                out.push(item);
                continue;
            }
            if state.closed {
                break;
            }
            let now = Instant::now();
            if now >= flush_at {
                break;
            }
            let (guard, _timeout) = self
                .not_empty
                .wait_timeout(state, flush_at - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }
}

/// Outcome of a bounded-wait [`BoundedQueue::pop_batch_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopWait {
    /// At least one item was popped into the output buffer.
    Batch,
    /// Nothing arrived within the wait window; the queue is still open.
    Idle,
    /// The queue is closed and fully drained.
    Closed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_and_shedding_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        let mut batch = Vec::new();
        assert!(q.pop_batch(8, Duration::ZERO, &mut batch));
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn close_rejects_pushes_but_drains_items() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        let mut batch = Vec::new();
        assert!(q.pop_batch(4, Duration::from_secs(1), &mut batch));
        assert_eq!(batch, vec![7]);
        assert!(!q.pop_batch(4, Duration::from_secs(1), &mut batch));
        assert!(batch.is_empty());
    }

    #[test]
    fn pop_batch_respects_max_batch() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut batch = Vec::new();
        assert!(q.pop_batch(3, Duration::ZERO, &mut batch));
        assert_eq!(batch, vec![0, 1, 2]);
        assert!(q.pop_batch(3, Duration::ZERO, &mut batch));
        assert_eq!(batch, vec![3, 4]);
    }

    #[test]
    fn pop_batch_waits_for_stragglers_within_max_delay() {
        let q = BoundedQueue::new(8);
        std::thread::scope(|scope| {
            let qref = &q;
            scope.spawn(move || {
                qref.try_push(1).unwrap();
                std::thread::sleep(Duration::from_millis(5));
                qref.try_push(2).unwrap();
            });
            let mut batch = Vec::new();
            assert!(q.pop_batch(2, Duration::from_millis(500), &mut batch));
            assert_eq!(batch, vec![1, 2], "straggler joined the batch");
        });
    }

    #[test]
    fn bounded_wait_pop_distinguishes_idle_from_closed() {
        let q = BoundedQueue::new(4);
        let mut batch = Vec::new();
        let start = Instant::now();
        assert_eq!(
            q.pop_batch_for(4, Duration::ZERO, Duration::from_millis(5), &mut batch),
            PopWait::Idle
        );
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert!(batch.is_empty());
        q.try_push(9).unwrap();
        assert_eq!(
            q.pop_batch_for(4, Duration::ZERO, Duration::from_secs(1), &mut batch),
            PopWait::Batch
        );
        assert_eq!(batch, vec![9]);
        q.close();
        assert_eq!(
            q.pop_batch_for(4, Duration::ZERO, Duration::from_secs(1), &mut batch),
            PopWait::Closed
        );
    }

    #[test]
    fn blocked_consumers_all_wake_on_close() {
        let q = BoundedQueue::<u32>::new(4);
        let woke = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let (qref, wref) = (&q, &woke);
                scope.spawn(move || {
                    let mut batch = Vec::new();
                    // Blocks until close; must return rather than hang.
                    assert!(!qref.pop_batch(4, Duration::from_secs(5), &mut batch));
                    wref.fetch_add(1, Ordering::SeqCst);
                });
            }
            std::thread::sleep(Duration::from_millis(10));
            q.close();
        });
        assert_eq!(woke.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn close_is_idempotent_across_racing_threads() {
        let q = BoundedQueue::<u32>::new(4);
        let first_closes = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (qref, cref) = (&q, &first_closes);
                scope.spawn(move || {
                    if qref.close() {
                        cref.fetch_add(1, Ordering::SeqCst);
                    }
                    // A second close from the same thread is a no-op too.
                    assert!(!qref.close());
                });
            }
        });
        assert_eq!(
            first_closes.load(Ordering::SeqCst),
            1,
            "exactly one close call wins"
        );
        assert!(q.is_closed());
    }

    /// The ticket-conservation contract under a shutdown race: producers
    /// hammer `try_push` while one thread calls `close()` mid-drain and
    /// consumers drain batches. Every pushed item must resolve exactly
    /// once — drained by one consumer XOR handed back to its producer —
    /// with no panic, no loss, and no double-resolution.
    #[test]
    fn concurrent_close_and_push_resolves_every_ticket_exactly_once() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 400;
        for round in 0..8u64 {
            let q = BoundedQueue::new(8);
            let drained = std::sync::Mutex::new(Vec::new());
            let bounced = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for p in 0..PRODUCERS {
                    let (qref, bref) = (&q, &bounced);
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        for i in 0..PER_PRODUCER {
                            let ticket = p * PER_PRODUCER + i;
                            match qref.try_push(ticket) {
                                Ok(()) => {}
                                // Full: retry until admitted or closed, so
                                // the race window with close() stays open.
                                Err(PushError::Full(t)) => {
                                    let mut t = t;
                                    loop {
                                        std::thread::yield_now();
                                        match qref.try_push(t) {
                                            Ok(()) => break,
                                            Err(PushError::Full(back)) => t = back,
                                            Err(PushError::Closed(back)) => {
                                                mine.push(back);
                                                break;
                                            }
                                        }
                                    }
                                }
                                Err(PushError::Closed(t)) => mine.push(t),
                            }
                        }
                        bref.lock().unwrap().append(&mut mine);
                    });
                }
                for _ in 0..2 {
                    let (qref, dref) = (&q, &drained);
                    scope.spawn(move || {
                        let mut batch = Vec::new();
                        let mut mine = Vec::new();
                        while qref.pop_batch(4, Duration::from_micros(200), &mut batch) {
                            mine.append(&mut batch);
                        }
                        dref.lock().unwrap().append(&mut mine);
                    });
                }
                // Close mid-flight, racing both producers and consumers;
                // a redundant second close must change nothing.
                let qref = &q;
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_micros(500 * (round + 1)));
                    qref.close();
                    qref.close();
                });
            });
            let mut all: Vec<usize> = drained.into_inner().unwrap();
            all.extend(bounced.into_inner().unwrap());
            all.sort_unstable();
            let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
            assert_eq!(
                all, expected,
                "round {round}: every ticket resolved exactly once"
            );
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = BoundedQueue::new(16);
        let consumed = AtomicUsize::new(0);
        let shed = AtomicUsize::new(0);
        const PER_PRODUCER: usize = 500;
        std::thread::scope(|scope| {
            for p in 0..2 {
                let (qref, sref) = (&q, &shed);
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        if qref.try_push(p * PER_PRODUCER + i).is_err() {
                            sref.fetch_add(1, Ordering::SeqCst);
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let (qref, cref) = (&q, &consumed);
                scope.spawn(move || {
                    let mut batch = Vec::new();
                    while qref.pop_batch(4, Duration::from_millis(1), &mut batch) {
                        cref.fetch_add(batch.len(), Ordering::SeqCst);
                    }
                });
            }
            std::thread::sleep(Duration::from_millis(50));
            q.close();
        });
        assert_eq!(
            consumed.load(Ordering::SeqCst) + shed.load(Ordering::SeqCst),
            2 * PER_PRODUCER,
            "every item either served or shed"
        );
    }
}
