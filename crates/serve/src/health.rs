//! Fault-tolerant serving: replica health monitoring, quarantine, and
//! per-replica fault injection.
//!
//! [`serve_resilient`] is the degradation-aware sibling of
//! [`serve`](crate::service::serve): every replica *owns* a clone of the
//! pristine executor (so faults injected into one replica's crossbars
//! cannot leak into another's), and each replica polices itself against a
//! [`HealthPolicy`]:
//!
//! - **Fault density** — when the fraction of known-faulted cells
//!   (engine [`health`](forms_exec::CrossbarEngine::health)) exceeds
//!   `max_fault_density`, the replica refuses to serve.
//! - **Output sentinels** — when a batch trips the executor's
//!   output-range sentinel (an output past the pristine mapping's nominal
//!   ceiling, which clean silicon cannot produce), the whole batch is
//!   refused with [`ServeError::Degraded`] *before any slot is filled*, so
//!   a corrupted result is never returned to a client.
//!
//! An unhealthy replica drains, sleeps an exponential backoff, rebuilds
//! its executor from the pristine mapping, and re-applies any *persistent*
//! poison (modeling permanently bad silicon). After `max_rebuilds`
//! consecutive failed recoveries it is **quarantined**: the thread exits
//! and the remaining replicas absorb the load. If the *last* replica
//! quarantines, it drains the queue failing every request with
//! `Degraded` so no ticket can hang. Rebuilds, quarantines, degraded
//! requests and injected campaigns are all counted in
//! [`Telemetry`].
//!
//! Fault delivery is asynchronous and replica-targeted: the client closure
//! receives a [`FaultInjector`] whose campaigns land in a per-replica
//! mailbox, applied by the replica itself between batches (injection needs
//! `&mut` access to the replica's engines, which the serving session
//! borrows).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use forms_exec::{Executor, FaultCampaign, FaultableEngine};
use forms_tensor::Tensor;

use crate::queue::{BoundedQueue, PopWait};
use crate::service::{
    filter_live, CloseGuard, LayerDeltas, Pending, Response, ServeConfig, ServeError, ServiceHandle,
};
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use crate::trace::{TerminalKind, TraceConfig};

/// When a replica must refuse to serve and how hard it tries to recover.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// Largest tolerated fraction of known-faulted cells before the
    /// replica is considered unhealthy.
    pub max_fault_density: f64,
    /// Consecutive failed recoveries before the replica is quarantined.
    pub max_rebuilds: u32,
    /// Sleep before the first rebuild attempt.
    pub backoff: Duration,
    /// Growth factor of the backoff after every consecutive rebuild
    /// (`>= 1.0`).
    pub backoff_multiplier: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            max_fault_density: 0.05,
            max_rebuilds: 2,
            backoff: Duration::from_micros(200),
            backoff_multiplier: 2.0,
        }
    }
}

/// Sizing/batching policy plus the health policy of a resilient service.
#[derive(Clone, Debug, Default)]
pub struct ResilientConfig {
    /// Replica count, queue bound, batching — as for plain `serve`.
    pub serve: ServeConfig,
    /// Health thresholds and recovery budget.
    pub policy: HealthPolicy,
}

/// Per-replica fault delivery box. Campaigns wait here until the owning
/// replica is between batches and can take `&mut` access to its engines.
#[derive(Debug, Default)]
struct ReplicaMailbox {
    /// Cheap "anything waiting?" flag checked on the hot path.
    has_pending: AtomicBool,
    /// Campaigns to apply once, in delivery order.
    pending: Mutex<Vec<FaultCampaign>>,
    /// Campaign re-applied after every rebuild — permanently bad silicon,
    /// as opposed to a transient upset that a rebuild clears.
    persistent: Mutex<Option<FaultCampaign>>,
}

impl ReplicaMailbox {
    fn deliver(&self, campaign: FaultCampaign) {
        self.pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(campaign);
        self.has_pending.store(true, Ordering::Release);
    }

    fn persistent(&self) -> Option<FaultCampaign> {
        *self.persistent.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The client's handle for injecting faults into a running resilient
/// service, replica by replica.
#[derive(Debug)]
pub struct FaultInjector<'a> {
    mailboxes: &'a [ReplicaMailbox],
}

impl FaultInjector<'_> {
    /// Number of replicas faults can be addressed to.
    pub fn replicas(&self) -> usize {
        self.mailboxes.len()
    }

    /// Delivers `campaign` to `replica` once: it is applied to the
    /// replica's current crossbars before its next batch, and is *not*
    /// re-applied after a rebuild (a transient upset).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn inject(&self, replica: usize, campaign: FaultCampaign) {
        self.mailboxes[replica].deliver(campaign);
    }

    /// Marks `replica`'s silicon as permanently faulty: `campaign` is
    /// applied now *and* re-applied after every rebuild, so recovery can
    /// only succeed if the policy tolerates the resulting fault density —
    /// otherwise the replica exhausts its rebuild budget and quarantines.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn poison(&self, replica: usize, campaign: FaultCampaign) {
        let mailbox = &self.mailboxes[replica];
        *mailbox.persistent.lock().unwrap_or_else(|e| e.into_inner()) = Some(campaign);
        mailbox.deliver(campaign);
    }
}

/// Runs a fault-tolerant multi-replica inference service around a clone of
/// `pristine` per replica, for the duration of `client`.
///
/// Same contract as [`serve`](crate::service::serve) — bounded admission,
/// dynamic batching, graceful close-and-drain shutdown, every admitted
/// ticket resolves — plus the health monitoring described at the module
/// level. The client closure additionally receives a [`FaultInjector`].
///
/// # Panics
///
/// Panics if `config.serve.replicas`, `config.serve.queue_capacity`, or
/// `config.serve.max_batch` is zero, if `sample_dims` is empty, or if the
/// policy is malformed (`backoff_multiplier < 1.0` or a non-finite /
/// negative `max_fault_density`).
pub fn serve_resilient<E, R>(
    pristine: &Executor<E>,
    sample_dims: &[usize],
    config: &ResilientConfig,
    client: impl FnOnce(&ServiceHandle, &FaultInjector<'_>) -> R,
) -> (R, TelemetrySnapshot)
where
    E: FaultableEngine,
    E::Stats: Sync,
{
    crate::server::Server::builder()
        .config(config.serve)
        .health(config.policy)
        .run_resilient(pristine, sample_dims, client)
}

/// The resilient serving core behind both [`serve_resilient`] and
/// [`Server::run_resilient`](crate::server::ServerBuilder::run_resilient).
pub(crate) fn serve_resilient_impl<E, R>(
    pristine: &Executor<E>,
    sample_dims: &[usize],
    config: &ResilientConfig,
    trace: &TraceConfig,
    client: impl FnOnce(&ServiceHandle, &FaultInjector<'_>) -> R,
) -> (R, TelemetrySnapshot)
where
    E: FaultableEngine,
    E::Stats: Sync,
{
    assert!(config.serve.replicas > 0, "need at least one replica");
    assert!(config.serve.max_batch > 0, "batch size must be positive");
    assert!(!sample_dims.is_empty(), "sample shape must be non-empty");
    assert!(
        config.policy.backoff_multiplier >= 1.0,
        "backoff must not shrink"
    );
    assert!(
        config.policy.max_fault_density.is_finite() && config.policy.max_fault_density >= 0.0,
        "fault-density threshold must be finite and non-negative"
    );
    let queue = Arc::new(BoundedQueue::new(config.serve.queue_capacity));
    let telemetry = Arc::new(Telemetry::new(
        pristine.plan().summary(),
        pristine.engines().len(),
        trace,
    ));
    let mailboxes: Vec<ReplicaMailbox> = (0..config.serve.replicas)
        .map(|_| ReplicaMailbox::default())
        .collect();
    let active = AtomicUsize::new(config.serve.replicas);
    let handle = ServiceHandle {
        queue: Arc::clone(&queue),
        telemetry: Arc::clone(&telemetry),
        sample_len: sample_dims.iter().product(),
        default_deadline: config.serve.default_deadline,
    };
    let injector = FaultInjector {
        mailboxes: &mailboxes,
    };
    let result = std::thread::scope(|scope| {
        for (replica, mailbox) in mailboxes.iter().enumerate() {
            let (queue, telemetry) = (Arc::clone(&queue), Arc::clone(&telemetry));
            let active = &active;
            scope.spawn(move || {
                resilient_replica_loop(
                    pristine,
                    replica,
                    sample_dims,
                    config,
                    &queue,
                    &telemetry,
                    mailbox,
                    active,
                );
            });
        }
        let guard = CloseGuard(&queue);
        let result = client(&handle, &injector);
        drop(guard);
        result
    });
    (result, telemetry.snapshot())
}

/// How long an idle replica sleeps between mailbox polls.
const MAILBOX_POLL: Duration = Duration::from_millis(1);

/// One self-policing replica over its own executor clone.
#[allow(clippy::too_many_arguments)]
fn resilient_replica_loop<E: FaultableEngine>(
    pristine: &Executor<E>,
    replica: usize,
    sample_dims: &[usize],
    config: &ResilientConfig,
    queue: &BoundedQueue<Pending>,
    telemetry: &Telemetry,
    mailbox: &ReplicaMailbox,
    active: &AtomicUsize,
) {
    let policy = &config.policy;
    let serve_cfg = &config.serve;
    // Decorrelates this replica's injected faults from its peers': the
    // same campaign poisons different cells on different replicas.
    let salt = replica as u64;
    let mut executor = pristine.clone();
    let mut deltas = LayerDeltas::new(pristine.engines().len());
    let mut consecutive_rebuilds = 0u32;
    let mut backoff = policy.backoff;
    let mut batch: Vec<Pending> = Vec::new();
    let mut live: Vec<Pending> = Vec::new();
    let mut staging: Vec<f32> = Vec::new();
    let mut out: Vec<f32> = Vec::new();

    // Rebuilds from pristine (true) or reports quarantine (false) after
    // one health violation.
    macro_rules! rebuild_or_quarantine {
        () => {{
            consecutive_rebuilds += 1;
            if consecutive_rebuilds > policy.max_rebuilds {
                telemetry.quarantines.fetch_add(1, Ordering::Relaxed);
                telemetry.record_quarantine_event();
                false
            } else {
                telemetry.rebuilds.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = backoff.mul_f64(policy.backoff_multiplier);
                executor = pristine.clone();
                if let Some(campaign) = mailbox.persistent() {
                    executor.inject_faults(&campaign, salt);
                    telemetry.faults_injected.fetch_add(1, Ordering::Relaxed);
                }
                true
            }
        }};
    }

    'serve: loop {
        // Deliver queued campaigns while nothing borrows the engines.
        if mailbox.has_pending.swap(false, Ordering::AcqRel) {
            let campaigns: Vec<FaultCampaign> = mailbox
                .pending
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .drain(..)
                .collect();
            for campaign in campaigns {
                executor.inject_faults(&campaign, salt);
                telemetry.faults_injected.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Density gate: a replica over its fault budget refuses to serve
        // at all — rebuild or quarantine before touching a request.
        if executor.health().fault_density() > policy.max_fault_density {
            if rebuild_or_quarantine!() {
                continue 'serve;
            }
            break 'serve;
        }

        let mut session = executor.session();
        deltas.reset();
        let mut seen_sentinels = session.sentinel_violations();
        loop {
            // Bounded wait: an idle replica must still notice fault
            // deliveries, so it wakes periodically to poll its mailbox.
            match queue.pop_batch_for(
                serve_cfg.max_batch,
                serve_cfg.max_delay,
                MAILBOX_POLL,
                &mut batch,
            ) {
                PopWait::Closed => return,
                PopWait::Idle => {
                    if mailbox.has_pending.load(Ordering::Acquire) {
                        continue 'serve;
                    }
                    continue;
                }
                PopWait::Batch => {}
            }
            let dequeued = Instant::now();
            for pending in &mut batch {
                pending.span.dequeued = Some(dequeued);
            }
            filter_live(&mut batch, &mut live, telemetry);
            if live.is_empty() {
                if mailbox.has_pending.load(Ordering::Acquire) {
                    continue 'serve;
                }
                continue;
            }
            let batch_size = live.len();
            staging.clear();
            for pending in &live {
                staging.extend_from_slice(&pending.input);
            }
            let mut dims = vec![batch_size];
            dims.extend_from_slice(sample_dims);
            let x = Tensor::from_vec(std::mem::take(&mut staging), &dims);
            let batch_formed = Instant::now();
            for pending in &mut live {
                pending.span.batch_formed = Some(batch_formed);
            }
            let forward = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                session.forward_batch_into(&x, &mut out);
            }));
            let executed = Instant::now();
            for pending in &mut live {
                pending.span.executed = Some(executed);
            }
            staging = x.into_vec();
            match forward {
                Ok(()) => {
                    let sentinels = session.sentinel_violations();
                    if sentinels > seen_sentinels {
                        // An output escaped the pristine mapping's range:
                        // the batch may be corrupted, so refuse it before
                        // any slot is filled, then recover.
                        for pending in live.drain(..) {
                            telemetry.degraded.fetch_add(1, Ordering::Relaxed);
                            telemetry.record_terminal_span(
                                TerminalKind::Degraded,
                                &pending.span,
                                executed,
                            );
                            pending.slot.fill(Err(ServeError::Degraded));
                        }
                        out.clear();
                        if rebuild_or_quarantine!() {
                            continue 'serve;
                        }
                        break 'serve;
                    }
                    seen_sentinels = sentinels;
                    consecutive_rebuilds = 0;
                    backoff = policy.backoff;
                    deltas.publish(session.layer_wall_ns(), session.layer_mvms(), telemetry);
                    let per_sample = out.len() / batch_size;
                    for (i, mut pending) in live.drain(..).enumerate() {
                        pending.span.responded = Some(Instant::now());
                        let stages = pending.span.stages();
                        telemetry.record_completed_span(&stages);
                        pending.slot.fill(Ok(Response {
                            output: out[i * per_sample..(i + 1) * per_sample].to_vec(),
                            latency: stages.total(),
                            queue_wait: stages.queue_wait,
                            stages,
                            batch_size,
                        }));
                    }
                }
                Err(_) => {
                    for pending in live.drain(..) {
                        telemetry.failed.fetch_add(1, Ordering::Relaxed);
                        telemetry.record_terminal_span(
                            TerminalKind::Failed,
                            &pending.span,
                            executed,
                        );
                        pending.slot.fill(Err(ServeError::EngineFailed));
                    }
                    out.clear();
                    session = executor.session();
                    deltas.reset();
                    seen_sentinels = session.sentinel_violations();
                }
            }
            if mailbox.has_pending.load(Ordering::Acquire) {
                continue 'serve;
            }
        }
    }

    // Quarantined. If peers remain they absorb the load; if this was the
    // last active replica, drain the queue failing every request so no
    // admitted ticket can hang on an abandoned queue.
    if active.fetch_sub(1, Ordering::AcqRel) == 1 {
        while queue.pop_batch(serve_cfg.max_batch, serve_cfg.max_delay, &mut batch) {
            let dequeued = Instant::now();
            for mut pending in batch.drain(..) {
                pending.span.dequeued = Some(dequeued);
                telemetry.degraded.fetch_add(1, Ordering::Relaxed);
                telemetry.record_terminal_span(TerminalKind::Degraded, &pending.span, dequeued);
                pending.slot.fill(Err(ServeError::Degraded));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_arch::{MappedLayer, MappingConfig};
    use forms_dnn::{Layer, Network, WeightLayerMut};
    use forms_tensor::Tensor as T;

    fn polarized_executor() -> Executor<MappedLayer> {
        let mut rng = forms_rng::StdRng::seed_from_u64(0);
        let mut net = Network::new(vec![Layer::flatten(), Layer::linear(&mut rng, 16, 4)]);
        // All-positive weights are trivially fragment-polarized.
        net.for_each_weight_layer(&mut |wl| {
            if let WeightLayerMut::Linear(l) = wl {
                l.set_weight_matrix(&T::from_fn(&[16, 4], |i| 0.05 + (i % 9) as f32 * 0.1));
            }
        });
        let config = MappingConfig {
            crossbar_dim: 16,
            input_bits: 8,
            ..MappingConfig::paper(4)
        };
        Executor::map_network(&net, &config, 8).unwrap()
    }

    fn heavy_stuck() -> FaultCampaign {
        FaultCampaign::stuck_at(13, 0.25, 0.25)
    }

    #[test]
    fn healthy_service_completes_without_recovery_events() {
        let exec = polarized_executor();
        let config = ResilientConfig {
            serve: ServeConfig {
                replicas: 2,
                ..ServeConfig::default()
            },
            policy: HealthPolicy::default(),
        };
        let (outputs, telemetry) = serve_resilient(&exec, &[1, 4, 4], &config, |handle, _| {
            let tickets: Vec<_> = (0..8)
                .map(|_| handle.submit(vec![0.5; 16]).unwrap())
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().unwrap().output)
                .collect::<Vec<_>>()
        });
        assert_eq!(outputs.len(), 8);
        assert_eq!(telemetry.completed, 8);
        assert_eq!(telemetry.degraded, 0);
        assert_eq!(telemetry.rebuilds, 0);
        assert_eq!(telemetry.quarantines, 0);
    }

    #[test]
    fn poisoned_replica_quarantines_while_peer_keeps_serving() {
        let exec = polarized_executor();
        let config = ResilientConfig {
            serve: ServeConfig {
                replicas: 2,
                ..ServeConfig::default()
            },
            policy: HealthPolicy {
                max_fault_density: 0.01,
                max_rebuilds: 1,
                backoff: Duration::from_micros(50),
                backoff_multiplier: 2.0,
            },
        };
        let clean = {
            let mut probe = exec.clone();
            let x = T::from_vec(vec![0.5; 16], &[1, 1, 4, 4]);
            probe.forward(&x).into_vec()
        };
        let (outputs, telemetry) = serve_resilient(&exec, &[1, 4, 4], &config, |handle, faults| {
            faults.poison(0, heavy_stuck());
            // Give the poisoned replica time to notice and quarantine.
            std::thread::sleep(Duration::from_millis(20));
            let tickets: Vec<_> = (0..12)
                .map(|_| handle.submit(vec![0.5; 16]).unwrap())
                .collect();
            tickets
                .into_iter()
                .filter_map(|t| t.wait().ok().map(|r| r.output))
                .collect::<Vec<_>>()
        });
        assert_eq!(telemetry.quarantines, 1, "poisoned replica must drain");
        assert!(telemetry.rebuilds >= 1, "it must have tried to recover");
        assert!(telemetry.faults_injected >= 1);
        assert!(!outputs.is_empty(), "healthy replica keeps completing");
        // Zero corrupted responses: everything completed matches pristine.
        for out in &outputs {
            assert_eq!(out, &clean, "completed output must be uncorrupted");
        }
        assert_eq!(telemetry.completed, outputs.len() as u64);
    }

    #[test]
    fn last_replica_quarantine_fails_requests_instead_of_hanging() {
        let exec = polarized_executor();
        let config = ResilientConfig {
            serve: ServeConfig {
                replicas: 1,
                ..ServeConfig::default()
            },
            policy: HealthPolicy {
                max_fault_density: 0.01,
                max_rebuilds: 0,
                backoff: Duration::from_micros(10),
                backoff_multiplier: 1.0,
            },
        };
        let ((), telemetry) = serve_resilient(&exec, &[1, 4, 4], &config, |handle, faults| {
            faults.poison(0, heavy_stuck());
            std::thread::sleep(Duration::from_millis(10));
            // Every ticket must resolve even with all replicas gone.
            let tickets: Vec<_> = (0..6)
                .map(|_| handle.submit(vec![0.5; 16]).unwrap())
                .collect();
            for t in tickets {
                match t.wait() {
                    Err(ServeError::Degraded) | Ok(_) => {}
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        });
        assert_eq!(telemetry.quarantines, 1);
        assert!(telemetry.degraded > 0, "drained requests counted degraded");
    }

    #[test]
    fn transient_injection_recovers_after_rebuild() {
        let exec = polarized_executor();
        let config = ResilientConfig {
            serve: ServeConfig::default(),
            policy: HealthPolicy {
                max_fault_density: 0.01,
                max_rebuilds: 5,
                backoff: Duration::from_micros(10),
                backoff_multiplier: 2.0,
            },
        };
        let (out, telemetry) = serve_resilient(&exec, &[1, 4, 4], &config, |handle, faults| {
            // One-shot upset: the rebuild clears it, so the replica comes
            // back healthy and keeps serving.
            faults.inject(0, heavy_stuck());
            std::thread::sleep(Duration::from_millis(10));
            handle.submit(vec![0.5; 16]).unwrap().wait().unwrap().output
        });
        assert_eq!(out.len(), 4);
        assert_eq!(telemetry.quarantines, 0, "transient fault must not kill");
        assert!(telemetry.rebuilds >= 1);
        assert_eq!(telemetry.completed, 1);
    }
}
