//! Lock-free serving telemetry: outcome counters and a fixed-bucket
//! latency histogram with percentile extraction.
//!
//! Replica workers and submitters record into plain atomics — no lock is
//! ever taken on the request path, so telemetry can't become a point of
//! contention or a deadlock participant. The histogram uses fixed
//! log-spaced buckets (geometric growth of √2 per bucket starting at 1 µs,
//! so every estimate is within ±19% of the true value across six decades),
//! and p50/p95/p99 are extracted from a consistent-enough snapshot by
//! geometric interpolation inside the hit bucket.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use crate::json::JsonValue;

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;
/// Lower edge of bucket 1 in nanoseconds (bucket 0 catches everything
/// below it).
pub const HISTOGRAM_LO_NS: f64 = 1_000.0;
/// Geometric growth factor between consecutive bucket edges.
pub const HISTOGRAM_GROWTH: f64 = std::f64::consts::SQRT_2;

/// Bucketing searches a precomputed edge table instead of inverting the
/// geometric formula with `log2`: the float round-trip
/// `powi(log2(x)/log2(g))` landed values sitting exactly on a bucket edge
/// one bucket low (e.g. `bucket_lower_ns(3)` classified into bucket 2), so
/// histogram buckets disagreed with the edges reported by
/// [`bucket_lower_ns`]. The table makes edge membership exact by
/// construction: bucket `i` is `[edges[i], edges[i+1])`.
fn edges() -> &'static [f64; HISTOGRAM_BUCKETS] {
    static EDGES: OnceLock<[f64; HISTOGRAM_BUCKETS]> = OnceLock::new();
    EDGES.get_or_init(|| std::array::from_fn(bucket_lower_ns))
}

fn bucket_index(ns: u64) -> usize {
    edges().partition_point(|&edge| edge <= ns as f64) - 1
}

/// Lower edge of bucket `i` in nanoseconds (0 for bucket 0).
pub fn bucket_lower_ns(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        HISTOGRAM_LO_NS * HISTOGRAM_GROWTH.powi(i as i32 - 1)
    }
}

/// Upper edge of bucket `i` in nanoseconds.
pub fn bucket_upper_ns(i: usize) -> f64 {
    HISTOGRAM_LO_NS * HISTOGRAM_GROWTH.powi(i as i32)
}

/// A lock-free fixed-bucket latency histogram.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of the histogram counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations in nanoseconds.
    pub sum_ns: u64,
    /// Largest observation in nanoseconds (exact, not bucketed).
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) in nanoseconds by
    /// geometric interpolation within the bucket holding the target rank.
    /// Returns 0 when no observations were recorded.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate geometrically between the bucket edges by
                // the fraction of the rank inside this bucket.
                let lo = bucket_lower_ns(i).max(1.0);
                let hi = bucket_upper_ns(i).min(self.max_ns as f64).max(lo);
                let frac = (rank - seen) as f64 / c as f64;
                return lo * (hi / lo).powf(frac);
            }
            seen += c;
        }
        self.max_ns as f64
    }

    /// Median latency estimate in nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile latency estimate in nanoseconds.
    pub fn p95_ns(&self) -> f64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile latency estimate in nanoseconds.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }
}

/// Lock-free counters for every request outcome plus the end-to-end
/// latency histogram of completed requests.
#[derive(Debug)]
pub struct Telemetry {
    /// Requests offered to `submit` (accepted or not).
    pub submitted: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests refused at admission (queue full or service closing).
    pub shed: AtomicU64,
    /// Requests whose deadline passed before execution began.
    pub expired: AtomicU64,
    /// Requests cancelled by the client before execution.
    pub cancelled: AtomicU64,
    /// Requests that failed because a replica's engine panicked.
    pub failed: AtomicU64,
    /// Requests failed because the owning replica was unhealthy (sentinel
    /// tripped or fault density over policy) — degraded service, not a
    /// crash.
    pub degraded: AtomicU64,
    /// Replica sessions rebuilt from the pristine mapping after a health
    /// violation.
    pub rebuilds: AtomicU64,
    /// Replicas permanently drained after exhausting their rebuild budget.
    pub quarantines: AtomicU64,
    /// Fault-campaign applications delivered to replicas.
    pub faults_injected: AtomicU64,
    latency: AtomicHistogram,
    /// Summary of the precision plan the served executor was mapped under
    /// (e.g. `"uniform w8/a16"`). Set once at service construction, before
    /// any worker thread observes the telemetry, and immutable thereafter.
    plan: String,
}

impl Telemetry {
    /// Telemetry tagged with the served executor's precision-plan summary.
    pub(crate) fn tagged(plan: String) -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            latency: AtomicHistogram::new(),
            plan,
        }
    }

    /// Summary of the served executor's precision plan (empty if untagged).
    pub fn plan(&self) -> &str {
        &self.plan
    }

    /// Records one successful completion with its end-to-end latency.
    pub(crate) fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Takes an immutable snapshot of every counter and the histogram.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
            plan: self.plan.clone(),
        }
    }
}

/// A consistent-enough copy of the telemetry counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Requests offered to `submit`.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests refused at admission.
    pub shed: u64,
    /// Requests expired before execution.
    pub expired: u64,
    /// Requests cancelled before execution.
    pub cancelled: u64,
    /// Requests failed by a panicking replica.
    pub failed: u64,
    /// Requests failed by an unhealthy (degraded) replica.
    pub degraded: u64,
    /// Replica sessions rebuilt after health violations.
    pub rebuilds: u64,
    /// Replicas permanently drained.
    pub quarantines: u64,
    /// Fault-campaign applications delivered.
    pub faults_injected: u64,
    /// Latency histogram of completed requests.
    pub latency: HistogramSnapshot,
    /// Summary of the precision plan the served executor was mapped under
    /// (empty if the service predates plan tagging).
    pub plan: String,
}

/// Reads a non-negative integer counter (stored as a JSON number) from an
/// object field. Counters fit `f64` exactly up to 2^53, far beyond any
/// realistic request count.
fn counter(doc: &JsonValue, key: &str) -> Result<u64, String> {
    let v = doc
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing numeric `{key}`"))?;
    if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0) {
        return Err(format!("`{key}` must be a non-negative integer"));
    }
    Ok(v as u64)
}

impl HistogramSnapshot {
    /// Renders the histogram as a JSON object (`buckets`, `count`,
    /// `sum_ns`, `max_ns`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "buckets",
                JsonValue::Array(
                    self.buckets
                        .iter()
                        .map(|&c| JsonValue::Number(c as f64))
                        .collect(),
                ),
            ),
            ("count", JsonValue::Number(self.count as f64)),
            ("sum_ns", JsonValue::Number(self.sum_ns as f64)),
            ("max_ns", JsonValue::Number(self.max_ns as f64)),
        ])
    }

    /// Parses a histogram previously rendered by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let buckets = doc
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or("missing `buckets` array")?;
        if buckets.len() != HISTOGRAM_BUCKETS {
            return Err(format!(
                "expected {HISTOGRAM_BUCKETS} buckets, found {}",
                buckets.len()
            ));
        }
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in buckets.iter().enumerate() {
            let v = b
                .as_f64()
                .ok_or_else(|| format!("bucket {i} is not a number"))?;
            if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0) {
                return Err(format!("bucket {i} must be a non-negative integer"));
            }
            out[i] = v as u64;
        }
        Ok(Self {
            buckets: out,
            count: counter(doc, "count")?,
            sum_ns: counter(doc, "sum_ns")?,
            max_ns: counter(doc, "max_ns")?,
        })
    }
}

impl TelemetrySnapshot {
    /// Fraction of offered requests that were shed (0 when none offered).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }

    /// Requests with a recorded terminal outcome.
    pub fn resolved(&self) -> u64 {
        self.completed + self.shed + self.expired + self.cancelled + self.failed + self.degraded
    }

    /// Renders the snapshot as a JSON object — the single schema shared by
    /// the `forms-net` telemetry wire frame and the bench report writers.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("submitted", JsonValue::Number(self.submitted as f64)),
            ("completed", JsonValue::Number(self.completed as f64)),
            ("shed", JsonValue::Number(self.shed as f64)),
            ("expired", JsonValue::Number(self.expired as f64)),
            ("cancelled", JsonValue::Number(self.cancelled as f64)),
            ("failed", JsonValue::Number(self.failed as f64)),
            ("degraded", JsonValue::Number(self.degraded as f64)),
            ("rebuilds", JsonValue::Number(self.rebuilds as f64)),
            ("quarantines", JsonValue::Number(self.quarantines as f64)),
            (
                "faults_injected",
                JsonValue::Number(self.faults_injected as f64),
            ),
            ("latency", self.latency.to_json()),
            ("plan", JsonValue::String(self.plan.clone())),
        ])
    }

    /// Parses a snapshot previously rendered by [`to_json`](Self::to_json)
    /// — the inverse used by consumers of the `forms-net` metrics frame.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        Ok(Self {
            submitted: counter(doc, "submitted")?,
            completed: counter(doc, "completed")?,
            shed: counter(doc, "shed")?,
            expired: counter(doc, "expired")?,
            cancelled: counter(doc, "cancelled")?,
            failed: counter(doc, "failed")?,
            degraded: counter(doc, "degraded")?,
            rebuilds: counter(doc, "rebuilds")?,
            quarantines: counter(doc, "quarantines")?,
            faults_injected: counter(doc, "faults_injected")?,
            latency: HistogramSnapshot::from_json(
                doc.get("latency").ok_or("missing `latency` object")?,
            )?,
            plan: doc
                .get("plan")
                .and_then(JsonValue::as_str)
                .ok_or("missing string `plan`")?
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_monotone_and_cover_the_range() {
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_lower_ns(i) < bucket_upper_ns(i));
            assert!(bucket_upper_ns(i - 1) <= bucket_lower_ns(i) + 1e-9);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(999), 0);
        assert_eq!(bucket_index(1_000), 1);
        // Far beyond the top edge still lands in the last bucket.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn every_bucket_edge_classifies_into_its_own_bucket() {
        // Regression: the log2-based bucketing misclassified values
        // sitting exactly on (or a hair above) a bucket's lower edge into
        // the bucket below. Every edge must open its own bucket, and the
        // nanosecond just below it must stay in the previous one.
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lower_ns(i);
            let lo_ns = lo.ceil() as u64;
            assert_eq!(
                bucket_index(lo_ns),
                i,
                "lower edge {lo} of bucket {i} must round into bucket {i}"
            );
            if i > 0 && lo.ceil() == lo {
                assert_eq!(
                    bucket_index(lo_ns - 1),
                    i - 1,
                    "just below edge {lo} must stay in bucket {}",
                    i - 1
                );
            }
        }
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let h = AtomicHistogram::new();
        // 100 observations at ~1 ms, 10 at ~100 ms.
        for _ in 0..100 {
            h.record(Duration::from_micros(1_000));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(100));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 110);
        let p50 = s.p50_ns();
        assert!((0.5e6..2.0e6).contains(&p50), "p50 {p50}");
        let p99 = s.p99_ns();
        assert!((50.0e6..200.0e6).contains(&p99), "p99 {p99}");
        assert!(s.p95_ns() <= p99 + 1e-9);
        assert_eq!(s.max_ns, 100_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = AtomicHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns(), 0.0);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn telemetry_snapshot_accounts_outcomes() {
        let t = Telemetry::tagged(String::new());
        t.submitted.fetch_add(5, Ordering::Relaxed);
        t.record_completed(Duration::from_micros(10));
        t.record_completed(Duration::from_micros(20));
        t.shed.fetch_add(2, Ordering::Relaxed);
        t.failed.fetch_add(1, Ordering::Relaxed);
        let s = t.snapshot();
        assert_eq!(s.resolved(), 5);
        assert_eq!(s.shed_rate(), 0.4);
        assert_eq!(s.latency.count, 2);
    }

    #[test]
    fn plan_tag_flows_into_snapshots() {
        let t = Telemetry::tagged("mixed w4-8/a8-16 (5 layers)".to_string());
        assert_eq!(t.plan(), "mixed w4-8/a8-16 (5 layers)");
        assert_eq!(t.snapshot().plan, "mixed w4-8/a8-16 (5 layers)");
        assert_eq!(Telemetry::tagged(String::new()).snapshot().plan, "");
    }

    /// A snapshot with arbitrary counters, histogram contents and plan
    /// tag — including empty and unicode-heavy plans.
    fn arbitrary_snapshot(rng: &mut forms_rng::StdRng) -> TelemetrySnapshot {
        use forms_rng::Rng;
        let mut counter = |hi: u64| rng.next_u64() % hi;
        let submitted = counter(1 << 40);
        let mut latency = HistogramSnapshot {
            buckets: [0u64; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: counter(1 << 50),
        };
        for b in latency.buckets.iter_mut() {
            *b = counter(1 << 20);
        }
        latency.count = latency.buckets.iter().sum();
        latency.sum_ns = counter(1 << 52);
        const PLANS: &[&str] = &[
            "",
            "uniform w8/a16",
            "mixed w4-8/a8-16 (5 layers)",
            "µ\"p\\n",
        ];
        TelemetrySnapshot {
            submitted,
            completed: counter(1 << 40),
            shed: counter(1 << 32),
            expired: counter(1 << 32),
            cancelled: counter(1 << 32),
            failed: counter(1 << 32),
            degraded: counter(1 << 32),
            rebuilds: counter(1 << 16),
            quarantines: counter(1 << 8),
            faults_injected: counter(1 << 16),
            latency,
            plan: PLANS[counter(PLANS.len() as u64) as usize].to_string(),
        }
    }

    #[test]
    fn snapshot_json_round_trips_on_arbitrary_telemetry() {
        use forms_rng::StdRng;
        let mut rng = StdRng::seed_from_u64(0x7E1E_0502);
        for case in 0..200 {
            let snapshot = arbitrary_snapshot(&mut rng);
            let doc = snapshot.to_json();
            let text = doc.pretty();
            let reparsed = crate::json::parse(&text)
                .unwrap_or_else(|e| panic!("case {case}: emitted invalid JSON: {e}\n{text}"));
            let back = TelemetrySnapshot::from_json(&reparsed)
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(back, snapshot, "case {case} did not round-trip");
        }
    }

    #[test]
    fn snapshot_from_json_rejects_malformed_documents() {
        let good = Telemetry::tagged("uniform w8/a16".into())
            .snapshot()
            .to_json();
        assert!(TelemetrySnapshot::from_json(&good).is_ok());
        let JsonValue::Object(fields) = &good else {
            panic!("snapshot renders an object")
        };
        for (key, _) in fields {
            let broken =
                JsonValue::Object(fields.iter().filter(|(k, _)| k != key).cloned().collect());
            assert!(
                TelemetrySnapshot::from_json(&broken).is_err(),
                "accepted document without `{key}`"
            );
        }
        // Negative and fractional counters are rejected, not truncated.
        for bad in [-1.0, 0.5, f64::NAN] {
            let mut fields = fields.clone();
            fields[0].1 = JsonValue::Number(bad);
            assert!(TelemetrySnapshot::from_json(&JsonValue::Object(fields)).is_err());
        }
        assert!(TelemetrySnapshot::from_json(&JsonValue::Null).is_err());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = AtomicHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let href = &h;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        href.record(Duration::from_nanos(500 + i * 1_000));
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 4000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 4000);
    }
}
