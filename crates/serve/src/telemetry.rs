//! Lock-free serving telemetry: outcome counters, per-stage latency
//! histograms with percentile extraction, the terminal-event ring, and
//! per-layer execution-time attribution.
//!
//! Replica workers and submitters record into plain atomics — no lock is
//! ever taken on the request path, so telemetry can't become a point of
//! contention or a deadlock participant. Histograms use fixed log-spaced
//! buckets (geometric growth of √2 per bucket starting at 1 µs, so every
//! estimate is within ±19% of the true value across six decades), and
//! p50/p95/p99 are extracted from a consistent-enough snapshot by
//! geometric interpolation inside the hit bucket.
//!
//! Beyond the end-to-end latency histogram, each completed request's
//! [`StageDurations`] feed four per-stage histograms (queue-wait,
//! batch-form, execute, respond — see [`crate::trace`]), terminal events
//! land in a bounded [`EventRing`], and replicas attribute wall time and
//! MVM counts to individual weight layers between batches. All of it
//! aggregates into [`TelemetrySnapshot`], whose JSON rendering (schema
//! version 2) is the single schema shared by the `forms-net` telemetry
//! wire frame and the bench report writers; version-1 documents (without
//! the tracing extensions) still parse, so old snapshots and old servers
//! interoperate with new clients.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::json::JsonValue;
use crate::trace::{
    EventRecord, EventRing, SpanRecord, StageDurations, TerminalKind, TraceConfig, STAGE_COUNT,
    STAGE_NAMES,
};

/// Version tag written into every telemetry JSON document. Version 2
/// added the tracing extensions (`stages`, `events`, `slowest`,
/// `layers`); they parse as optional so version-1 documents remain valid.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 2;

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;
/// Lower edge of bucket 1 in nanoseconds (bucket 0 catches everything
/// below it).
pub const HISTOGRAM_LO_NS: f64 = 1_000.0;
/// Geometric growth factor between consecutive bucket edges.
pub const HISTOGRAM_GROWTH: f64 = std::f64::consts::SQRT_2;

/// Bucketing searches a precomputed edge table instead of inverting the
/// geometric formula with `log2`: the float round-trip
/// `powi(log2(x)/log2(g))` landed values sitting exactly on a bucket edge
/// one bucket low (e.g. `bucket_lower_ns(3)` classified into bucket 2), so
/// histogram buckets disagreed with the edges reported by
/// [`bucket_lower_ns`]. The table makes edge membership exact by
/// construction: bucket `i` is `[edges[i], edges[i+1])`.
fn edges() -> &'static [f64; HISTOGRAM_BUCKETS] {
    static EDGES: OnceLock<[f64; HISTOGRAM_BUCKETS]> = OnceLock::new();
    EDGES.get_or_init(|| std::array::from_fn(bucket_lower_ns))
}

fn bucket_index(ns: u64) -> usize {
    edges().partition_point(|&edge| edge <= ns as f64) - 1
}

/// Lower edge of bucket `i` in nanoseconds (0 for bucket 0).
pub fn bucket_lower_ns(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        HISTOGRAM_LO_NS * HISTOGRAM_GROWTH.powi(i as i32 - 1)
    }
}

/// Upper edge of bucket `i` in nanoseconds.
pub fn bucket_upper_ns(i: usize) -> f64 {
    HISTOGRAM_LO_NS * HISTOGRAM_GROWTH.powi(i as i32)
}

/// A lock-free fixed-bucket latency histogram.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of the histogram counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations in nanoseconds.
    pub sum_ns: u64,
    /// Largest observation in nanoseconds (exact, not bucketed).
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// A histogram with no observations.
    pub fn empty() -> Self {
        Self {
            buckets: [0u64; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) in nanoseconds by
    /// geometric interpolation within the bucket holding the target rank.
    /// Returns 0 when no observations were recorded.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate geometrically between the bucket edges by
                // the fraction of the rank inside this bucket.
                let lo = bucket_lower_ns(i).max(1.0);
                let hi = bucket_upper_ns(i).min(self.max_ns as f64).max(lo);
                let frac = (rank - seen) as f64 / c as f64;
                return lo * (hi / lo).powf(frac);
            }
            seen += c;
        }
        self.max_ns as f64
    }

    /// Median latency estimate in nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile latency estimate in nanoseconds.
    pub fn p95_ns(&self) -> f64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile latency estimate in nanoseconds.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }
}

/// Lock-free counters for every request outcome plus the end-to-end
/// latency histogram of completed requests.
#[derive(Debug)]
pub struct Telemetry {
    /// Requests offered to `submit` (accepted or not).
    pub submitted: AtomicU64,
    /// Requests completed successfully.
    pub completed: AtomicU64,
    /// Requests refused at admission (queue full or service closing).
    pub shed: AtomicU64,
    /// Requests whose deadline passed before execution began.
    pub expired: AtomicU64,
    /// Requests cancelled by the client before execution.
    pub cancelled: AtomicU64,
    /// Requests that failed because a replica's engine panicked.
    pub failed: AtomicU64,
    /// Requests failed because the owning replica was unhealthy (sentinel
    /// tripped or fault density over policy) — degraded service, not a
    /// crash.
    pub degraded: AtomicU64,
    /// Replica sessions rebuilt from the pristine mapping after a health
    /// violation.
    pub rebuilds: AtomicU64,
    /// Replicas permanently drained after exhausting their rebuild budget.
    pub quarantines: AtomicU64,
    /// Fault-campaign applications delivered to replicas.
    pub faults_injected: AtomicU64,
    latency: AtomicHistogram,
    /// Per-stage latency histograms of completed requests, in
    /// [`STAGE_NAMES`] order.
    stages: [AtomicHistogram; STAGE_COUNT],
    /// Recent terminal events and slowest-N completed spans.
    events: EventRing,
    /// Per-weight-layer execution-time / MVM attribution cells.
    per_layer: Vec<LayerCell>,
    /// Summary of the precision plan the served executor was mapped under
    /// (e.g. `"uniform w8/a16"`). Set once at service construction, before
    /// any worker thread observes the telemetry, and immutable thereafter.
    plan: String,
}

/// One weight layer's lock-free attribution counters.
#[derive(Debug, Default)]
struct LayerCell {
    /// Wall-clock nanoseconds replicas spent inside this layer's lowering.
    wall_ns: AtomicU64,
    /// Matrix-vector activations executed on this layer.
    mvms: AtomicU64,
}

impl Telemetry {
    /// Telemetry for a service over `layer_count` weight layers, tagged
    /// with the executor's precision-plan summary and sized by `trace`.
    pub(crate) fn new(plan: String, layer_count: usize, trace: &TraceConfig) -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            latency: AtomicHistogram::new(),
            stages: std::array::from_fn(|_| AtomicHistogram::new()),
            events: EventRing::new(trace),
            per_layer: (0..layer_count).map(|_| LayerCell::default()).collect(),
            plan,
        }
    }

    /// Telemetry tagged with the served executor's precision-plan summary
    /// (no layer attribution, default trace sizing).
    #[cfg(test)]
    pub(crate) fn tagged(plan: String) -> Self {
        Self::new(plan, 0, &TraceConfig::default())
    }

    /// Summary of the served executor's precision plan (empty if untagged).
    pub fn plan(&self) -> &str {
        &self.plan
    }

    /// Records one successful completion with its end-to-end latency.
    pub(crate) fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Records one successful completion from its full stage breakdown:
    /// the end-to-end latency is the stages' exact sum, each stage lands
    /// in its own histogram, and the span competes for the slowest-N list.
    pub(crate) fn record_completed_span(&self, stages: &StageDurations) {
        let total = stages.total();
        self.record_completed(total);
        for (h, d) in self.stages.iter().zip([
            stages.queue_wait,
            stages.batch_form,
            stages.execute,
            stages.respond,
        ]) {
            h.record(d);
        }
        let total_ns = u64::try_from(total.as_nanos()).unwrap_or(u64::MAX);
        self.events.record_completed(stages.as_ns(), total_ns);
    }

    /// Flushes a request that ended without completing (shed, expired,
    /// cancelled, failed, degraded) into the terminal-event ring with its
    /// partial span. Does *not* touch the outcome counters — callers keep
    /// incrementing those as before.
    pub(crate) fn record_terminal_span(&self, kind: TerminalKind, span: &SpanRecord, now: Instant) {
        self.events
            .record_terminal(kind, span.partial_stage_ns(now), span.total_ns(now));
    }

    /// Marks a replica quarantine in the event ring (span-less: this is a
    /// replica lifecycle event, not a request outcome).
    pub(crate) fn record_quarantine_event(&self) {
        self.events
            .record_terminal(TerminalKind::Quarantined, [0; STAGE_COUNT], 0);
    }

    /// Adds per-layer wall-time and MVM deltas measured by a replica's
    /// session since its last flush. Slices shorter than the layer count
    /// (or an untagged zero-layer telemetry) add nothing for the missing
    /// tail.
    pub(crate) fn add_layer_attribution(&self, wall_ns: &[u64], mvms: &[u64]) {
        for (cell, &w) in self.per_layer.iter().zip(wall_ns) {
            cell.wall_ns.fetch_add(w, Ordering::Relaxed);
        }
        for (cell, &m) in self.per_layer.iter().zip(mvms) {
            cell.mvms.fetch_add(m, Ordering::Relaxed);
        }
    }

    /// Takes an immutable snapshot of every counter, histogram, the event
    /// ring and the per-layer attribution.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let (events, slowest) = self.events.snapshot();
        TelemetrySnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
            stages: StageSnapshots {
                queue_wait: self.stages[0].snapshot(),
                batch_form: self.stages[1].snapshot(),
                execute: self.stages[2].snapshot(),
                respond: self.stages[3].snapshot(),
            },
            events,
            slowest,
            layers: self
                .per_layer
                .iter()
                .map(|cell| LayerAttribution {
                    wall_ns: cell.wall_ns.load(Ordering::Relaxed),
                    mvms: cell.mvms.load(Ordering::Relaxed),
                })
                .collect(),
            plan: self.plan.clone(),
        }
    }
}

/// A consistent-enough copy of the telemetry counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Requests offered to `submit`.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests refused at admission.
    pub shed: u64,
    /// Requests expired before execution.
    pub expired: u64,
    /// Requests cancelled before execution.
    pub cancelled: u64,
    /// Requests failed by a panicking replica.
    pub failed: u64,
    /// Requests failed by an unhealthy (degraded) replica.
    pub degraded: u64,
    /// Replica sessions rebuilt after health violations.
    pub rebuilds: u64,
    /// Replicas permanently drained.
    pub quarantines: u64,
    /// Fault-campaign applications delivered.
    pub faults_injected: u64,
    /// Latency histogram of completed requests.
    pub latency: HistogramSnapshot,
    /// Per-stage latency histograms of completed requests (empty
    /// histograms when parsed from a version-1 document).
    pub stages: StageSnapshots,
    /// Recent terminal events, oldest first (empty on version-1 parses).
    pub events: Vec<EventRecord>,
    /// Slowest completed spans, slowest first (empty on version-1 parses).
    pub slowest: Vec<EventRecord>,
    /// Per-weight-layer execution attribution, in visit order (empty on
    /// version-1 parses or untagged telemetry).
    pub layers: Vec<LayerAttribution>,
    /// Summary of the precision plan the served executor was mapped under
    /// (empty if the service predates plan tagging).
    pub plan: String,
}

/// The four per-stage latency histograms of a snapshot, in pipeline order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSnapshots {
    /// Admission → dequeue.
    pub queue_wait: HistogramSnapshot,
    /// Dequeue → batch formed.
    pub batch_form: HistogramSnapshot,
    /// Batch formed → forward returned.
    pub execute: HistogramSnapshot,
    /// Forward returned → slot filled.
    pub respond: HistogramSnapshot,
}

impl StageSnapshots {
    /// All-empty stage histograms (the version-1 parse default).
    pub fn empty() -> Self {
        Self {
            queue_wait: HistogramSnapshot::empty(),
            batch_form: HistogramSnapshot::empty(),
            execute: HistogramSnapshot::empty(),
            respond: HistogramSnapshot::empty(),
        }
    }

    /// The stage histograms in pipeline order (matching [`STAGE_NAMES`]).
    pub fn in_order(&self) -> [&HistogramSnapshot; STAGE_COUNT] {
        [
            &self.queue_wait,
            &self.batch_form,
            &self.execute,
            &self.respond,
        ]
    }

    /// Renders the stages as one JSON object keyed by [`STAGE_NAMES`].
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(
            STAGE_NAMES
                .iter()
                .zip(self.in_order())
                .map(|(&name, h)| (name, h.to_json()))
                .collect(),
        )
    }

    /// Parses stages rendered by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed stage.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let stage = |name: &str| -> Result<HistogramSnapshot, String> {
            HistogramSnapshot::from_json(
                doc.get(name)
                    .ok_or_else(|| format!("missing stage `{name}`"))?,
            )
            .map_err(|e| format!("stage `{name}`: {e}"))
        };
        Ok(Self {
            queue_wait: stage("queue_wait")?,
            batch_form: stage("batch_form")?,
            execute: stage("execute")?,
            respond: stage("respond")?,
        })
    }
}

/// One weight layer's share of the service's execution cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerAttribution {
    /// Wall-clock nanoseconds replicas spent inside this layer's lowering.
    pub wall_ns: u64,
    /// Matrix-vector activations executed on this layer.
    pub mvms: u64,
}

/// Reads a non-negative integer counter (stored as a JSON number) from an
/// object field. Counters fit `f64` exactly up to 2^53, far beyond any
/// realistic request count.
fn counter(doc: &JsonValue, key: &str) -> Result<u64, String> {
    let v = doc
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing numeric `{key}`"))?;
    if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0) {
        return Err(format!("`{key}` must be a non-negative integer"));
    }
    Ok(v as u64)
}

impl HistogramSnapshot {
    /// Renders the histogram as a JSON object (`buckets`, `count`,
    /// `sum_ns`, `max_ns`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "buckets",
                JsonValue::Array(
                    self.buckets
                        .iter()
                        .map(|&c| JsonValue::Number(c as f64))
                        .collect(),
                ),
            ),
            ("count", JsonValue::Number(self.count as f64)),
            ("sum_ns", JsonValue::Number(self.sum_ns as f64)),
            ("max_ns", JsonValue::Number(self.max_ns as f64)),
        ])
    }

    /// Parses a histogram previously rendered by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let buckets = doc
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or("missing `buckets` array")?;
        if buckets.len() != HISTOGRAM_BUCKETS {
            return Err(format!(
                "expected {HISTOGRAM_BUCKETS} buckets, found {}",
                buckets.len()
            ));
        }
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in buckets.iter().enumerate() {
            let v = b
                .as_f64()
                .ok_or_else(|| format!("bucket {i} is not a number"))?;
            if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0) {
                return Err(format!("bucket {i} must be a non-negative integer"));
            }
            out[i] = v as u64;
        }
        Ok(Self {
            buckets: out,
            count: counter(doc, "count")?,
            sum_ns: counter(doc, "sum_ns")?,
            max_ns: counter(doc, "max_ns")?,
        })
    }
}

impl TelemetrySnapshot {
    /// Fraction of offered requests that were shed (0 when none offered).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }

    /// Requests with a recorded terminal outcome.
    pub fn resolved(&self) -> u64 {
        self.completed + self.shed + self.expired + self.cancelled + self.failed + self.degraded
    }

    /// Renders the snapshot as a JSON object — the single schema shared by
    /// the `forms-net` telemetry wire frame and the bench report writers.
    ///
    /// The document carries `schema_version` [`TELEMETRY_SCHEMA_VERSION`];
    /// the version-2 additions (`stages`, `events`, `slowest`, `layers`)
    /// are *optional* on parse, so version-1 consumers ignore them and
    /// version-1 documents still round-trip through
    /// [`from_json`](Self::from_json).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            (
                "schema_version",
                JsonValue::Number(f64::from(TELEMETRY_SCHEMA_VERSION)),
            ),
            ("submitted", JsonValue::Number(self.submitted as f64)),
            ("completed", JsonValue::Number(self.completed as f64)),
            ("shed", JsonValue::Number(self.shed as f64)),
            ("expired", JsonValue::Number(self.expired as f64)),
            ("cancelled", JsonValue::Number(self.cancelled as f64)),
            ("failed", JsonValue::Number(self.failed as f64)),
            ("degraded", JsonValue::Number(self.degraded as f64)),
            ("rebuilds", JsonValue::Number(self.rebuilds as f64)),
            ("quarantines", JsonValue::Number(self.quarantines as f64)),
            (
                "faults_injected",
                JsonValue::Number(self.faults_injected as f64),
            ),
            ("latency", self.latency.to_json()),
            ("stages", self.stages.to_json()),
            (
                "events",
                JsonValue::Array(self.events.iter().map(EventRecord::to_json).collect()),
            ),
            (
                "slowest",
                JsonValue::Array(self.slowest.iter().map(EventRecord::to_json).collect()),
            ),
            (
                "layers",
                JsonValue::Array(
                    self.layers
                        .iter()
                        .map(|l| {
                            JsonValue::object(vec![
                                ("wall_ns", JsonValue::Number(l.wall_ns as f64)),
                                ("mvms", JsonValue::Number(l.mvms as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("plan", JsonValue::String(self.plan.clone())),
        ])
    }

    /// Parses a snapshot previously rendered by [`to_json`](Self::to_json)
    /// — the inverse used by consumers of the `forms-net` metrics frame.
    ///
    /// The version-1 fields (counters, `latency`, `plan`) are required;
    /// the version-2 tracing extensions (`stages`, `events`, `slowest`,
    /// `layers`) default to empty when absent, so documents written by
    /// older servers still parse. Extensions that *are* present must be
    /// well-formed.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        // Absent on v1 documents; when present it must be a plausible
        // version number (newer versions still parse — additions are
        // optional by design).
        if let Some(v) = doc.get("schema_version") {
            let n = v.as_f64().ok_or("`schema_version` must be a number")?;
            if !n.is_finite() || n < 1.0 || n.fract() != 0.0 {
                return Err(format!("`schema_version` {n} is not a positive integer"));
            }
        }
        let events_list = |key: &str| -> Result<Vec<EventRecord>, String> {
            match doc.get(key) {
                None => Ok(Vec::new()),
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| format!("`{key}` must be an array"))?
                    .iter()
                    .map(EventRecord::from_json)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("`{key}`: {e}")),
            }
        };
        let layers = match doc.get("layers") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or("`layers` must be an array")?
                .iter()
                .map(|l| {
                    Ok(LayerAttribution {
                        wall_ns: counter(l, "wall_ns").map_err(|e| format!("`layers`: {e}"))?,
                        mvms: counter(l, "mvms").map_err(|e| format!("`layers`: {e}"))?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        };
        Ok(Self {
            submitted: counter(doc, "submitted")?,
            completed: counter(doc, "completed")?,
            shed: counter(doc, "shed")?,
            expired: counter(doc, "expired")?,
            cancelled: counter(doc, "cancelled")?,
            failed: counter(doc, "failed")?,
            degraded: counter(doc, "degraded")?,
            rebuilds: counter(doc, "rebuilds")?,
            quarantines: counter(doc, "quarantines")?,
            faults_injected: counter(doc, "faults_injected")?,
            latency: HistogramSnapshot::from_json(
                doc.get("latency").ok_or("missing `latency` object")?,
            )?,
            stages: match doc.get("stages") {
                None => StageSnapshots::empty(),
                Some(v) => StageSnapshots::from_json(v)?,
            },
            events: events_list("events")?,
            slowest: events_list("slowest")?,
            layers,
            plan: doc
                .get("plan")
                .and_then(JsonValue::as_str)
                .ok_or("missing string `plan`")?
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_monotone_and_cover_the_range() {
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_lower_ns(i) < bucket_upper_ns(i));
            assert!(bucket_upper_ns(i - 1) <= bucket_lower_ns(i) + 1e-9);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(999), 0);
        assert_eq!(bucket_index(1_000), 1);
        // Far beyond the top edge still lands in the last bucket.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn every_bucket_edge_classifies_into_its_own_bucket() {
        // Regression: the log2-based bucketing misclassified values
        // sitting exactly on (or a hair above) a bucket's lower edge into
        // the bucket below. Every edge must open its own bucket, and the
        // nanosecond just below it must stay in the previous one.
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lower_ns(i);
            let lo_ns = lo.ceil() as u64;
            assert_eq!(
                bucket_index(lo_ns),
                i,
                "lower edge {lo} of bucket {i} must round into bucket {i}"
            );
            if i > 0 && lo.ceil() == lo {
                assert_eq!(
                    bucket_index(lo_ns - 1),
                    i - 1,
                    "just below edge {lo} must stay in bucket {}",
                    i - 1
                );
            }
        }
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let h = AtomicHistogram::new();
        // 100 observations at ~1 ms, 10 at ~100 ms.
        for _ in 0..100 {
            h.record(Duration::from_micros(1_000));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(100));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 110);
        let p50 = s.p50_ns();
        assert!((0.5e6..2.0e6).contains(&p50), "p50 {p50}");
        let p99 = s.p99_ns();
        assert!((50.0e6..200.0e6).contains(&p99), "p99 {p99}");
        assert!(s.p95_ns() <= p99 + 1e-9);
        assert_eq!(s.max_ns, 100_000_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = AtomicHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns(), 0.0);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn telemetry_snapshot_accounts_outcomes() {
        let t = Telemetry::tagged(String::new());
        t.submitted.fetch_add(5, Ordering::Relaxed);
        t.record_completed(Duration::from_micros(10));
        t.record_completed(Duration::from_micros(20));
        t.shed.fetch_add(2, Ordering::Relaxed);
        t.failed.fetch_add(1, Ordering::Relaxed);
        let s = t.snapshot();
        assert_eq!(s.resolved(), 5);
        assert_eq!(s.shed_rate(), 0.4);
        assert_eq!(s.latency.count, 2);
    }

    #[test]
    fn plan_tag_flows_into_snapshots() {
        let t = Telemetry::tagged("mixed w4-8/a8-16 (5 layers)".to_string());
        assert_eq!(t.plan(), "mixed w4-8/a8-16 (5 layers)");
        assert_eq!(t.snapshot().plan, "mixed w4-8/a8-16 (5 layers)");
        assert_eq!(Telemetry::tagged(String::new()).snapshot().plan, "");
    }

    /// A snapshot with arbitrary counters, histogram contents and plan
    /// tag — including empty and unicode-heavy plans.
    fn arbitrary_snapshot(rng: &mut forms_rng::StdRng) -> TelemetrySnapshot {
        use forms_rng::Rng;
        let mut counter = |hi: u64| rng.next_u64() % hi;
        let submitted = counter(1 << 40);
        let mut latency = HistogramSnapshot {
            buckets: [0u64; HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: counter(1 << 50),
        };
        for b in latency.buckets.iter_mut() {
            *b = counter(1 << 20);
        }
        latency.count = latency.buckets.iter().sum();
        latency.sum_ns = counter(1 << 52);
        const PLANS: &[&str] = &[
            "",
            "uniform w8/a16",
            "mixed w4-8/a8-16 (5 layers)",
            "µ\"p\\n",
        ];
        let mut stage_histogram = || {
            let mut h = HistogramSnapshot::empty();
            for b in h.buckets.iter_mut() {
                *b = counter(1 << 18);
            }
            h.count = h.buckets.iter().sum();
            h.sum_ns = counter(1 << 50);
            h.max_ns = counter(1 << 48);
            h
        };
        let stages = StageSnapshots {
            queue_wait: stage_histogram(),
            batch_form: stage_histogram(),
            execute: stage_histogram(),
            respond: stage_histogram(),
        };
        const KINDS: &[TerminalKind] = &[
            TerminalKind::Completed,
            TerminalKind::Shed,
            TerminalKind::Expired,
            TerminalKind::Cancelled,
            TerminalKind::Failed,
            TerminalKind::Degraded,
            TerminalKind::Quarantined,
        ];
        let mut events = |n: u64| -> Vec<EventRecord> {
            (0..counter(n))
                .map(|seq| EventRecord {
                    seq,
                    kind: KINDS[counter(KINDS.len() as u64) as usize],
                    stage_ns: std::array::from_fn(|_| counter(1 << 40)),
                    total_ns: counter(1 << 42),
                })
                .collect()
        };
        let (events, slowest) = (events(12), events(5));
        let layers = (0..counter(6))
            .map(|_| LayerAttribution {
                wall_ns: counter(1 << 50),
                mvms: counter(1 << 36),
            })
            .collect();
        TelemetrySnapshot {
            submitted,
            completed: counter(1 << 40),
            shed: counter(1 << 32),
            expired: counter(1 << 32),
            cancelled: counter(1 << 32),
            failed: counter(1 << 32),
            degraded: counter(1 << 32),
            rebuilds: counter(1 << 16),
            quarantines: counter(1 << 8),
            faults_injected: counter(1 << 16),
            latency,
            stages,
            events,
            slowest,
            layers,
            plan: PLANS[counter(PLANS.len() as u64) as usize].to_string(),
        }
    }

    #[test]
    fn snapshot_json_round_trips_on_arbitrary_telemetry() {
        use forms_rng::StdRng;
        let mut rng = StdRng::seed_from_u64(0x7E1E_0502);
        for case in 0..200 {
            let snapshot = arbitrary_snapshot(&mut rng);
            let doc = snapshot.to_json();
            let text = doc.pretty();
            let reparsed = crate::json::parse(&text)
                .unwrap_or_else(|e| panic!("case {case}: emitted invalid JSON: {e}\n{text}"));
            let back = TelemetrySnapshot::from_json(&reparsed)
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            assert_eq!(back, snapshot, "case {case} did not round-trip");
        }
    }

    #[test]
    fn snapshot_from_json_rejects_malformed_documents() {
        let good = Telemetry::tagged("uniform w8/a16".into())
            .snapshot()
            .to_json();
        assert!(TelemetrySnapshot::from_json(&good).is_ok());
        let JsonValue::Object(fields) = &good else {
            panic!("snapshot renders an object")
        };
        // The v1 core is required; dropping any of these fields must error.
        const REQUIRED: &[&str] = &[
            "submitted",
            "completed",
            "shed",
            "expired",
            "cancelled",
            "failed",
            "degraded",
            "rebuilds",
            "quarantines",
            "faults_injected",
            "latency",
            "plan",
        ];
        for key in REQUIRED {
            let broken =
                JsonValue::Object(fields.iter().filter(|(k, _)| k != key).cloned().collect());
            assert!(
                TelemetrySnapshot::from_json(&broken).is_err(),
                "accepted document without `{key}`"
            );
        }
        // The v2 extensions are optional-with-default (old documents keep
        // parsing) but strict when present: a malformed value must error
        // rather than fall back to the default.
        for key in ["schema_version", "stages", "events", "slowest", "layers"] {
            let stripped =
                JsonValue::Object(fields.iter().filter(|(k, _)| k != key).cloned().collect());
            assert!(
                TelemetrySnapshot::from_json(&stripped).is_ok(),
                "rejected document without optional `{key}`"
            );
            let mangled = JsonValue::Object(
                fields
                    .iter()
                    .map(|(k, v)| {
                        if k == key {
                            (k.clone(), JsonValue::String("bogus".into()))
                        } else {
                            (k.clone(), v.clone())
                        }
                    })
                    .collect(),
            );
            assert!(
                TelemetrySnapshot::from_json(&mangled).is_err(),
                "accepted malformed `{key}`"
            );
        }
        // Negative and fractional counters are rejected, not truncated.
        for bad in [-1.0, 0.5, f64::NAN] {
            let mut fields = fields.clone();
            let slot = fields
                .iter_mut()
                .find(|(k, _)| k == "submitted")
                .expect("submitted field");
            slot.1 = JsonValue::Number(bad);
            assert!(TelemetrySnapshot::from_json(&JsonValue::Object(fields)).is_err());
        }
        assert!(TelemetrySnapshot::from_json(&JsonValue::Null).is_err());
    }

    #[test]
    fn v1_documents_parse_with_empty_trace_fields() {
        // A document from a pre-tracing build carries only the v1 fields.
        // It must parse, with the trace extensions defaulting to empty.
        let rendered = Telemetry::tagged("uniform w8/a16".into())
            .snapshot()
            .to_json();
        let JsonValue::Object(fields) = &rendered else {
            panic!("snapshot renders an object")
        };
        const V2_ONLY: &[&str] = &["schema_version", "stages", "events", "slowest", "layers"];
        let v1 = JsonValue::Object(
            fields
                .iter()
                .filter(|(k, _)| !V2_ONLY.contains(&k.as_str()))
                .cloned()
                .collect(),
        );
        let parsed = TelemetrySnapshot::from_json(&v1).expect("v1 document parses");
        assert_eq!(parsed.stages, StageSnapshots::empty());
        assert!(parsed.events.is_empty());
        assert!(parsed.slowest.is_empty());
        assert!(parsed.layers.is_empty());
        assert_eq!(parsed.plan, "uniform w8/a16");
    }

    #[test]
    fn span_recording_fills_stages_events_and_layers() {
        use crate::trace::SpanRecord;
        use std::time::Instant;

        let t = Telemetry::new("plan".into(), 2, &TraceConfig::default());
        let stages = StageDurations {
            queue_wait: Duration::from_micros(5),
            batch_form: Duration::from_micros(2),
            execute: Duration::from_micros(40),
            respond: Duration::from_micros(3),
        };
        t.record_completed_span(&stages);
        t.add_layer_attribution(&[7_000, 11_000], &[3, 4]);
        t.add_layer_attribution(&[1_000, 1_000], &[1, 1]);

        let mut span = SpanRecord::new(Instant::now());
        span.dequeued = Some(span.enqueued + Duration::from_micros(9));
        t.record_terminal_span(
            TerminalKind::Expired,
            &span,
            span.enqueued + Duration::from_micros(10),
        );
        t.record_quarantine_event();

        let s = t.snapshot();
        assert_eq!(s.latency.count, 1);
        for h in s.stages.in_order() {
            assert_eq!(h.count, 1);
        }
        assert_eq!(s.stages.queue_wait.sum_ns, 5_000);
        assert_eq!(s.stages.execute.sum_ns, 40_000);
        // The completed span is the slowest seen so far.
        assert_eq!(s.slowest.len(), 1);
        assert_eq!(s.slowest[0].kind, TerminalKind::Completed);
        assert_eq!(s.slowest[0].total_ns, 50_000);
        // The expired span and the quarantine land in the event ring, in order.
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].kind, TerminalKind::Expired);
        assert_eq!(s.events[0].stage_ns[0], 9_000);
        assert_eq!(s.events[0].stage_ns[2], 0, "no execute stage on expiry");
        assert_eq!(s.events[1].kind, TerminalKind::Quarantined);
        assert_eq!(
            s.layers,
            vec![
                LayerAttribution {
                    wall_ns: 8_000,
                    mvms: 4
                },
                LayerAttribution {
                    wall_ns: 12_000,
                    mvms: 5
                },
            ]
        );
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = AtomicHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let href = &h;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        href.record(Duration::from_nanos(500 + i * 1_000));
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 4000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 4000);
    }
}
