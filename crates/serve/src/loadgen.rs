//! Open-loop synthetic load generation against a running service.
//!
//! An *open-loop* generator submits on a fixed Poisson arrival schedule
//! regardless of how the service is keeping up — unlike a closed loop
//! (submit, wait, repeat), it does not slow down when the service is slow,
//! which is what exposes queueing collapse and makes load shedding
//! measurable. Arrival times and payloads are drawn deterministically from
//! a seed via `forms-workloads`, so every sweep point replays the same
//! offered trace.

use std::time::{Duration, Instant};

use forms_rng::StdRng;
use forms_workloads::{poisson_arrivals, synth_request, ActivationModel};

use crate::service::{ServeError, ServiceHandle, Ticket};

/// Specification of one open-loop run.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopSpec {
    /// Offered load in requests per second.
    pub rate_rps: f64,
    /// Total requests to offer.
    pub requests: usize,
    /// Seed for arrival times and payload values.
    pub seed: u64,
    /// Activation distribution of the synthetic payloads.
    pub model: ActivationModel,
    /// Per-request latency budget passed to the service, if any.
    pub deadline: Option<Duration>,
}

/// Client-side outcome tally of one open-loop run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests offered (submitted or refused at the door).
    pub offered: usize,
    /// Requests that completed with an output.
    pub completed: usize,
    /// Requests shed at admission (queue full or shutting down).
    pub shed: usize,
    /// Requests rejected because their deadline passed in queue.
    pub expired: usize,
    /// Requests failed by a replica.
    pub failed: usize,
    /// Requests refused by an unhealthy replica (degraded service).
    pub degraded: usize,
    /// End-to-end latency of every completed request, sorted ascending.
    pub latencies: Vec<Duration>,
    /// Wall-clock span from the first submission to the last resolution.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Sustained goodput: completed requests per second of wall clock.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Fraction of offered requests shed at admission.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) of completed-request latency by
    /// nearest-rank on the sorted client-side samples; `None` when nothing
    /// completed.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.latencies.is_empty() {
            return None;
        }
        // Clamp: float rounding in `q × len` can push the ceiling one past
        // the sample count (q infinitesimally under 1.0 rounding up), which
        // indexed out of bounds before.
        let rank =
            ((q * self.latencies.len() as f64).ceil() as usize).clamp(1, self.latencies.len());
        Some(self.latencies[rank - 1])
    }
}

/// Runs one open-loop trace against `handle`: submits `spec.requests`
/// payloads on the seeded Poisson schedule (sleeping to each absolute
/// arrival time; never waiting for responses between submissions), then
/// waits for every outstanding ticket and tallies the outcomes.
pub fn run_open_loop(handle: &ServiceHandle, spec: &OpenLoopSpec) -> LoadReport {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let arrivals = poisson_arrivals(&mut rng, spec.rate_rps, spec.requests);
    let sample_len = handle.sample_len();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(spec.requests);
    let mut report = LoadReport {
        offered: spec.requests,
        completed: 0,
        shed: 0,
        expired: 0,
        failed: 0,
        degraded: 0,
        latencies: Vec::new(),
        elapsed: Duration::ZERO,
    };
    let start = Instant::now();
    for at in &arrivals {
        // Draw the payload before the arrival instant so generation cost
        // never delays the schedule.
        let payload = synth_request(&mut rng, spec.model, sample_len);
        if let Some(gap) = (start + *at).checked_duration_since(Instant::now()) {
            std::thread::sleep(gap);
        }
        let submitted = match spec.deadline {
            Some(d) => handle.submit_with_deadline(payload, d),
            None => handle.submit(payload),
        };
        match submitted {
            Ok(ticket) => tickets.push(ticket),
            Err(ServeError::Shed | ServeError::ShuttingDown) => report.shed += 1,
            Err(e) => unreachable!("well-formed submission refused: {e}"),
        }
    }
    for ticket in tickets {
        match ticket.wait() {
            Ok(response) => {
                report.completed += 1;
                report.latencies.push(response.latency);
            }
            Err(ServeError::DeadlineExceeded) => report.expired += 1,
            Err(ServeError::Degraded) => report.degraded += 1,
            Err(_) => report.failed += 1,
        }
    }
    report.elapsed = start.elapsed();
    report.latencies.sort_unstable();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_latencies(n: usize) -> LoadReport {
        LoadReport {
            offered: n,
            completed: n,
            shed: 0,
            expired: 0,
            failed: 0,
            degraded: 0,
            latencies: (1..=n).map(|i| Duration::from_micros(i as u64)).collect(),
            elapsed: Duration::from_secs(1),
        }
    }

    #[test]
    fn quantile_at_one_returns_the_maximum() {
        // Regression: q = 1.0 (and q infinitesimally below it) must index
        // the last sample, never one past it.
        for n in 1..=17 {
            let r = report_with_latencies(n);
            let max = Duration::from_micros(n as u64);
            assert_eq!(r.latency_quantile(1.0), Some(max), "n={n}");
        }
    }

    #[test]
    fn quantile_just_under_one_stays_in_bounds() {
        let q = 1.0 - f64::EPSILON; // 0.9999999999999998
        for n in 1..=17 {
            let r = report_with_latencies(n);
            let got = r.latency_quantile(q).unwrap();
            assert!(got <= Duration::from_micros(n as u64), "n={n} got {got:?}");
        }
        // And the low end still clamps up to rank 1.
        let r = report_with_latencies(5);
        assert_eq!(r.latency_quantile(1e-12), Some(Duration::from_micros(1)));
    }

    #[test]
    fn empty_report_has_no_quantile() {
        let r = LoadReport {
            latencies: Vec::new(),
            completed: 0,
            ..report_with_latencies(0)
        };
        assert_eq!(r.latency_quantile(0.5), None);
    }
}
