//! Request-lifecycle tracing: per-request stage spans and the bounded
//! terminal-event ring.
//!
//! Every admitted request carries a [`SpanRecord`] — a preallocated set of
//! monotonic stage timestamps stamped lock-free by whichever thread moves
//! the request forward:
//!
//! ```text
//!  enqueued ──► dequeued ──► batch_formed ──► executed ──► responded
//!  (submit)     (popped       (staged, about   (forward     (slot filled)
//!               from queue)    to execute)      returned)
//!     │ queue_wait │ batch_form │   execute      │  respond  │
//! ```
//!
//! The four stage durations telescope *exactly*: their integer-nanosecond
//! sum equals the end-to-end latency, because each stage is the difference
//! of consecutive `Instant`s on one monotonic clock. Requests that never
//! execute (shed, expired, cancelled, failed, degraded) flush their
//! partial span as an [`EventRecord`] into the [`EventRing`] — a bounded,
//! poison-tolerant, allocation-free-after-construction buffer of recent
//! terminal events plus an insert-sorted slowest-N list of completed
//! spans.
//!
//! Stamping is a plain `Instant::now()` read into a preallocated `Option`
//! slot — no lock, no allocation — so tracing rides the hot path at
//! negligible cost. Only terminal-event recording takes a (short,
//! poison-tolerant) mutex, and completed requests skip even that once the
//! slowest-N list is full of slower spans.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json::JsonValue;

/// Number of traced pipeline stages (queue-wait, batch-form, execute,
/// respond).
pub const STAGE_COUNT: usize = 4;

/// Human-readable stage names, in pipeline order — the field names used by
/// the telemetry JSON schema.
pub const STAGE_NAMES: [&str; STAGE_COUNT] = ["queue_wait", "batch_form", "execute", "respond"];

/// Sizing of the tracing subsystem. `Default` suits benches and tests;
/// zero capacities disable the corresponding buffer entirely.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Terminal events (shed, expired, cancelled, failed, degraded,
    /// quarantined) retained in the ring; older events are evicted.
    pub event_capacity: usize,
    /// Slowest completed spans retained (by end-to-end latency).
    pub slowest_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            event_capacity: 128,
            slowest_capacity: 8,
        }
    }
}

/// Monotonic stage timestamps of one request's life. `enqueued` is always
/// present (stamped at submission); later stages stay `None` until the
/// request reaches them, so a terminal event records exactly how far the
/// request got.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Admission: the submitter stamped this before pushing to the queue.
    pub enqueued: Instant,
    /// A replica popped the request out of the admission queue.
    pub dequeued: Option<Instant>,
    /// The executing batch finished forming (liveness filtered, inputs
    /// staged) and is about to run.
    pub batch_formed: Option<Instant>,
    /// The batched forward returned (successfully or by panic).
    pub executed: Option<Instant>,
    /// The response slot was filled.
    pub responded: Option<Instant>,
}

impl SpanRecord {
    /// A fresh span stamped as enqueued `now`.
    pub fn new(enqueued: Instant) -> Self {
        Self {
            enqueued,
            dequeued: None,
            batch_formed: None,
            executed: None,
            responded: None,
        }
    }

    /// The per-stage durations of a *completed* span.
    ///
    /// # Panics
    ///
    /// Panics if any stage timestamp is missing — call only on spans whose
    /// `responded` has been stamped.
    pub fn stages(&self) -> StageDurations {
        let dequeued = self.dequeued.expect("completed span has dequeued");
        let batch_formed = self.batch_formed.expect("completed span has batch_formed");
        let executed = self.executed.expect("completed span has executed");
        let responded = self.responded.expect("completed span has responded");
        StageDurations {
            queue_wait: dequeued.duration_since(self.enqueued),
            batch_form: batch_formed.duration_since(dequeued),
            execute: executed.duration_since(batch_formed),
            respond: responded.duration_since(executed),
        }
    }

    /// Partial per-stage nanoseconds for a span that may have terminated
    /// at any stage: entry `i` is the duration of stage `i`, 0 for stages
    /// never reached. A stage that started but never finished is charged
    /// up to `now`.
    pub fn partial_stage_ns(&self, now: Instant) -> [u64; STAGE_COUNT] {
        let mut out = [0u64; STAGE_COUNT];
        let marks = [
            Some(self.enqueued),
            self.dequeued,
            self.batch_formed,
            self.executed,
            self.responded,
        ];
        for i in 0..STAGE_COUNT {
            let Some(start) = marks[i] else { break };
            // The stage ends at the next stamped mark, or at `now` for the
            // stage the request died in.
            let end = marks[i + 1].unwrap_or(now);
            out[i] = duration_ns(end.duration_since(start));
            if marks[i + 1].is_none() {
                break;
            }
        }
        out
    }

    /// Nanoseconds from admission to `now` (or to `responded` when
    /// stamped) — the total lifetime recorded on terminal events.
    pub fn total_ns(&self, now: Instant) -> u64 {
        let end = self.responded.unwrap_or(now);
        duration_ns(end.duration_since(self.enqueued))
    }
}

/// Saturating nanosecond count of a duration.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The four pipeline-stage durations of one completed request. Their sum
/// is exactly the request's end-to-end latency (integer-nanosecond
/// telescoping of consecutive monotonic timestamps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageDurations {
    /// Admission to dequeue: time spent waiting in the bounded queue.
    pub queue_wait: Duration,
    /// Dequeue to batch formation: liveness filtering and input staging.
    pub batch_form: Duration,
    /// Batch formation to forward return: crossbar execution.
    pub execute: Duration,
    /// Forward return to slot fill: output scatter and response delivery.
    pub respond: Duration,
}

impl StageDurations {
    /// End-to-end latency: the exact sum of the four stages.
    pub fn total(&self) -> Duration {
        self.queue_wait + self.batch_form + self.execute + self.respond
    }

    /// The stages as saturating nanosecond counts, in pipeline order.
    pub fn as_ns(&self) -> [u64; STAGE_COUNT] {
        [
            duration_ns(self.queue_wait),
            duration_ns(self.batch_form),
            duration_ns(self.execute),
            duration_ns(self.respond),
        ]
    }
}

/// How a request's life ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminalKind {
    /// Executed and responded successfully.
    Completed,
    /// Refused at admission (queue full or service closing).
    Shed,
    /// Deadline passed before execution; rejected at batch formation.
    Expired,
    /// Cancelled by the client before execution.
    Cancelled,
    /// The executing replica's engine panicked.
    Failed,
    /// Refused by an unhealthy replica (sentinel trip / density gate /
    /// quarantine drain).
    Degraded,
    /// Not a request: marks a replica leaving service permanently.
    Quarantined,
}

impl TerminalKind {
    /// Stable JSON tag for the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Completed => "completed",
            Self::Shed => "shed",
            Self::Expired => "expired",
            Self::Cancelled => "cancelled",
            Self::Failed => "failed",
            Self::Degraded => "degraded",
            Self::Quarantined => "quarantined",
        }
    }

    /// Parses a tag produced by [`as_str`](Self::as_str).
    pub fn parse(tag: &str) -> Option<Self> {
        Some(match tag {
            "completed" => Self::Completed,
            "shed" => Self::Shed,
            "expired" => Self::Expired,
            "cancelled" => Self::Cancelled,
            "failed" => Self::Failed,
            "degraded" => Self::Degraded,
            "quarantined" => Self::Quarantined,
            _ => return None,
        })
    }
}

/// One terminal event: how a request (or replica) ended and how far
/// through the pipeline it got.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotone sequence number (per service, starts at 0).
    pub seq: u64,
    /// How the life ended.
    pub kind: TerminalKind,
    /// Per-stage nanoseconds reached before the end (0 for stages never
    /// entered).
    pub stage_ns: [u64; STAGE_COUNT],
    /// Nanoseconds from admission to the terminal mark.
    pub total_ns: u64,
}

impl EventRecord {
    /// Renders the event as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("seq", JsonValue::Number(self.seq as f64)),
            ("kind", JsonValue::String(self.kind.as_str().to_string())),
            (
                "stage_ns",
                JsonValue::Array(
                    self.stage_ns
                        .iter()
                        .map(|&ns| JsonValue::Number(ns as f64))
                        .collect(),
                ),
            ),
            ("total_ns", JsonValue::Number(self.total_ns as f64)),
        ])
    }

    /// Parses an event rendered by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let uint = |key: &str| -> Result<u64, String> {
            let v = doc
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("event: missing numeric `{key}`"))?;
            if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0) {
                return Err(format!("event: `{key}` must be a non-negative integer"));
            }
            Ok(v as u64)
        };
        let kind_tag = doc
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("event: missing string `kind`")?;
        let kind = TerminalKind::parse(kind_tag)
            .ok_or_else(|| format!("event: unknown kind `{kind_tag}`"))?;
        let stages = doc
            .get("stage_ns")
            .and_then(JsonValue::as_array)
            .ok_or("event: missing `stage_ns` array")?;
        if stages.len() != STAGE_COUNT {
            return Err(format!(
                "event: expected {STAGE_COUNT} stage entries, found {}",
                stages.len()
            ));
        }
        let mut stage_ns = [0u64; STAGE_COUNT];
        for (i, s) in stages.iter().enumerate() {
            let v = s
                .as_f64()
                .ok_or_else(|| format!("event: stage {i} is not a number"))?;
            if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0) {
                return Err(format!("event: stage {i} must be a non-negative integer"));
            }
            stage_ns[i] = v as u64;
        }
        Ok(Self {
            seq: uint("seq")?,
            kind,
            stage_ns,
            total_ns: uint("total_ns")?,
        })
    }
}

/// State behind the ring's mutex. All containers are sized once at
/// construction and never grow, so pushes are allocation-free.
#[derive(Debug)]
struct RingState {
    /// Recent terminal events, oldest first; bounded by `event_capacity`.
    events: VecDeque<EventRecord>,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Slowest completed spans, sorted by `total_ns` descending; bounded
    /// by `slowest_capacity`.
    slowest: Vec<EventRecord>,
}

/// Bounded buffer of recent terminal events plus a slowest-N list of
/// completed spans. Poison-tolerant: a panicking recorder cannot wedge the
/// ring for other threads. Allocation-free after construction.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<RingState>,
    /// Smallest `total_ns` currently held in a *full* slowest list; lets
    /// completed-span candidates skip the lock when they cannot place.
    slowest_floor: AtomicU64,
    event_capacity: usize,
    slowest_capacity: usize,
}

impl EventRing {
    /// A ring sized by `config`. Zero capacities disable the respective
    /// buffer (records become no-ops).
    pub fn new(config: &TraceConfig) -> Self {
        Self {
            inner: Mutex::new(RingState {
                events: VecDeque::with_capacity(config.event_capacity),
                next_seq: 0,
                // +1 so the insert-then-truncate never reallocates.
                slowest: Vec::with_capacity(config.slowest_capacity + 1),
            }),
            slowest_floor: AtomicU64::new(0),
            event_capacity: config.event_capacity,
            slowest_capacity: config.slowest_capacity,
        }
    }

    /// Records one non-completed terminal event (shed, expired, cancelled,
    /// failed, degraded, quarantined) into the ring, evicting the oldest
    /// when full.
    pub fn record_terminal(&self, kind: TerminalKind, stage_ns: [u64; STAGE_COUNT], total_ns: u64) {
        debug_assert!(
            kind != TerminalKind::Completed,
            "completed spans go through record_completed"
        );
        if self.event_capacity == 0 {
            return;
        }
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.events.len() == self.event_capacity {
            state.events.pop_front();
        }
        state.events.push_back(EventRecord {
            seq,
            kind,
            stage_ns,
            total_ns,
        });
    }

    /// Offers one completed span to the slowest-N list. Fast path: when
    /// the list is full and this span is no slower than everything in it,
    /// a single atomic read rejects it without taking the lock.
    pub fn record_completed(&self, stage_ns: [u64; STAGE_COUNT], total_ns: u64) {
        if self.slowest_capacity == 0 || total_ns <= self.slowest_floor.load(Ordering::Relaxed) {
            return;
        }
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = state.next_seq;
        state.next_seq += 1;
        let record = EventRecord {
            seq,
            kind: TerminalKind::Completed,
            stage_ns,
            total_ns,
        };
        let pos = state
            .slowest
            .partition_point(|r| r.total_ns >= record.total_ns);
        state.slowest.insert(pos, record);
        state.slowest.truncate(self.slowest_capacity);
        if state.slowest.len() == self.slowest_capacity {
            // Only a full list may reject candidates: a partially filled
            // list must keep accepting everything, so the floor stays 0
            // until capacity is reached.
            let floor = state.slowest.last().map_or(0, |r| r.total_ns);
            self.slowest_floor.store(floor, Ordering::Relaxed);
        }
    }

    /// Copies out the ring contents: `(recent events oldest-first, slowest
    /// completed spans slowest-first)`.
    pub fn snapshot(&self) -> (Vec<EventRecord>, Vec<EventRecord>) {
        let state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (
            state.events.iter().copied().collect(),
            state.slowest.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stages_telescope_exactly() {
        let t0 = Instant::now();
        let mut span = SpanRecord::new(t0);
        std::thread::sleep(Duration::from_micros(200));
        span.dequeued = Some(Instant::now());
        span.batch_formed = Some(Instant::now());
        std::thread::sleep(Duration::from_micros(100));
        span.executed = Some(Instant::now());
        span.responded = Some(Instant::now());
        let stages = span.stages();
        let total = span.responded.unwrap().duration_since(t0);
        assert_eq!(stages.total(), total, "stages must telescope exactly");
        assert!(stages.queue_wait >= Duration::from_micros(200));
        assert!(stages.execute >= Duration::from_micros(100));
    }

    #[test]
    fn partial_stages_stop_at_the_death_stage() {
        let t0 = Instant::now();
        let mut span = SpanRecord::new(t0);
        span.dequeued = Some(t0 + Duration::from_micros(10));
        // Died during batch formation: execute and respond never happened.
        let now = t0 + Duration::from_micros(25);
        let ns = span.partial_stage_ns(now);
        assert_eq!(ns[0], 10_000);
        assert_eq!(ns[1], 15_000, "open stage charged up to now");
        assert_eq!(ns[2], 0);
        assert_eq!(ns[3], 0);
        assert_eq!(span.total_ns(now), 25_000);
        // A span that never left the queue charges only queue-wait.
        let fresh = SpanRecord::new(t0);
        let ns = fresh.partial_stage_ns(now);
        assert_eq!(ns, [25_000, 0, 0, 0]);
    }

    #[test]
    fn event_ring_bounds_and_evicts_oldest() {
        let ring = EventRing::new(&TraceConfig {
            event_capacity: 3,
            slowest_capacity: 2,
        });
        for i in 0..5u64 {
            ring.record_terminal(TerminalKind::Shed, [i; STAGE_COUNT], i);
        }
        let (events, _) = ring.snapshot();
        assert_eq!(events.len(), 3, "ring is bounded");
        assert_eq!(
            events.iter().map(|e| e.total_ns).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest evicted first"
        );
        // Sequence numbers stay monotone across evictions.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn slowest_list_keeps_the_n_largest() {
        let ring = EventRing::new(&TraceConfig {
            event_capacity: 4,
            slowest_capacity: 3,
        });
        for total in [50u64, 10, 90, 20, 70, 5, 100] {
            ring.record_completed([total / 4; STAGE_COUNT], total);
        }
        let (_, slowest) = ring.snapshot();
        assert_eq!(
            slowest.iter().map(|e| e.total_ns).collect::<Vec<_>>(),
            vec![100, 90, 70]
        );
        assert!(slowest.iter().all(|e| e.kind == TerminalKind::Completed));
        // The floor fast path rejects a span slower than nothing retained.
        ring.record_completed([1; STAGE_COUNT], 60);
        let (_, slowest) = ring.snapshot();
        assert_eq!(
            slowest.iter().map(|e| e.total_ns).collect::<Vec<_>>(),
            vec![100, 90, 70]
        );
    }

    #[test]
    fn zero_capacities_disable_recording() {
        let ring = EventRing::new(&TraceConfig {
            event_capacity: 0,
            slowest_capacity: 0,
        });
        ring.record_terminal(TerminalKind::Failed, [1; STAGE_COUNT], 4);
        ring.record_completed([2; STAGE_COUNT], 8);
        let (events, slowest) = ring.snapshot();
        assert!(events.is_empty());
        assert!(slowest.is_empty());
    }

    #[test]
    fn event_json_round_trips_and_rejects_garbage() {
        let record = EventRecord {
            seq: 42,
            kind: TerminalKind::Degraded,
            stage_ns: [1, 2, 3, 4],
            total_ns: 10,
        };
        let doc = record.to_json();
        let text = doc.pretty();
        let reparsed = crate::json::parse(&text).unwrap();
        assert_eq!(EventRecord::from_json(&reparsed).unwrap(), record);
        // Every kind tag parses back to itself.
        for kind in [
            TerminalKind::Completed,
            TerminalKind::Shed,
            TerminalKind::Expired,
            TerminalKind::Cancelled,
            TerminalKind::Failed,
            TerminalKind::Degraded,
            TerminalKind::Quarantined,
        ] {
            assert_eq!(TerminalKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(TerminalKind::parse("exploded"), None);
        assert!(EventRecord::from_json(&JsonValue::Null).is_err());
    }

    #[test]
    fn concurrent_recording_never_wedges() {
        let ring = EventRing::new(&TraceConfig::default());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let total = t * 1000 + i;
                        if i % 3 == 0 {
                            ring.record_terminal(TerminalKind::Shed, [total; 4], total);
                        } else {
                            ring.record_completed([total / 4; 4], total);
                        }
                    }
                });
            }
        });
        let (events, slowest) = ring.snapshot();
        assert!(events.len() <= TraceConfig::default().event_capacity);
        assert_eq!(slowest.len(), TraceConfig::default().slowest_capacity);
        // Slowest list is sorted descending.
        assert!(slowest.windows(2).all(|w| w[0].total_ns >= w[1].total_ns));
    }
}
