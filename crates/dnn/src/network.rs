//! Feed-forward networks.

use forms_tensor::Tensor;

use crate::layer::WeightLayerMut;
use crate::{Layer, Param};

/// A feed-forward network: an ordered stack of [`Layer`]s.
///
/// Residual topologies are expressed with [`Layer::Residual`] blocks inside
/// the stack, so one `Network` type covers the whole model zoo.
///
/// # Example
///
/// ```
/// use forms_dnn::{Layer, Network};
/// use forms_tensor::Tensor;
/// use forms_rng::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Network::new(vec![
///     Layer::conv2d(&mut rng, 1, 2, 3, 1, 1),
///     Layer::relu(),
///     Layer::flatten(),
///     Layer::linear(&mut rng, 2 * 4 * 4, 3),
/// ]);
/// let y = net.forward(&Tensor::ones(&[1, 1, 4, 4]));
/// assert_eq!(y.dims(), &[1, 3]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from a layer stack.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer stack.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Consumes the network, returning its layer stack.
    pub fn into_layers(self) -> Vec<Layer> {
        self.layers
    }

    /// Inference-mode forward pass (no caches, running batch-norm stats).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.forward_mode(x, false)
    }

    /// Training-mode forward pass (caches retained for `backward`).
    pub fn forward_train(&mut self, x: &Tensor) -> Tensor {
        self.forward_mode(x, true)
    }

    fn forward_mode(&mut self, x: &Tensor, training: bool) -> Tensor {
        let mut y = x.clone();
        for layer in &mut self.layers {
            y = layer.forward(&y, training);
        }
        y
    }

    /// Backward pass through the whole stack; accumulates parameter
    /// gradients and returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if [`forward_train`](Self::forward_train) was not called first.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Visits every trainable parameter in a stable depth-first order.
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.for_each_param(f);
        }
    }

    /// Visits every weight-bearing (conv/linear) layer in a stable
    /// depth-first order.
    pub fn for_each_weight_layer(&mut self, f: &mut dyn FnMut(WeightLayerMut<'_>)) {
        for layer in &mut self.layers {
            layer.for_each_weight_layer(f);
        }
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.for_each_param(&mut Param::zero_grad);
    }

    /// Total number of trainable scalars.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(&mut |p| n += p.len());
        n
    }

    /// Number of weight-bearing (conv/linear) layers, including those nested
    /// in residual blocks. Takes `&self` so callers never have to clone the
    /// network just to count.
    pub fn weight_layer_count(&self) -> usize {
        self.layers.iter().map(Layer::weight_layer_count).sum()
    }

    /// Snapshot of all parameter values in visit order (for checkpointing
    /// and the ADMM auxiliary variables).
    pub fn param_values(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.for_each_param(&mut |p| out.push(p.value.clone()));
        out
    }

    /// Restores parameter values from a snapshot taken by
    /// [`param_values`](Self::param_values).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot has the wrong number or shapes of tensors.
    pub fn set_param_values(&mut self, values: &[Tensor]) {
        let mut it = values.iter();
        self.for_each_param(&mut |p| {
            let v = it.next().expect("snapshot too short");
            assert_eq!(v.dims(), p.value.dims(), "snapshot shape mismatch");
            p.value = v.clone();
        });
        assert!(it.next().is_none(), "snapshot too long");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_rng::StdRng;

    fn small_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::conv2d(&mut rng, 1, 2, 3, 1, 1),
            Layer::relu(),
            Layer::max_pool(2),
            Layer::flatten(),
            Layer::linear(&mut rng, 2 * 2 * 2, 3),
        ])
    }

    #[test]
    fn forward_shapes() {
        let mut net = small_net(0);
        let y = net.forward(&Tensor::ones(&[4, 1, 4, 4]));
        assert_eq!(y.dims(), &[4, 3]);
    }

    #[test]
    fn end_to_end_grad_check() {
        let mut net = small_net(9);
        let mut rng = StdRng::seed_from_u64(5);
        let x = forms_tensor::uniform(&mut rng, &[2, 1, 4, 4], 1.0);
        let y = net.forward_train(&x);
        net.zero_grad();
        let gx = {
            let y2 = net.forward_train(&x);
            assert_eq!(y2, y);
            net.backward(&Tensor::ones(y.dims()))
        };
        let eps = 1e-2;
        for i in [0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (net.forward(&xp).sum() - net.forward(&xm).sum()) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 1e-2 * (1.0 + num.abs()),
                "input grad mismatch at {i}: {num} vs {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn param_snapshot_round_trip() {
        let mut net = small_net(3);
        let snap = net.param_values();
        let mut other = small_net(4);
        other.set_param_values(&snap);
        assert_eq!(other.param_values(), snap);
        // Same params → same outputs.
        let x = Tensor::ones(&[1, 1, 4, 4]);
        assert_eq!(net.forward(&x), other.forward(&x));
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut net = small_net(0);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = net.forward_train(&x);
        net.backward(&Tensor::ones(y.dims()));
        let mut nonzero = 0;
        net.for_each_param(&mut |p| nonzero += p.grad.count_nonzero());
        assert!(nonzero > 0);
        net.zero_grad();
        let mut after = 0;
        net.for_each_param(&mut |p| after += p.grad.count_nonzero());
        assert_eq!(after, 0);
    }

    #[test]
    fn weight_layer_count_sees_nested() {
        let mut rng = StdRng::seed_from_u64(0);
        let block = crate::ResidualBlock::new(
            vec![
                Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
                Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
            ],
            Some(Layer::conv2d(&mut rng, 2, 2, 1, 1, 0)),
        );
        let net = Network::new(vec![
            Layer::conv2d(&mut rng, 1, 2, 3, 1, 1),
            Layer::Residual(block),
            Layer::flatten(),
            Layer::linear(&mut rng, 8, 2),
        ]);
        assert_eq!(net.weight_layer_count(), 5);
    }
}
