//! Synthetic image-classification datasets.
//!
//! The paper evaluates on MNIST, CIFAR-10/100 and ImageNet. None of those
//! can be shipped here, so this module generates *synthetic* classification
//! tasks with matching structure: each class has a smooth random prototype
//! image, and samples are noisy observations of their class prototype. Task
//! difficulty is controlled by the noise level and class count, which lets
//! the compression experiments show the same qualitative accuracy behaviour
//! the paper reports (see `DESIGN.md` §2).

use forms_rng::Rng;
use forms_tensor::Tensor;

/// A labelled dataset of `[N, C, H, W]` images.
#[derive(Clone, Debug)]
pub struct Dataset {
    inputs: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset from a batched input tensor and labels.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not rank-4, the batch size disagrees with
    /// `labels.len()`, or any label is `>= classes`.
    pub fn new(inputs: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(inputs.shape().rank(), 4, "inputs must be [N, C, H, W]");
        assert_eq!(inputs.dims()[0], labels.len(), "batch size mismatch");
        assert!(
            labels.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        Self {
            inputs,
            labels,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Per-sample shape `[C, H, W]`.
    pub fn sample_dims(&self) -> &[usize] {
        &self.inputs.dims()[1..]
    }

    /// All inputs as one `[N, C, H, W]` tensor.
    pub fn inputs(&self) -> &Tensor {
        &self.inputs
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Extracts the batch covering samples `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn batch(&self, start: usize, len: usize) -> (Tensor, &[usize]) {
        assert!(start + len <= self.len(), "batch range out of bounds");
        let sample = self.inputs.len() / self.len().max(1);
        let data = self.inputs.data()[start * sample..(start + len) * sample].to_vec();
        let mut dims = vec![len];
        dims.extend_from_slice(self.sample_dims());
        (
            Tensor::from_vec(data, &dims),
            &self.labels[start..start + len],
        )
    }

    /// Iterates over consecutive batches of at most `batch_size` samples.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = (Tensor, &[usize])> + '_ {
        let bs = batch_size.max(1);
        (0..self.len().div_ceil(bs)).map(move |b| {
            let start = b * bs;
            let len = bs.min(self.len() - start);
            self.batch(start, len)
        })
    }

    /// Shuffles samples in place.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.len();
        let sample = self.inputs.len() / n.max(1);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            self.labels.swap(i, j);
            if i != j {
                for k in 0..sample {
                    self.inputs.data_mut().swap(i * sample + k, j * sample + k);
                }
            }
        }
    }
}

/// Recipe for a synthetic classification task.
///
/// # Example
///
/// ```
/// use forms_dnn::data::SyntheticSpec;
/// use forms_rng::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let (train, test) = SyntheticSpec::mnist_like().generate(&mut rng);
/// assert_eq!(train.classes(), 10);
/// assert_eq!(test.sample_dims(), &[1, 16, 16]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Standard deviation of the additive Gaussian observation noise.
    pub noise: f32,
}

impl SyntheticSpec {
    /// MNIST stand-in: 1×16×16 grayscale, 10 classes (spatially scaled from
    /// 28×28 to keep CPU training fast; see `DESIGN.md` §2).
    pub fn mnist_like() -> Self {
        Self {
            classes: 10,
            channels: 1,
            height: 16,
            width: 16,
            train_per_class: 48,
            test_per_class: 16,
            noise: 0.25,
        }
    }

    /// CIFAR-10 stand-in: 3×16×16 colour, 10 classes.
    pub fn cifar10_like() -> Self {
        Self {
            classes: 10,
            channels: 3,
            height: 16,
            width: 16,
            train_per_class: 48,
            test_per_class: 16,
            noise: 0.35,
        }
    }

    /// CIFAR-100 stand-in: 3×16×16 colour, 40 classes (class count scaled
    /// from 100 to bound generation cost; still a markedly harder task than
    /// the CIFAR-10 stand-in, which is the property Table II relies on).
    pub fn cifar100_like() -> Self {
        Self {
            classes: 40,
            channels: 3,
            height: 16,
            width: 16,
            train_per_class: 24,
            test_per_class: 8,
            noise: 0.35,
        }
    }

    /// ImageNet stand-in: 3×24×24 colour, 50 classes with higher noise — the
    /// hardest task of the set, mirroring ImageNet's position in the paper.
    pub fn imagenet_like() -> Self {
        Self {
            classes: 50,
            channels: 3,
            height: 24,
            width: 24,
            train_per_class: 20,
            test_per_class: 8,
            noise: 0.45,
        }
    }

    /// Generates (train, test) datasets.
    ///
    /// Class prototypes are smooth random fields (sums of random sinusoids),
    /// and each sample is its prototype plus i.i.d. Gaussian noise, clamped
    /// to `[0, 1]` like a normalized image.
    #[allow(clippy::needless_range_loop)] // several arrays are co-indexed
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> (Dataset, Dataset) {
        let sample_len = self.channels * self.height * self.width;
        let mut prototypes = Vec::with_capacity(self.classes);
        for _ in 0..self.classes {
            prototypes.push(self.prototype(rng));
        }
        let make = |rng: &mut R, per_class: usize, prototypes: &[Vec<f32>]| {
            let n = per_class * self.classes;
            let mut data = Vec::with_capacity(n * sample_len);
            let mut labels = Vec::with_capacity(n);
            for class in 0..self.classes {
                for _ in 0..per_class {
                    for &p in &prototypes[class] {
                        let v = p + self.noise * gaussian(rng);
                        data.push(v.clamp(0.0, 1.0));
                    }
                    labels.push(class);
                }
            }
            let mut ds = Dataset::new(
                Tensor::from_vec(data, &[n, self.channels, self.height, self.width]),
                labels,
                self.classes,
            );
            ds.shuffle(rng);
            ds
        };
        let train = make(rng, self.train_per_class, &prototypes);
        let test = make(rng, self.test_per_class, &prototypes);
        (train, test)
    }

    /// A smooth random prototype image in `[0, 1]`.
    fn prototype<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f32> {
        let mut img = vec![0.0f32; self.channels * self.height * self.width];
        // Sum of a few random low-frequency sinusoids per channel.
        for c in 0..self.channels {
            let waves: Vec<(f32, f32, f32, f32)> = (0..4)
                .map(|_| {
                    (
                        rng.gen_range(0.5..2.5),                   // fy
                        rng.gen_range(0.5..2.5),                   // fx
                        rng.gen_range(0.0..std::f32::consts::TAU), // phase
                        rng.gen_range(0.3..1.0),                   // amplitude
                    )
                })
                .collect();
            for y in 0..self.height {
                for x in 0..self.width {
                    let mut v = 0.0;
                    for &(fy, fx, phase, amp) in &waves {
                        v += amp
                            * (std::f32::consts::TAU
                                * (fy * y as f32 / self.height as f32
                                    + fx * x as f32 / self.width as f32)
                                + phase)
                                .sin();
                    }
                    img[(c * self.height + y) * self.width + x] = 0.5 + 0.2 * v;
                }
            }
        }
        for v in &mut img {
            *v = v.clamp(0.0, 1.0);
        }
        img
    }
}

/// Standard-normal sample via Box–Muller (keeps the distribution types out of this
/// crate's dependencies).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_rng::StdRng;

    #[test]
    fn generate_counts_and_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = SyntheticSpec {
            classes: 3,
            channels: 2,
            height: 4,
            width: 4,
            train_per_class: 5,
            test_per_class: 2,
            noise: 0.1,
        };
        let (train, test) = spec.generate(&mut rng);
        assert_eq!(train.len(), 15);
        assert_eq!(test.len(), 6);
        assert_eq!(train.sample_dims(), &[2, 4, 4]);
        assert_eq!(train.classes(), 3);
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let (train, _) = SyntheticSpec::mnist_like().generate(&mut rng);
        assert!(train.inputs().min() >= 0.0);
        assert!(train.inputs().max() <= 1.0);
    }

    #[test]
    fn batches_cover_everything_once() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = SyntheticSpec {
            classes: 2,
            channels: 1,
            height: 2,
            width: 2,
            train_per_class: 5,
            test_per_class: 1,
            noise: 0.1,
        };
        let (train, _) = spec.generate(&mut rng);
        let mut total = 0;
        for (x, labels) in train.batches(4) {
            assert_eq!(x.dims()[0], labels.len());
            total += labels.len();
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn shuffle_keeps_input_label_pairs() {
        let mut rng = StdRng::seed_from_u64(3);
        // Encode the label into the image so we can verify pairing.
        let n = 8;
        let inputs = Tensor::from_fn(&[n, 1, 1, 1], |i| i as f32);
        let labels: Vec<usize> = (0..n).collect();
        let mut ds = Dataset::new(inputs, labels, n);
        ds.shuffle(&mut rng);
        for i in 0..n {
            let (x, l) = ds.batch(i, 1);
            assert_eq!(x.data()[0] as usize, l[0], "pairing broken at {i}");
        }
    }

    #[test]
    fn classes_are_distinguishable() {
        // Prototype distance between classes should comfortably exceed the
        // intra-class noise floor, else the task is unlearnable.
        let mut rng = StdRng::seed_from_u64(4);
        let (train, _) = SyntheticSpec::cifar10_like().generate(&mut rng);
        // Average pairwise distance between first samples of two classes.
        let mut first: Vec<Option<Tensor>> = vec![None; train.classes()];
        for i in 0..train.len() {
            let (x, l) = train.batch(i, 1);
            if first[l[0]].is_none() {
                first[l[0]] = Some(x);
            }
        }
        let a = first[0].as_ref().unwrap();
        let b = first[1].as_ref().unwrap();
        assert!(a.max_abs_diff(b) > 0.05, "classes look identical");
    }

    #[test]
    fn gaussian_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }
}
