//! Trainable parameters.

use forms_tensor::Tensor;

/// A trainable parameter: a value tensor plus its accumulated gradient.
///
/// Layers own their `Param`s; optimizers and the ADMM regularizer visit them
/// through [`crate::Network::for_each_param`].
///
/// # Example
///
/// ```
/// use forms_dnn::Param;
/// use forms_tensor::Tensor;
///
/// let mut p = Param::new(Tensor::ones(&[2]));
/// p.grad.data_mut()[0] = 0.5;
/// p.apply_grad(0.1);
/// assert_eq!(p.value.data(), &[0.95, 1.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// The parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to `value`, accumulated by
    /// `backward` passes and cleared by [`zero_grad`](Self::zero_grad).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Self { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.dims());
    }

    /// Plain gradient-descent step: `value -= lr * grad`.
    pub fn apply_grad(&mut self, lr: f32) {
        self.value.axpy(-lr, &self.grad);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_zeroes_grad() {
        let p = Param::new(Tensor::ones(&[3]));
        assert_eq!(p.grad.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.grad = Tensor::full(&[2], 5.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn apply_grad_descends() {
        let mut p = Param::new(Tensor::zeros(&[1]));
        p.grad = Tensor::full(&[1], 2.0);
        p.apply_grad(0.5);
        assert_eq!(p.value.data(), &[-1.0]);
    }
}
