//! # forms-dnn
//!
//! A from-scratch CPU deep-learning substrate for the FORMS (ISCA 2021)
//! reproduction.
//!
//! The paper trains its models with PyTorch on an 8-GPU server; nothing of
//! that ecosystem exists in offline Rust, so this crate provides the pieces
//! the ADMM optimization framework and the accelerator simulator need:
//!
//! - [`Layer`] — conv / linear / pooling / normalization / activation layers
//!   with full backpropagation,
//! - [`Network`] — a composable feed-forward network (with residual blocks
//!   for the ResNet family),
//! - [`Sgd`] / [`Adam`] — optimizers,
//! - [`softmax_cross_entropy`] — the classification loss,
//! - [`models`] — a model zoo with scaled-down LeNet-5 / VGG-16 /
//!   ResNet-18/50 topologies,
//! - [`data`] — synthetic image-classification datasets standing in for
//!   MNIST / CIFAR-10 / CIFAR-100 / ImageNet (see `DESIGN.md` §2 for the
//!   substitution rationale).
//!
//! # Example
//!
//! ```
//! use forms_dnn::{Layer, Network};
//! use forms_tensor::Tensor;
//! use forms_rng::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Network::new(vec![
//!     Layer::flatten(),
//!     Layer::linear(&mut rng, 8, 4),
//!     Layer::relu(),
//!     Layer::linear(&mut rng, 4, 2),
//! ]);
//! let x = Tensor::ones(&[1, 8]);
//! let y = net.forward(&x);
//! assert_eq!(y.dims(), &[1, 2]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod augment;
pub mod checkpoint;
pub mod data;
mod layer;
mod loss;
pub mod models;
mod network;
mod optim;
mod param;
mod schedule;
mod train;

pub use layer::{
    AvgPool2d, BatchNorm2d, Conv2d, Dropout, Layer, Linear, MaxPool2d, ResidualBlock,
    WeightLayerMut,
};
pub use loss::{accuracy, softmax, softmax_cross_entropy, top_k_accuracy, LossOutput};
pub use network::Network;
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use schedule::{ConstantLr, CosineLr, LrSchedule, StepLr};
pub use train::{evaluate, evaluate_topk, train_epoch, TrainConfig, TrainReport};
