//! Learning-rate schedules.
//!
//! The training loops in the harness use simple step decay inline; these
//! schedulers make the policy explicit and reusable (the ADMM paper-style
//! runs typically use step decay; cosine is the common modern alternative).

use crate::Optimizer;

/// A learning-rate schedule: maps an epoch index to a multiplier of the
/// base rate.
pub trait LrSchedule {
    /// Multiplier applied to the base learning rate at `epoch` (0-based).
    fn factor(&self, epoch: usize) -> f32;

    /// Applies the schedule to an optimizer for the given epoch.
    fn apply(&self, opt: &mut dyn Optimizer, base_lr: f32, epoch: usize) {
        opt.set_learning_rate(base_lr * self.factor(epoch));
    }
}

/// Constant learning rate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConstantLr;

impl LrSchedule for ConstantLr {
    fn factor(&self, _epoch: usize) -> f32 {
        1.0
    }
}

/// Step decay: multiply by `gamma` every `step` epochs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepLr {
    /// Epochs between decays.
    pub step: usize,
    /// Decay factor per step.
    pub gamma: f32,
}

impl StepLr {
    /// Creates a step schedule.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `gamma` is not in `(0, 1]`.
    pub fn new(step: usize, gamma: f32) -> Self {
        assert!(step > 0, "step must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        Self { step, gamma }
    }
}

impl LrSchedule for StepLr {
    fn factor(&self, epoch: usize) -> f32 {
        self.gamma.powi((epoch / self.step) as i32)
    }
}

/// Cosine annealing from 1 down to `floor` over `total_epochs`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CosineLr {
    /// Schedule length in epochs.
    pub total_epochs: usize,
    /// Final multiplier.
    pub floor: f32,
}

impl CosineLr {
    /// Creates a cosine schedule.
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs` is zero or `floor` is outside `[0, 1]`.
    pub fn new(total_epochs: usize, floor: f32) -> Self {
        assert!(total_epochs > 0, "total epochs must be positive");
        assert!((0.0..=1.0).contains(&floor), "floor must be in [0, 1]");
        Self {
            total_epochs,
            floor,
        }
    }
}

impl LrSchedule for CosineLr {
    fn factor(&self, epoch: usize) -> f32 {
        let t = (epoch.min(self.total_epochs) as f32) / self.total_epochs as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.floor + (1.0 - self.floor) * cos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sgd;

    #[test]
    fn constant_never_changes() {
        let s = ConstantLr;
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(100), 1.0);
    }

    #[test]
    fn step_decays_at_boundaries() {
        let s = StepLr::new(3, 0.1);
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(2), 1.0);
        assert!((s.factor(3) - 0.1).abs() < 1e-7);
        assert!((s.factor(6) - 0.01).abs() < 1e-7);
    }

    #[test]
    fn cosine_starts_high_ends_at_floor() {
        let s = CosineLr::new(10, 0.05);
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        assert!((s.factor(10) - 0.05).abs() < 1e-6);
        assert!(s.factor(5) < s.factor(2));
        // Past the end it clamps.
        assert!((s.factor(50) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn apply_sets_the_optimizer_rate() {
        let mut opt = Sgd::new(0.2);
        StepLr::new(2, 0.5).apply(&mut opt, 0.2, 4);
        assert!((opt.learning_rate() - 0.05).abs() < 1e-7);
    }

    #[test]
    fn cosine_is_monotone_decreasing() {
        let s = CosineLr::new(20, 0.0);
        for e in 0..20 {
            assert!(s.factor(e + 1) <= s.factor(e) + 1e-7);
        }
    }
}
