//! Network layers with forward and backward passes.
//!
//! Layers are a closed enum ([`Layer`]) rather than trait objects so that the
//! ADMM regularizer in `forms-admm` and the crossbar mapper in `forms-arch`
//! can pattern-match on layer structure (filter geometry, weight layout)
//! without downcasting.

use forms_rng::Rng;
use forms_tensor::{col2im, im2col, kaiming_uniform, Conv2dGeometry, Tensor};

use crate::Param;

/// A 2-D convolution layer over `[N, C, H, W]` inputs.
///
/// The weight layout is `[filters, in_channels, k_h, k_w]` — the layout the
/// paper's Fig. 2 reshapes into the 2-D weight matrix whose columns are
/// filters and whose rows are filter-shape positions.
#[derive(Clone, Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    stride: usize,
    padding: usize,
    cache: Option<ConvCache>,
}

#[derive(Clone, Debug)]
struct ConvCache {
    cols: Vec<Tensor>,
    geom: Conv2dGeometry,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `stride` is zero.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && filters > 0 && kernel > 0,
            "dimensions must be positive"
        );
        assert!(stride > 0, "stride must be positive");
        let fan_in = in_channels * kernel * kernel;
        let weight = kaiming_uniform(rng, &[filters, in_channels, kernel, kernel], fan_in);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[filters])),
            stride,
            padding,
            cache: None,
        }
    }

    /// Number of output filters.
    pub fn filters(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Kernel height/width.
    pub fn kernel(&self) -> usize {
        self.weight.value.dims()[2]
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// The weight parameter (`[filters, in_channels, k_h, k_w]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// The bias parameter (`[filters]`).
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Mutable access to the bias parameter.
    pub fn bias_mut(&mut self) -> &mut Param {
        &mut self.bias
    }

    /// The lowered 2-D weight matrix `[patch_len, filters]` of paper Fig. 2:
    /// column `f` holds filter `f` flattened channel-major.
    pub fn weight_matrix(&self) -> Tensor {
        let f = self.filters();
        let patch = self.in_channels() * self.kernel() * self.kernel();
        self.weight.value.reshape(&[f, patch]).transpose()
    }

    /// Replaces the weights from a lowered `[patch_len, filters]` matrix
    /// (inverse of [`weight_matrix`](Self::weight_matrix)).
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match this layer.
    pub fn set_weight_matrix(&mut self, m: &Tensor) {
        let f = self.filters();
        let patch = self.in_channels() * self.kernel() * self.kernel();
        assert_eq!(m.dims(), &[patch, f], "weight matrix shape mismatch");
        let dims = self.weight.value.dims().to_vec();
        self.weight.value = m.transpose().reshape(&dims);
    }

    fn geometry(&self, in_h: usize, in_w: usize) -> Conv2dGeometry {
        Conv2dGeometry::new(
            self.in_channels(),
            in_h,
            in_w,
            self.kernel(),
            self.kernel(),
            self.stride,
            self.padding,
        )
    }

    /// Forward pass over a `[N, C, H, W]` batch.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-4 or the channel count mismatches.
    pub fn forward(&mut self, x: &Tensor, training: bool) -> Tensor {
        assert_eq!(x.shape().rank(), 4, "Conv2d expects [N, C, H, W] input");
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        assert_eq!(c, self.in_channels(), "Conv2d channel mismatch");
        let geom = self.geometry(h, w);
        let f = self.filters();
        let w2d = self.weight.value.reshape(&[f, geom.patch_len()]);
        let mut out = Tensor::zeros(&[n, f, geom.out_h, geom.out_w]);
        let positions = geom.out_positions();
        let mut cols_cache = Vec::with_capacity(if training { n } else { 0 });
        for s in 0..n {
            let sample = Tensor::from_vec(
                x.data()[s * c * h * w..(s + 1) * c * h * w].to_vec(),
                &[c, h, w],
            );
            let cols = im2col(&sample, &geom);
            let y = w2d.matmul(&cols); // [f, positions]
            let dst = &mut out.data_mut()[s * f * positions..(s + 1) * f * positions];
            for fi in 0..f {
                let b = self.bias.value.data()[fi];
                for p in 0..positions {
                    dst[fi * positions + p] = y.data()[fi * positions + p] + b;
                }
            }
            if training {
                cols_cache.push(cols);
            }
        }
        self.cache = training.then_some(ConvCache {
            cols: cols_cache,
            geom,
        });
        out
    }

    /// Backward pass; returns the input gradient and accumulates weight and
    /// bias gradients.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    #[allow(clippy::needless_range_loop)] // several arrays are co-indexed
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("Conv2d::backward without forward");
        let geom = cache.geom;
        let n = grad_out.dims()[0];
        let f = self.filters();
        let positions = geom.out_positions();
        assert_eq!(
            grad_out.dims(),
            &[n, f, geom.out_h, geom.out_w],
            "Conv2d grad shape mismatch"
        );
        let patch = geom.patch_len();
        let w2d_t = self.weight.value.reshape(&[f, patch]).transpose(); // [patch, f]
        let mut grad_x = Tensor::zeros(&[n, geom.in_channels, geom.in_h, geom.in_w]);
        let mut grad_w = Tensor::zeros(&[f, patch]);
        let mut grad_b = vec![0.0f32; f];
        let in_len = geom.in_channels * geom.in_h * geom.in_w;
        for s in 0..n {
            let g = Tensor::from_vec(
                grad_out.data()[s * f * positions..(s + 1) * f * positions].to_vec(),
                &[f, positions],
            );
            // dW += g · colsᵀ
            grad_w.axpy(1.0, &g.matmul(&cache.cols[s].transpose()));
            // db += row sums of g
            for fi in 0..f {
                grad_b[fi] += g.data()[fi * positions..(fi + 1) * positions]
                    .iter()
                    .sum::<f32>();
            }
            // dX = col2im(Wᵀ · g)
            let gx = col2im(&w2d_t.matmul(&g), &geom);
            grad_x.data_mut()[s * in_len..(s + 1) * in_len].copy_from_slice(gx.data());
        }
        let wdims = self.weight.value.dims().to_vec();
        self.weight.grad.axpy(1.0, &grad_w.reshape(&wdims));
        self.bias.grad.axpy(1.0, &Tensor::from_vec(grad_b, &[f]));
        grad_x
    }
}

/// A fully-connected layer over `[N, in]` inputs.
#[derive(Clone, Debug)]
pub struct Linear {
    weight: Param,
    bias: Param,
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-initialized weights of shape
    /// `[out, in]`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "dimensions must be positive"
        );
        let weight = kaiming_uniform(rng, &[out_features, in_features], in_features);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cache: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// The weight parameter (`[out, in]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access to the weight parameter.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// The bias parameter (`[out]`).
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Mutable access to the bias parameter.
    pub fn bias_mut(&mut self) -> &mut Param {
        &mut self.bias
    }

    /// The lowered 2-D weight matrix `[in, out]`: column `o` is output
    /// neuron `o`'s weights, matching the conv convention where columns map
    /// to crossbar columns.
    pub fn weight_matrix(&self) -> Tensor {
        self.weight.value.transpose()
    }

    /// Replaces weights from a `[in, out]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match this layer.
    pub fn set_weight_matrix(&mut self, m: &Tensor) {
        assert_eq!(
            m.dims(),
            &[self.in_features(), self.out_features()],
            "weight matrix shape mismatch"
        );
        self.weight.value = m.transpose();
    }

    /// Forward pass over a `[N, in]` batch.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-2 with matching feature count.
    pub fn forward(&mut self, x: &Tensor, training: bool) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "Linear expects [N, in] input");
        assert_eq!(x.dims()[1], self.in_features(), "Linear feature mismatch");
        let out = x.matmul(&self.weight.value.transpose()); // [N, out]
        let (n, o) = (out.dims()[0], out.dims()[1]);
        let mut out = out;
        for s in 0..n {
            for j in 0..o {
                out.data_mut()[s * o + j] += self.bias.value.data()[j];
            }
        }
        self.cache = training.then(|| x.clone());
        out
    }

    /// Backward pass; returns the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    #[allow(clippy::needless_range_loop)] // db is co-indexed with grad_out
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.take().expect("Linear::backward without forward");
        // dW = gᵀ · x, db = column sums of g, dX = g · W
        self.weight.grad.axpy(1.0, &grad_out.transpose().matmul(&x));
        let (n, o) = (grad_out.dims()[0], grad_out.dims()[1]);
        let mut db = vec![0.0f32; o];
        for s in 0..n {
            for j in 0..o {
                db[j] += grad_out.data()[s * o + j];
            }
        }
        self.bias.grad.axpy(1.0, &Tensor::from_vec(db, &[o]));
        grad_out.matmul(&self.weight.value)
    }
}

/// 2-D max pooling with square kernel and equal stride.
#[derive(Clone, Debug)]
pub struct MaxPool2d {
    kernel: usize,
    argmax: Option<(Vec<usize>, Vec<usize>)>, // (indices, input dims)
}

impl MaxPool2d {
    /// Creates a pool with the given square kernel (stride = kernel).
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is zero.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        Self {
            kernel,
            argmax: None,
        }
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Forward pass over `[N, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if the spatial size is not a multiple of the kernel.
    pub fn forward(&mut self, x: &Tensor, training: bool) -> Tensor {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let k = self.kernel;
        assert!(
            h % k == 0 && w % k == 0,
            "pool kernel {k} does not divide {h}×{w}"
        );
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..k {
                            for kx in 0..k {
                                let idx = base + (oy * k + ky) * w + (ox * k + kx);
                                if x.data()[idx] > best {
                                    best = x.data()[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ((s * c + ch) * oh + oy) * ow + ox;
                        out.data_mut()[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        self.argmax = training.then_some((argmax, vec![n, c, h, w]));
        out
    }

    /// Backward pass: routes each output gradient to its argmax input.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (argmax, dims) = self
            .argmax
            .take()
            .expect("MaxPool2d::backward without forward");
        let mut grad_x = Tensor::zeros(&dims);
        for (o, &src) in argmax.iter().enumerate() {
            grad_x.data_mut()[src] += grad_out.data()[o];
        }
        grad_x
    }
}

/// 2-D average pooling with square kernel and equal stride.
///
/// With `kernel == H == W` this is the global average pool used at the end
/// of the ResNet family.
#[derive(Clone, Debug)]
pub struct AvgPool2d {
    kernel: usize,
    dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates a pool with the given square kernel (stride = kernel).
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is zero.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        Self { kernel, dims: None }
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Forward pass over `[N, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if the spatial size is not a multiple of the kernel.
    pub fn forward(&mut self, x: &Tensor, training: bool) -> Tensor {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let k = self.kernel;
        assert!(
            h % k == 0 && w % k == 0,
            "pool kernel {k} does not divide {h}×{w}"
        );
        let (oh, ow) = (h / k, w / k);
        let inv = 1.0 / (k * k) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..k {
                            for kx in 0..k {
                                acc += x.data()[base + (oy * k + ky) * w + (ox * k + kx)];
                            }
                        }
                        out.data_mut()[((s * c + ch) * oh + oy) * ow + ox] = acc * inv;
                    }
                }
            }
        }
        self.dims = training.then(|| vec![n, c, h, w]);
        out
    }

    /// Backward pass: spreads each output gradient uniformly over its window.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let dims = self
            .dims
            .take()
            .expect("AvgPool2d::backward without forward");
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let k = self.kernel;
        let (oh, ow) = (h / k, w / k);
        let inv = 1.0 / (k * k) as f32;
        let mut grad_x = Tensor::zeros(&dims);
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.data()[((s * c + ch) * oh + oy) * ow + ox] * inv;
                        for ky in 0..k {
                            for kx in 0..k {
                                grad_x.data_mut()[base + (oy * k + ky) * w + (ox * k + kx)] += g;
                            }
                        }
                    }
                }
            }
        }
        grad_x
    }
}

/// Batch normalization over the channel dimension of `[N, C, H, W]` inputs.
#[derive(Clone, Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Clone, Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be positive");
        Self {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.len()
    }

    /// The scale parameter γ.
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }

    /// The shift parameter β.
    pub fn beta(&self) -> &Param {
        &self.beta
    }

    /// Forward pass: batch statistics in training, running statistics in
    /// evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank-4 with matching channels.
    #[allow(clippy::needless_range_loop)] // several per-channel arrays are co-indexed
    pub fn forward(&mut self, x: &Tensor, training: bool) -> Tensor {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        assert_eq!(c, self.channels(), "BatchNorm2d channel mismatch");
        let per_channel = n * h * w;
        let mut out = Tensor::zeros(x.dims());
        let mut x_hat = Tensor::zeros(x.dims());
        let mut inv_stds = vec![0.0f32; c];
        for ch in 0..c {
            let (mean, var) = if training {
                let mut mean = 0.0;
                for s in 0..n {
                    let base = (s * c + ch) * h * w;
                    mean += x.data()[base..base + h * w].iter().sum::<f32>();
                }
                mean /= per_channel as f32;
                let mut var = 0.0;
                for s in 0..n {
                    let base = (s * c + ch) * h * w;
                    var += x.data()[base..base + h * w]
                        .iter()
                        .map(|&v| (v - mean) * (v - mean))
                        .sum::<f32>();
                }
                var /= per_channel as f32;
                self.running_mean.data_mut()[ch] =
                    (1.0 - self.momentum) * self.running_mean.data()[ch] + self.momentum * mean;
                self.running_var.data_mut()[ch] =
                    (1.0 - self.momentum) * self.running_var.data()[ch] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean.data()[ch], self.running_var.data()[ch])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ch] = inv_std;
            let g = self.gamma.value.data()[ch];
            let b = self.beta.value.data()[ch];
            for s in 0..n {
                let base = (s * c + ch) * h * w;
                for i in base..base + h * w {
                    let xh = (x.data()[i] - mean) * inv_std;
                    x_hat.data_mut()[i] = xh;
                    out.data_mut()[i] = g * xh + b;
                }
            }
        }
        self.cache = training.then(|| BnCache {
            x_hat,
            inv_std: inv_stds,
            dims: x.dims().to_vec(),
        });
        out
    }

    /// Backward pass using the standard batch-norm gradient.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("BatchNorm2d::backward without forward");
        let (n, c, h, w) = (cache.dims[0], cache.dims[1], cache.dims[2], cache.dims[3]);
        let m = (n * h * w) as f32;
        let mut grad_x = Tensor::zeros(&cache.dims);
        for ch in 0..c {
            let mut dgamma = 0.0;
            let mut dbeta = 0.0;
            for s in 0..n {
                let base = (s * c + ch) * h * w;
                for i in base..base + h * w {
                    dgamma += grad_out.data()[i] * cache.x_hat.data()[i];
                    dbeta += grad_out.data()[i];
                }
            }
            self.gamma.grad.data_mut()[ch] += dgamma;
            self.beta.grad.data_mut()[ch] += dbeta;
            let g = self.gamma.value.data()[ch];
            let inv_std = cache.inv_std[ch];
            for s in 0..n {
                let base = (s * c + ch) * h * w;
                for i in base..base + h * w {
                    let dxhat = grad_out.data()[i] * g;
                    grad_x.data_mut()[i] =
                        inv_std / m * (m * dxhat - dbeta * g - cache.x_hat.data()[i] * dgamma * g);
                }
            }
        }
        grad_x
    }
}

/// A ResNet basic block: `relu(body(x) + shortcut(x))`.
///
/// `body` is any layer stack (typically conv→bn→relu→conv→bn) and
/// `projection` is the optional 1×1 strided convolution used when the body
/// changes shape.
#[derive(Clone, Debug)]
pub struct ResidualBlock {
    body: Vec<Layer>,
    projection: Option<Box<Layer>>,
    relu_mask: Option<Vec<bool>>,
}

impl ResidualBlock {
    /// Creates a residual block from a body stack and optional projection
    /// shortcut.
    pub fn new(body: Vec<Layer>, projection: Option<Layer>) -> Self {
        Self {
            body,
            projection: projection.map(Box::new),
            relu_mask: None,
        }
    }

    /// The layers of the body stack.
    pub fn body(&self) -> &[Layer] {
        &self.body
    }

    /// Mutable access to the body stack.
    pub fn body_mut(&mut self) -> &mut [Layer] {
        &mut self.body
    }

    /// The projection shortcut, if present.
    pub fn projection(&self) -> Option<&Layer> {
        self.projection.as_deref()
    }

    /// Mutable access to the projection shortcut.
    pub fn projection_mut(&mut self) -> Option<&mut Layer> {
        self.projection.as_deref_mut()
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor, training: bool) -> Tensor {
        let mut y = x.clone();
        for layer in &mut self.body {
            y = layer.forward(&y, training);
        }
        let shortcut = match &mut self.projection {
            Some(p) => p.forward(x, training),
            None => x.clone(),
        };
        let mut out = y.zip(&shortcut, |a, b| a + b);
        let mask: Vec<bool> = out.data().iter().map(|&v| v > 0.0).collect();
        out.map_inplace(|v| v.max(0.0));
        self.relu_mask = training.then_some(mask);
        out
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .relu_mask
            .take()
            .expect("ResidualBlock::backward without forward");
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(&mask) {
            if !keep {
                *v = 0.0;
            }
        }
        let mut body_grad = g.clone();
        for layer in self.body.iter_mut().rev() {
            body_grad = layer.backward(&body_grad);
        }
        let shortcut_grad = match &mut self.projection {
            Some(p) => p.backward(&g),
            None => g,
        };
        body_grad.zip(&shortcut_grad, |a, b| a + b)
    }
}

/// Mutable view of a weight-bearing layer, used by visitors that need layer
/// structure (the ADMM projections, the crossbar mapper).
#[derive(Debug)]
pub enum WeightLayerMut<'a> {
    /// A convolution layer.
    Conv(&'a mut Conv2d),
    /// A fully-connected layer.
    Linear(&'a mut Linear),
}

/// A network layer.
///
/// All layers operate on batched tensors: `[N, C, H, W]` for spatial layers
/// and `[N, features]` after a [`flatten`](Layer::flatten).
#[derive(Clone, Debug)]
pub enum Layer {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully-connected layer.
    Linear(Linear),
    /// Rectified linear unit; caches its mask for backward.
    ReLU(Option<Vec<bool>>),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Average pooling.
    AvgPool2d(AvgPool2d),
    /// Batch normalization.
    BatchNorm2d(BatchNorm2d),
    /// Collapses `[N, ...]` to `[N, features]`; caches dims for backward.
    Flatten(Option<Vec<usize>>),
    /// ResNet basic block.
    Residual(ResidualBlock),
    /// Logistic sigmoid; caches its output for backward.
    Sigmoid(Option<Tensor>),
    /// Hyperbolic tangent; caches its output for backward.
    Tanh(Option<Tensor>),
    /// Inverted dropout (train-time scaling); identity in evaluation.
    Dropout(Dropout),
}

/// Inverted dropout: zeroes each activation with probability `rate` during
/// training and scales survivors by `1/(1-rate)` so evaluation needs no
/// rescaling.
#[derive(Clone, Debug)]
pub struct Dropout {
    rate: f32,
    rng: forms_rng::StdRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with its own seeded generator.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        Self {
            rate,
            rng: forms_rng::StdRng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    fn forward(&mut self, x: &Tensor, training: bool) -> Tensor {
        if !training || self.rate == 0.0 {
            self.mask = None;
            return x.clone();
        }
        use forms_rng::Rng as _;
        let keep = 1.0 - self.rate;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| {
                if self.rng.gen::<f32>() < self.rate {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        let mut out = x.clone();
        for (v, &m) in out.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("Dropout::backward without forward");
        let mut g = grad_out.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        g
    }
}

impl Layer {
    /// Convenience constructor for a convolution layer.
    pub fn conv2d<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        filters: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Layer::Conv2d(Conv2d::new(
            rng,
            in_channels,
            filters,
            kernel,
            stride,
            padding,
        ))
    }

    /// Convenience constructor for a linear layer.
    pub fn linear<R: Rng + ?Sized>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        Layer::Linear(Linear::new(rng, in_features, out_features))
    }

    /// Convenience constructor for a ReLU.
    pub fn relu() -> Self {
        Layer::ReLU(None)
    }

    /// Convenience constructor for max pooling.
    pub fn max_pool(kernel: usize) -> Self {
        Layer::MaxPool2d(MaxPool2d::new(kernel))
    }

    /// Convenience constructor for average pooling.
    pub fn avg_pool(kernel: usize) -> Self {
        Layer::AvgPool2d(AvgPool2d::new(kernel))
    }

    /// Convenience constructor for batch normalization.
    pub fn batch_norm(channels: usize) -> Self {
        Layer::BatchNorm2d(BatchNorm2d::new(channels))
    }

    /// Convenience constructor for a flatten layer.
    pub fn flatten() -> Self {
        Layer::Flatten(None)
    }

    /// Convenience constructor for a sigmoid.
    pub fn sigmoid() -> Self {
        Layer::Sigmoid(None)
    }

    /// Convenience constructor for a tanh.
    pub fn tanh() -> Self {
        Layer::Tanh(None)
    }

    /// Convenience constructor for dropout.
    pub fn dropout(rate: f32, seed: u64) -> Self {
        Layer::Dropout(Dropout::new(rate, seed))
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor, training: bool) -> Tensor {
        match self {
            Layer::Conv2d(l) => l.forward(x, training),
            Layer::Linear(l) => l.forward(x, training),
            Layer::ReLU(mask) => {
                let out = x.map(|v| v.max(0.0));
                *mask = training.then(|| x.data().iter().map(|&v| v > 0.0).collect());
                out
            }
            Layer::MaxPool2d(l) => l.forward(x, training),
            Layer::AvgPool2d(l) => l.forward(x, training),
            Layer::BatchNorm2d(l) => l.forward(x, training),
            Layer::Flatten(dims) => {
                let n = x.dims()[0];
                let features = x.len() / n.max(1);
                *dims = training.then(|| x.dims().to_vec());
                x.reshape(&[n, features])
            }
            Layer::Residual(l) => l.forward(x, training),
            Layer::Sigmoid(cache) => {
                let out = x.map(|v| 1.0 / (1.0 + (-v).exp()));
                *cache = training.then(|| out.clone());
                out
            }
            Layer::Tanh(cache) => {
                let out = x.map(f32::tanh);
                *cache = training.then(|| out.clone());
                out
            }
            Layer::Dropout(l) => l.forward(x, training),
        }
    }

    /// Backward pass; returns the gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d(l) => l.backward(grad_out),
            Layer::Linear(l) => l.backward(grad_out),
            Layer::ReLU(mask) => {
                let mask = mask.take().expect("ReLU::backward without forward");
                let mut g = grad_out.clone();
                for (v, &keep) in g.data_mut().iter_mut().zip(&mask) {
                    if !keep {
                        *v = 0.0;
                    }
                }
                g
            }
            Layer::MaxPool2d(l) => l.backward(grad_out),
            Layer::AvgPool2d(l) => l.backward(grad_out),
            Layer::BatchNorm2d(l) => l.backward(grad_out),
            Layer::Flatten(dims) => {
                let dims = dims.take().expect("Flatten::backward without forward");
                grad_out.reshape(&dims)
            }
            Layer::Residual(l) => l.backward(grad_out),
            Layer::Sigmoid(cache) => {
                let y = cache.take().expect("Sigmoid::backward without forward");
                grad_out.zip(&y, |g, s| g * s * (1.0 - s))
            }
            Layer::Tanh(cache) => {
                let y = cache.take().expect("Tanh::backward without forward");
                grad_out.zip(&y, |g, t| g * (1.0 - t * t))
            }
            Layer::Dropout(l) => l.backward(grad_out),
        }
    }

    /// Visits every trainable parameter, depth-first.
    pub fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            Layer::Conv2d(l) => {
                f(&mut l.weight);
                f(&mut l.bias);
            }
            Layer::Linear(l) => {
                f(&mut l.weight);
                f(&mut l.bias);
            }
            Layer::BatchNorm2d(l) => {
                f(&mut l.gamma);
                f(&mut l.beta);
            }
            Layer::Residual(l) => {
                for layer in &mut l.body {
                    layer.for_each_param(f);
                }
                if let Some(p) = &mut l.projection {
                    p.for_each_param(f);
                }
            }
            _ => {}
        }
    }

    /// Visits every weight-bearing layer (conv and linear), depth-first into
    /// residual blocks.
    pub fn for_each_weight_layer(&mut self, f: &mut dyn FnMut(WeightLayerMut<'_>)) {
        match self {
            Layer::Conv2d(l) => f(WeightLayerMut::Conv(l)),
            Layer::Linear(l) => f(WeightLayerMut::Linear(l)),
            Layer::Residual(l) => {
                for layer in &mut l.body {
                    layer.for_each_weight_layer(f);
                }
                if let Some(p) = &mut l.projection {
                    p.for_each_weight_layer(f);
                }
            }
            _ => {}
        }
    }

    /// Number of weight-bearing (conv/linear) layers in this layer,
    /// depth-first into residual blocks. Unlike
    /// [`for_each_weight_layer`](Self::for_each_weight_layer) this needs no
    /// mutable access, so callers can count without cloning the network.
    pub fn weight_layer_count(&self) -> usize {
        match self {
            Layer::Conv2d(_) | Layer::Linear(_) => 1,
            Layer::Residual(l) => {
                l.body.iter().map(Layer::weight_layer_count).sum::<usize>()
                    + l.projection.as_deref().map_or(0, Layer::weight_layer_count)
            }
            _ => 0,
        }
    }

    /// Number of trainable scalars in this layer.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(&mut |p| n += p.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_rng::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    /// Numerical gradient check for a layer on a small input.
    fn grad_check(layer: &mut Layer, x: &Tensor, tol: f32) {
        // Loss = sum(forward(x)); analytic input gradient vs finite diff.
        let y = layer.forward(x, true);
        let grad_out = Tensor::ones(y.dims());
        let grad_x = layer.backward(&grad_out);
        let eps = 1e-2;
        for i in (0..x.len()).step_by((x.len() / 7).max(1)) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = layer.forward(&xp, false).sum();
            let fm = layer.forward(&xm, false).sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grad_x.data()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "grad mismatch at {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn conv_forward_shape() {
        let mut l = Conv2d::new(&mut rng(), 3, 8, 3, 1, 1);
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let y = l.forward(&x, false);
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn conv_grad_check() {
        let mut l = Layer::conv2d(&mut rng(), 2, 3, 3, 1, 1);
        let x = forms_tensor::uniform(&mut rng(), &[1, 2, 5, 5], 1.0);
        grad_check(&mut l, &x, 1e-2);
    }

    #[test]
    fn conv_weight_grad_check() {
        let mut rng = rng();
        let mut l = Conv2d::new(&mut rng, 1, 2, 3, 1, 0);
        let x = forms_tensor::uniform(&mut rng, &[1, 1, 4, 4], 1.0);
        let y = l.forward(&x, true);
        l.backward(&Tensor::ones(y.dims()));
        let analytic = l.weight.grad.clone();
        let eps = 1e-2;
        for i in 0..analytic.len() {
            let orig = l.weight.value.data()[i];
            l.weight.value.data_mut()[i] = orig + eps;
            let fp = l.forward(&x, false).sum();
            l.weight.value.data_mut()[i] = orig - eps;
            let fm = l.forward(&x, false).sum();
            l.weight.value.data_mut()[i] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - analytic.data()[i]).abs() < 1e-2 * (1.0 + num.abs()),
                "weight grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn linear_grad_check() {
        let mut l = Layer::linear(&mut rng(), 6, 4);
        let x = forms_tensor::uniform(&mut rng(), &[3, 6], 1.0);
        grad_check(&mut l, &x, 1e-2);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut l = Layer::relu();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[1, 4]);
        let y = l.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = l.backward(&Tensor::ones(&[1, 4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_selects_max_and_routes_grad() {
        let mut l = Layer::max_pool(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = l.forward(&x, true);
        assert_eq!(y.data(), &[4.0]);
        let g = l.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn avgpool_grad_check() {
        let mut l = Layer::avg_pool(2);
        let x = forms_tensor::uniform(&mut rng(), &[1, 2, 4, 4], 1.0);
        grad_check(&mut l, &x, 1e-3);
    }

    #[test]
    fn batchnorm_normalizes_in_training() {
        let mut l = BatchNorm2d::new(2);
        let x = forms_tensor::uniform(&mut rng(), &[4, 2, 3, 3], 5.0);
        let y = l.forward(&x, true);
        // Per-channel mean ≈ 0, var ≈ 1.
        let (n, c, h, w) = (4, 2, 3, 3);
        for ch in 0..c {
            let mut vals = vec![];
            for s in 0..n {
                let base = (s * c + ch) * h * w;
                vals.extend_from_slice(&y.data()[base..base + h * w]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn flatten_round_trip() {
        let mut l = Layer::flatten();
        let x = Tensor::ones(&[2, 3, 2, 2]);
        let y = l.forward(&x, true);
        assert_eq!(y.dims(), &[2, 12]);
        let g = l.backward(&Tensor::ones(&[2, 12]));
        assert_eq!(g.dims(), &[2, 3, 2, 2]);
    }

    #[test]
    fn residual_identity_shortcut_adds() {
        let mut rng = rng();
        // Body that multiplies by ~0 (zero conv weights) — output is
        // relu(shortcut).
        let mut conv = Conv2d::new(&mut rng, 2, 2, 3, 1, 1);
        conv.weight_mut().value.scale(0.0);
        let mut block = Layer::Residual(ResidualBlock::new(vec![Layer::Conv2d(conv)], None));
        let x = Tensor::from_vec(
            (0..2 * 2 * 3 * 3)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
            &[2, 2, 3, 3],
        );
        let y = block.forward(&x, false);
        assert_eq!(y.data(), x.map(|v| v.max(0.0)).data());
    }

    #[test]
    fn residual_grad_check() {
        let mut rng = rng();
        let body = vec![
            Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
            Layer::relu(),
            Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
        ];
        let mut block = Layer::Residual(ResidualBlock::new(body, None));
        let x = forms_tensor::uniform(&mut rng, &[1, 2, 4, 4], 1.0);
        grad_check(&mut block, &x, 2e-2);
    }

    #[test]
    fn weight_matrix_round_trip() {
        let mut l = Conv2d::new(&mut rng(), 3, 4, 3, 1, 1);
        let m = l.weight_matrix();
        assert_eq!(m.dims(), &[27, 4]);
        let orig = l.weight().value.clone();
        l.set_weight_matrix(&m);
        assert_eq!(l.weight().value, orig);
    }

    #[test]
    fn linear_weight_matrix_round_trip() {
        let mut l = Linear::new(&mut rng(), 5, 3);
        let m = l.weight_matrix();
        assert_eq!(m.dims(), &[5, 3]);
        let orig = l.weight().value.clone();
        l.set_weight_matrix(&m);
        assert_eq!(l.weight().value, orig);
    }

    #[test]
    fn sigmoid_grad_check() {
        let mut l = Layer::sigmoid();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[1, 5]);
        grad_check(&mut l, &x, 1e-3);
    }

    #[test]
    fn tanh_grad_check() {
        let mut l = Layer::tanh();
        let x = Tensor::from_vec(vec![-1.5, -0.25, 0.0, 0.25, 1.5], &[1, 5]);
        grad_check(&mut l, &x, 1e-3);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut l = Layer::dropout(0.5, 7);
        let x = Tensor::from_fn(&[1, 32], |i| i as f32);
        assert_eq!(l.forward(&x, false), x);
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let mut l = Layer::dropout(0.5, 7);
        let x = Tensor::ones(&[1, 10_000]);
        let y = l.forward(&x, true);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Dropped entries are exactly zero, survivors exactly 2.0.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn dropout_backward_routes_through_mask() {
        let mut l = Layer::dropout(0.5, 3);
        let x = Tensor::ones(&[1, 64]);
        let y = l.forward(&x, true);
        let g = l.backward(&Tensor::ones(&[1, 64]));
        for (gy, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(gy, gv, "gradient mask must match forward mask");
        }
    }

    #[test]
    fn param_visit_counts() {
        let mut rng = rng();
        let mut l = Layer::conv2d(&mut rng, 2, 4, 3, 1, 1);
        assert_eq!(l.param_count(), 2 * 4 * 9 + 4);
    }
}
