//! Model checkpointing.
//!
//! The evaluation harness trains the same baselines for several
//! experiments; checkpoints let a trained model be saved once and reloaded
//! (and let users ship compressed models). The format is a self-describing
//! little-endian binary: magic, version, parameter count, then per
//! parameter its rank, dims and `f32` data.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use forms_tensor::Tensor;

use crate::Network;

const MAGIC: &[u8; 8] = b"FORMSCKP";
const VERSION: u32 = 1;

/// Serializes all parameter values of a network (in visit order) to bytes.
pub fn to_bytes(net: &mut Network) -> Vec<u8> {
    let params = net.param_values();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in &params {
        out.extend_from_slice(&(p.dims().len() as u32).to_le_bytes());
        for &d in p.dims() {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in p.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Errors loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The bytes are not a FORMS checkpoint or are truncated/corrupt.
    Format(String),
    /// The checkpoint's parameter shapes do not match the target network.
    ShapeMismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
            CheckpointError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.bytes.len() {
            return Err(CheckpointError::Format(format!(
                "truncated at byte {} (needed {n} more)",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

/// Parses checkpoint bytes into parameter tensors.
///
/// # Errors
///
/// Returns [`CheckpointError::Format`] for malformed bytes.
pub fn parse_bytes(bytes: &[u8]) -> Result<Vec<Tensor>, CheckpointError> {
    let mut cur = Cursor { bytes, pos: 0 };
    if cur.take(8)? != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = cur.u32()?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let count = cur.u32()? as usize;
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = cur.u32()? as usize;
        if rank > 8 {
            return Err(CheckpointError::Format(format!("absurd rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(cur.u64()? as usize);
        }
        let len: usize = dims.iter().product();
        if len > (1 << 30) {
            return Err(CheckpointError::Format("tensor too large".into()));
        }
        let raw = cur.take(len * 4)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("len 4")))
            .collect();
        params.push(Tensor::from_vec(data, &dims));
    }
    Ok(params)
}

/// Restores a network's parameters from checkpoint bytes.
///
/// # Errors
///
/// Returns [`CheckpointError::ShapeMismatch`] if the checkpoint does not
/// fit the network's parameter shapes.
pub fn from_bytes(net: &mut Network, bytes: &[u8]) -> Result<(), CheckpointError> {
    let params = parse_bytes(bytes)?;
    let current = net.param_values();
    if params.len() != current.len() {
        return Err(CheckpointError::ShapeMismatch(format!(
            "checkpoint has {} parameters, network has {}",
            params.len(),
            current.len()
        )));
    }
    for (i, (p, c)) in params.iter().zip(&current).enumerate() {
        if p.dims() != c.dims() {
            return Err(CheckpointError::ShapeMismatch(format!(
                "parameter {i}: checkpoint {:?} vs network {:?}",
                p.dims(),
                c.dims()
            )));
        }
    }
    net.set_param_values(&params);
    Ok(())
}

/// Saves a network's parameters to a file.
///
/// # Errors
///
/// Returns any I/O error from the write.
pub fn save(net: &mut Network, path: &Path) -> Result<(), CheckpointError> {
    let mut f = fs::File::create(path)?;
    f.write_all(&to_bytes(net))?;
    Ok(())
}

/// Loads a network's parameters from a file.
///
/// # Errors
///
/// Returns I/O, format or shape errors.
pub fn load(net: &mut Network, path: &Path) -> Result<(), CheckpointError> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    from_bytes(net, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{models, Layer};
    use forms_rng::StdRng;
    use forms_tensor::Tensor as T;

    fn net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        models::lenet5(&mut rng, 1, 16, 10)
    }

    #[test]
    fn byte_round_trip_restores_outputs() {
        let mut a = net(1);
        let bytes = to_bytes(&mut a);
        let mut b = net(2);
        from_bytes(&mut b, &bytes).unwrap();
        let x = T::ones(&[1, 1, 16, 16]);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn file_round_trip() {
        let mut a = net(3);
        let path = std::env::temp_dir().join("forms_ckpt_test.bin");
        save(&mut a, &path).unwrap();
        let mut b = net(4);
        load(&mut b, &path).unwrap();
        assert_eq!(a.param_values(), b.param_values());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut n = net(5);
        let mut bytes = to_bytes(&mut n);
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(&mut n, &bytes),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn truncated_bytes_rejected() {
        let mut n = net(6);
        let bytes = to_bytes(&mut n);
        let cut = &bytes[..bytes.len() / 2];
        assert!(matches!(
            from_bytes(&mut n, cut),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut a = net(7);
        let bytes = to_bytes(&mut a);
        let mut rng = StdRng::seed_from_u64(8);
        let mut other = Network::new(vec![Layer::linear(&mut rng, 4, 2)]);
        assert!(matches!(
            from_bytes(&mut other, &bytes),
            Err(CheckpointError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn version_checked() {
        let mut n = net(9);
        let mut bytes = to_bytes(&mut n);
        bytes[8] = 99; // version little-endian low byte
        assert!(matches!(
            from_bytes(&mut n, &bytes),
            Err(CheckpointError::Format(_))
        ));
    }
}
