//! Optimizers.
//!
//! Optimizers are stateful and identify parameters by their stable visit
//! order in [`crate::Network::for_each_param`], so the same optimizer
//! instance must be used with the same network throughout a run.

use forms_tensor::Tensor;

use crate::{Network, Param};

/// A gradient-based optimizer.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// the network's parameters, then leaves gradients untouched (call
    /// [`Network::zero_grad`] before the next accumulation).
    fn step(&mut self, net: &mut Network);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with momentum and decoupled weight decay.
///
/// # Example
///
/// ```
/// use forms_dnn::{Layer, Network, Optimizer, Sgd};
/// use forms_rng::StdRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Network::new(vec![Layer::linear(&mut rng, 4, 2)]);
/// let mut opt = Sgd::new(0.1).momentum(0.9);
/// opt.step(&mut net); // zero gradients: no-op update
/// ```
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not a positive finite number.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum coefficient (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)`.
    pub fn momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Sets decoupled weight decay (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay` is negative.
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Network) {
        let mut idx = 0;
        let velocity = &mut self.velocity;
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        net.for_each_param(&mut |p: &mut Param| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.dims()));
            }
            let v = &mut velocity[idx];
            if mu > 0.0 {
                v.scale(mu);
                v.axpy(1.0, &p.grad);
                p.value.axpy(-lr, v);
            } else {
                p.value.axpy(-lr, &p.grad);
            }
            if wd > 0.0 {
                p.value.scale(1.0 - lr * wd);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba), the paper's cited DNN training baseline.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the given learning rate and standard β/ε defaults.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not a positive finite number.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Network) {
        self.t += 1;
        let t = self.t as i32;
        let bias1 = 1.0 - self.beta1.powi(t);
        let bias2 = 1.0 - self.beta2.powi(t);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        net.for_each_param(&mut |p: &mut Param| {
            if m.len() <= idx {
                m.push(Tensor::zeros(p.value.dims()));
                v.push(Tensor::zeros(p.value.dims()));
            }
            let (mi, vi) = (&mut m[idx], &mut v[idx]);
            for i in 0..p.value.len() {
                let g = p.grad.data()[i];
                let md = mi.data_mut();
                md[i] = b1 * md[i] + (1.0 - b1) * g;
                let vd = vi.data_mut();
                vd[i] = b2 * vd[i] + (1.0 - b2) * g * g;
                let m_hat = md[i] / bias1;
                let v_hat = vd[i] / bias2;
                p.value.data_mut()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layer;
    use forms_rng::StdRng;
    use forms_tensor::Tensor;

    /// Minimize ||Wx - y||² on a fixed (x, y) pair and check the loss drops.
    fn fit_linear(opt: &mut dyn Optimizer, steps: usize) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Network::new(vec![Layer::linear(&mut rng, 3, 2)]);
        let x = Tensor::from_vec(vec![1.0, -0.5, 0.25], &[1, 3]);
        let target = Tensor::from_vec(vec![0.7, -0.3], &[1, 2]);
        let loss_of = |net: &mut Network| {
            let y = net.forward(&x);
            (&y - &target).norm_sq()
        };
        let initial = loss_of(&mut net);
        for _ in 0..steps {
            net.zero_grad();
            let y = net.forward_train(&x);
            let grad = (&y - &target).map(|v| 2.0 * v);
            net.backward(&grad);
            opt.step(&mut net);
        }
        (initial, loss_of(&mut net))
    }

    #[test]
    fn sgd_reduces_loss() {
        let (initial, fin) = fit_linear(&mut Sgd::new(0.05), 100);
        assert!(fin < initial * 0.01, "loss {initial} → {fin}");
    }

    #[test]
    fn sgd_with_momentum_reduces_loss() {
        let (initial, fin) = fit_linear(&mut Sgd::new(0.02).momentum(0.9), 100);
        assert!(fin < initial * 0.01, "loss {initial} → {fin}");
    }

    #[test]
    fn adam_reduces_loss() {
        let (initial, fin) = fit_linear(&mut Adam::new(0.05), 200);
        assert!(fin < initial * 0.01, "loss {initial} → {fin}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Network::new(vec![Layer::linear(&mut rng, 4, 4)]);
        let before: f32 = net.param_values().iter().map(Tensor::norm_sq).sum();
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        for _ in 0..10 {
            net.zero_grad(); // zero gradients: only decay acts
            opt.step(&mut net);
        }
        let after: f32 = net.param_values().iter().map(Tensor::norm_sq).sum();
        assert!(
            after < before * 0.7,
            "decay had no effect: {before} → {after}"
        );
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
