//! Classification losses and metrics.

use forms_tensor::Tensor;

/// Result of a loss evaluation: the scalar loss and the gradient with
/// respect to the logits.
#[derive(Clone, Debug, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits (`[N, classes]`).
    pub grad: Tensor,
}

/// Row-wise softmax of a `[N, classes]` logit matrix.
///
/// # Panics
///
/// Panics if `logits` is not rank-2.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax expects [N, classes]");
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = logits.clone();
    for s in 0..n {
        let row = &mut out.data_mut()[s * c..(s + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Softmax cross-entropy loss over a batch of logits with integer labels.
///
/// Returns the mean loss and its gradient with respect to the logits — the
/// starting point of every backward pass in the training loops.
///
/// # Panics
///
/// Panics if shapes disagree or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    assert_eq!(logits.shape().rank(), 2, "loss expects [N, classes] logits");
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(n, labels.len(), "batch size mismatch");
    let probs = softmax(logits);
    let mut loss = 0.0;
    let mut grad = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (s, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range for {c} classes");
        let p = probs.data()[s * c + label].max(1e-12);
        loss -= p.ln();
        grad.data_mut()[s * c + label] -= 1.0;
    }
    grad.scale(inv_n);
    LossOutput {
        loss: loss * inv_n,
        grad,
    }
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.shape().rank(), 2, "accuracy expects [N, classes]");
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(n, labels.len(), "batch size mismatch");
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0;
    for (s, &label) in labels.iter().enumerate() {
        let row = &logits.data()[s * c..(s + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if pred == label {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

/// Fraction of rows whose label is among the `k` largest logits (top-k
/// accuracy; the paper reports top-5 for ImageNet).
///
/// # Panics
///
/// Panics if shapes disagree or `k` is zero.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f32 {
    assert_eq!(logits.shape().rank(), 2, "accuracy expects [N, classes]");
    assert!(k > 0, "k must be positive");
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(n, labels.len(), "batch size mismatch");
    if n == 0 {
        return 0.0;
    }
    let k = k.min(c);
    let mut correct = 0;
    for (s, &label) in labels.iter().enumerate() {
        let row = &logits.data()[s * c..(s + 1) * c];
        let target = row[label];
        // Rank of the label = number of strictly larger logits.
        let larger = row.iter().filter(|&&v| v > target).count();
        if larger < k {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax(&logits);
        for s in 0..2 {
            let sum: f32 = p.data()[s * 3..(s + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]);
        assert!(softmax(&a).allclose(&softmax(&b), 1e-6));
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], &[1, 3]);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let logits = Tensor::zeros(&[1, 4]);
        let out = softmax_cross_entropy(&logits, &[2]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_diff() {
        let logits = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1], &[2, 2]);
        let labels = [1usize, 0];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (softmax_cross_entropy(&lp, &labels).loss
                - softmax_cross_entropy(&lm, &labels).loss)
                / (2.0 * eps);
            assert!(
                (num - out.grad.data()[i]).abs() < 1e-3,
                "grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn top_k_accuracy_ranks_correctly() {
        // Row 0: label 2 is ranked 2nd; row 1: label 0 is ranked 3rd.
        let logits = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 0.9, 0.5], &[2, 3]);
        assert_eq!(top_k_accuracy(&logits, &[2, 0], 1), 0.0);
        assert_eq!(top_k_accuracy(&logits, &[2, 0], 2), 0.5);
        assert_eq!(top_k_accuracy(&logits, &[2, 0], 3), 1.0);
    }

    #[test]
    fn top_1_matches_accuracy() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]);
        let labels = [0usize, 1, 1];
        assert_eq!(
            top_k_accuracy(&logits, &labels, 1),
            accuracy(&logits, &labels)
        );
    }

    #[test]
    fn top_k_saturates_at_class_count() {
        let logits = Tensor::zeros(&[2, 3]);
        assert_eq!(top_k_accuracy(&logits, &[0, 2], 99), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        softmax_cross_entropy(&Tensor::zeros(&[1, 2]), &[5]);
    }
}
