//! Data augmentation for the synthetic image tasks.
//!
//! Small random shifts and horizontal flips — the standard light
//! augmentation for CIFAR-class data. On the synthetic stand-ins it
//! regularizes the small training sets the same way it does real images.

use forms_rng::Rng;
use forms_tensor::Tensor;

use crate::data::Dataset;

/// Augmentation policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Augment {
    /// Maximum absolute shift in pixels, each axis.
    pub max_shift: usize,
    /// Whether to flip horizontally with probability 1/2.
    pub flip: bool,
}

impl Augment {
    /// The standard light policy: ±2 pixel shifts plus flips.
    pub fn standard() -> Self {
        Self {
            max_shift: 2,
            flip: true,
        }
    }

    /// No-op policy.
    pub fn none() -> Self {
        Self {
            max_shift: 0,
            flip: false,
        }
    }

    /// Augments one `[C, H, W]` image.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not rank-3.
    pub fn apply_image<R: Rng + ?Sized>(&self, image: &Tensor, rng: &mut R) -> Tensor {
        assert_eq!(image.shape().rank(), 3, "expected a [C, H, W] image");
        let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
        let (dy, dx) = if self.max_shift == 0 {
            (0isize, 0isize)
        } else {
            let s = self.max_shift as isize;
            (rng.gen_range(-s..=s), rng.gen_range(-s..=s))
        };
        let flip = self.flip && rng.gen_bool(0.5);
        let mut out = Tensor::zeros(image.dims());
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let sy = y as isize - dy;
                    let sx0 = if flip {
                        (w - 1 - x) as isize
                    } else {
                        x as isize
                    };
                    let sx = sx0 - dx;
                    if sy >= 0 && (sy as usize) < h && sx >= 0 && (sx as usize) < w {
                        let v = image.get(&[ch, sy as usize, sx as usize]);
                        out.set(&[ch, y, x], v);
                    }
                }
            }
        }
        out
    }

    /// Produces an augmented copy of a whole dataset (labels unchanged).
    pub fn apply_dataset<R: Rng + ?Sized>(&self, data: &Dataset, rng: &mut R) -> Dataset {
        let n = data.len();
        let dims = data.sample_dims().to_vec();
        let sample_len: usize = dims.iter().product();
        let mut out = Vec::with_capacity(n * sample_len);
        for i in 0..n {
            let (x, _) = data.batch(i, 1);
            let image = Tensor::from_vec(x.data().to_vec(), &dims);
            out.extend_from_slice(self.apply_image(&image, rng).data());
        }
        let mut full_dims = vec![n];
        full_dims.extend_from_slice(&dims);
        Dataset::new(
            Tensor::from_vec(out, &full_dims),
            data.labels().to_vec(),
            data.classes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_rng::StdRng;

    fn image() -> Tensor {
        Tensor::from_fn(&[1, 4, 4], |i| i as f32)
    }

    #[test]
    fn none_policy_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let img = image();
        assert_eq!(Augment::none().apply_image(&img, &mut rng), img);
    }

    #[test]
    fn shift_moves_content_and_zero_pads() {
        let mut rng = StdRng::seed_from_u64(1);
        let policy = Augment {
            max_shift: 3,
            flip: false,
        };
        // Over several draws, at least one produces zero-padding (content
        // moved off the border).
        let img = Tensor::ones(&[1, 4, 4]);
        let mut saw_padding = false;
        for _ in 0..32 {
            let out = policy.apply_image(&img, &mut rng);
            if out.data().contains(&0.0) {
                saw_padding = true;
            }
            // Content is never invented.
            assert!(out.max() <= 1.0 && out.min() >= 0.0);
        }
        assert!(saw_padding);
    }

    #[test]
    fn flip_reverses_rows() {
        // Force a flip by trying seeds until one flips (policy has no
        // shift so flip is the only change).
        let policy = Augment {
            max_shift: 0,
            flip: true,
        };
        let img = image();
        let mut flipped_seen = false;
        for seed in 0..16 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = policy.apply_image(&img, &mut rng);
            if out != img {
                flipped_seen = true;
                // Row 0 reversed: [3,2,1,0].
                let row: Vec<f32> = (0..4).map(|x| out.get(&[0, 0, x])).collect();
                assert_eq!(row, vec![3.0, 2.0, 1.0, 0.0]);
            }
        }
        assert!(flipped_seen, "no flip in 16 seeds");
    }

    #[test]
    fn dataset_augmentation_preserves_labels_and_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let (train, _) = crate::data::SyntheticSpec {
            classes: 2,
            channels: 1,
            height: 4,
            width: 4,
            train_per_class: 3,
            test_per_class: 1,
            noise: 0.1,
        }
        .generate(&mut rng);
        let aug = Augment::standard().apply_dataset(&train, &mut rng);
        assert_eq!(aug.len(), train.len());
        assert_eq!(aug.labels(), train.labels());
        assert_eq!(aug.sample_dims(), train.sample_dims());
    }
}
