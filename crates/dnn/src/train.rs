//! Training and evaluation loops.

use forms_rng::Rng;

use crate::data::Dataset;
use crate::{accuracy, softmax_cross_entropy, top_k_accuracy, Network, Optimizer};

/// Configuration for a training run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Multiply the learning rate by this factor after each epoch
    /// (1.0 = constant).
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 16,
            lr_decay: 1.0,
        }
    }
}

/// Summary of one epoch (or one full run) of training.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainReport {
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub train_accuracy: f32,
}

/// Runs one epoch of SGD over a shuffled dataset.
///
/// Returns the mean loss and accuracy observed during the epoch.
///
/// # Panics
///
/// Panics if `batch_size` is zero or the dataset is empty.
pub fn train_epoch<R: Rng + ?Sized>(
    net: &mut Network,
    opt: &mut dyn Optimizer,
    data: &mut Dataset,
    batch_size: usize,
    rng: &mut R,
) -> TrainReport {
    assert!(batch_size > 0, "batch size must be positive");
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    data.shuffle(rng);
    let mut total_loss = 0.0;
    let mut total_correct = 0.0;
    let mut batches = 0.0;
    let mut cursor = 0;
    while cursor < data.len() {
        let len = batch_size.min(data.len() - cursor);
        let (x, labels) = data.batch(cursor, len);
        cursor += len;
        net.zero_grad();
        let logits = net.forward_train(&x);
        let out = softmax_cross_entropy(&logits, labels);
        net.backward(&out.grad);
        opt.step(net);
        total_loss += out.loss;
        total_correct += accuracy(&logits, labels);
        batches += 1.0;
    }
    TrainReport {
        loss: total_loss / batches,
        train_accuracy: total_correct / batches,
    }
}

/// Evaluates classification accuracy on a dataset (inference mode).
///
/// # Panics
///
/// Panics if `batch_size` is zero.
pub fn evaluate(net: &mut Network, data: &Dataset, batch_size: usize) -> f32 {
    assert!(batch_size > 0, "batch size must be positive");
    if data.is_empty() {
        return 0.0;
    }
    let mut correct = 0.0;
    for (x, labels) in data.batches(batch_size) {
        let logits = net.forward(&x);
        correct += accuracy(&logits, labels) * labels.len() as f32;
    }
    correct / data.len() as f32
}

/// Top-k classification accuracy on a dataset (inference mode) — the
/// paper's metric for ImageNet is top-5.
///
/// # Panics
///
/// Panics if `batch_size` or `k` is zero.
pub fn evaluate_topk(net: &mut Network, data: &Dataset, batch_size: usize, k: usize) -> f32 {
    assert!(batch_size > 0, "batch size must be positive");
    if data.is_empty() {
        return 0.0;
    }
    let mut correct = 0.0;
    for (x, labels) in data.batches(batch_size) {
        let logits = net.forward(&x);
        correct += top_k_accuracy(&logits, labels, k) * labels.len() as f32;
    }
    correct / data.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticSpec;
    use crate::{models, Sgd};
    use forms_rng::StdRng;

    #[test]
    fn training_learns_synthetic_task() {
        let mut rng = StdRng::seed_from_u64(21);
        let spec = SyntheticSpec {
            classes: 4,
            channels: 1,
            height: 8,
            width: 8,
            train_per_class: 20,
            test_per_class: 8,
            noise: 0.15,
        };
        let (mut train, test) = spec.generate(&mut rng);
        let mut net = models::mlp(&mut rng, 64, &[32], 4);
        let mut opt = Sgd::new(0.1).momentum(0.9);
        let before = evaluate(&mut net, &test, 16);
        for _ in 0..15 {
            train_epoch(&mut net, &mut opt, &mut train, 16, &mut rng);
        }
        let after = evaluate(&mut net, &test, 16);
        assert!(
            after > before + 0.3 || after > 0.9,
            "no learning: {before} → {after}"
        );
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = models::mlp(&mut rng, 4, &[4], 2);
        let ds = crate::data::Dataset::new(forms_tensor::Tensor::zeros(&[0, 1, 2, 2]), vec![], 2);
        assert_eq!(evaluate(&mut net, &ds, 4), 0.0);
    }

    #[test]
    fn lr_decay_config_defaults() {
        let c = TrainConfig::default();
        assert_eq!(c.lr_decay, 1.0);
        assert!(c.epochs > 0 && c.batch_size > 0);
    }
}
