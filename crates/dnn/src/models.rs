//! Model zoo: scaled-down versions of the paper's benchmark networks.
//!
//! The paper evaluates LeNet-5, VGG-16 and ResNet-18/50. We keep every
//! topology (layer kinds, depths, stage structure, residual wiring) but
//! scale channel widths down so the networks train in seconds on a CPU; the
//! compression experiments only depend on the *structure* of the weight
//! tensors, which is preserved. Each constructor documents its stand-in
//! scale.

use forms_rng::Rng;

use crate::{Layer, Network, ResidualBlock};

/// LeNet-5 (MNIST-class model): two 5×5 conv+pool stages and three
/// fully-connected layers. Channel widths follow the original (6, 16); the
/// FC widths are scaled to the 16×16 stand-in input.
///
/// `input_hw` must be divisible by 4 (two 2×2 pools).
///
/// # Panics
///
/// Panics if `input_hw` is not divisible by 4.
pub fn lenet5<R: Rng + ?Sized>(
    rng: &mut R,
    in_channels: usize,
    input_hw: usize,
    classes: usize,
) -> Network {
    assert!(
        input_hw.is_multiple_of(4),
        "input size must be divisible by 4"
    );
    let final_hw = input_hw / 4;
    Network::new(vec![
        Layer::conv2d(rng, in_channels, 6, 5, 1, 2),
        Layer::relu(),
        Layer::max_pool(2),
        Layer::conv2d(rng, 6, 16, 5, 1, 2),
        Layer::relu(),
        Layer::max_pool(2),
        Layer::flatten(),
        Layer::linear(rng, 16 * final_hw * final_hw, 120),
        Layer::relu(),
        Layer::linear(rng, 120, 84),
        Layer::relu(),
        Layer::linear(rng, 84, classes),
    ])
}

/// VGG-16-style network: the original 13-conv/5-pool/3-FC topology with
/// channel widths scaled by `width / 64` relative to the original
/// (64→`width`, 128→`2·width`, …), with batch normalization after every
/// convolution (the standard VGG-BN variant — the plain network does not
/// train from scratch at these widths).
///
/// `input_hw` must be divisible by 16; the last pool stage of the original
/// (which would take the stand-in input below 1×1) is replaced by keeping
/// the final feature map at `input_hw/16`.
///
/// # Panics
///
/// Panics if `input_hw` is not divisible by 16 or `width` is zero.
pub fn vgg16<R: Rng + ?Sized>(
    rng: &mut R,
    in_channels: usize,
    input_hw: usize,
    classes: usize,
    width: usize,
) -> Network {
    assert!(
        input_hw.is_multiple_of(16),
        "input size must be divisible by 16"
    );
    assert!(width > 0, "width must be positive");
    let w = width;
    let mut layers = Vec::new();
    let stages: [(usize, usize); 5] = [(2, w), (2, 2 * w), (3, 4 * w), (3, 8 * w), (3, 8 * w)];
    let mut in_ch = in_channels;
    for (stage, &(convs, ch)) in stages.iter().enumerate() {
        for _ in 0..convs {
            layers.push(Layer::conv2d(rng, in_ch, ch, 3, 1, 1));
            layers.push(Layer::batch_norm(ch));
            layers.push(Layer::relu());
            in_ch = ch;
        }
        // Four pools take hw/16; the original fifth pool is skipped for the
        // small stand-in input.
        if stage < 4 {
            layers.push(Layer::max_pool(2));
        }
    }
    let final_hw = input_hw / 16;
    layers.push(Layer::flatten());
    layers.push(Layer::linear(rng, 8 * w * final_hw * final_hw, 16 * w));
    layers.push(Layer::relu());
    layers.push(Layer::linear(rng, 16 * w, 16 * w));
    layers.push(Layer::relu());
    layers.push(Layer::linear(rng, 16 * w, classes));
    Network::new(layers)
}

/// A ResNet basic block (two 3×3 convs with batch norm) with an optional
/// strided 1×1 projection when the shape changes.
fn basic_block<R: Rng + ?Sized>(rng: &mut R, in_ch: usize, out_ch: usize, stride: usize) -> Layer {
    let body = vec![
        Layer::conv2d(rng, in_ch, out_ch, 3, stride, 1),
        Layer::batch_norm(out_ch),
        Layer::relu(),
        Layer::conv2d(rng, out_ch, out_ch, 3, 1, 1),
        Layer::batch_norm(out_ch),
    ];
    let projection =
        (stride != 1 || in_ch != out_ch).then(|| Layer::conv2d(rng, in_ch, out_ch, 1, stride, 0));
    Layer::Residual(ResidualBlock::new(body, projection))
}

/// A ResNet bottleneck block (1×1 reduce → 3×3 → 1×1 expand), the building
/// block of ResNet-50.
fn bottleneck_block<R: Rng + ?Sized>(
    rng: &mut R,
    in_ch: usize,
    mid_ch: usize,
    out_ch: usize,
    stride: usize,
) -> Layer {
    let body = vec![
        Layer::conv2d(rng, in_ch, mid_ch, 1, 1, 0),
        Layer::batch_norm(mid_ch),
        Layer::relu(),
        Layer::conv2d(rng, mid_ch, mid_ch, 3, stride, 1),
        Layer::batch_norm(mid_ch),
        Layer::relu(),
        Layer::conv2d(rng, mid_ch, out_ch, 1, 1, 0),
        Layer::batch_norm(out_ch),
    ];
    let projection =
        (stride != 1 || in_ch != out_ch).then(|| Layer::conv2d(rng, in_ch, out_ch, 1, stride, 0));
    Layer::Residual(ResidualBlock::new(body, projection))
}

/// ResNet-18-style network: conv stem + 4 stages of 2 basic blocks with
/// channel widths `width, 2·width, 4·width, 8·width` (the original uses
/// `width = 64`), global average pool, FC classifier.
///
/// `input_hw` must be divisible by 8 (three strided stages).
///
/// # Panics
///
/// Panics if `input_hw` is not divisible by 8 or `width` is zero.
pub fn resnet18<R: Rng + ?Sized>(
    rng: &mut R,
    in_channels: usize,
    input_hw: usize,
    classes: usize,
    width: usize,
) -> Network {
    assert!(
        input_hw.is_multiple_of(8),
        "input size must be divisible by 8"
    );
    assert!(width > 0, "width must be positive");
    let w = width;
    let mut layers = vec![
        Layer::conv2d(rng, in_channels, w, 3, 1, 1),
        Layer::batch_norm(w),
        Layer::relu(),
    ];
    let stages = [(w, 1), (2 * w, 2), (4 * w, 2), (8 * w, 2)];
    let mut in_ch = w;
    for &(ch, stride) in &stages {
        layers.push(basic_block(rng, in_ch, ch, stride));
        layers.push(basic_block(rng, ch, ch, 1));
        in_ch = ch;
    }
    let final_hw = input_hw / 8;
    layers.push(Layer::avg_pool(final_hw));
    layers.push(Layer::flatten());
    layers.push(Layer::linear(rng, 8 * w, classes));
    Network::new(layers)
}

/// ResNet-50-style network: conv stem + 4 stages of `[3, 4, 6, 3]`
/// bottleneck blocks (the original stage plan) with base width `width`
/// (original: 64) and 4× expansion.
///
/// `input_hw` must be divisible by 8.
///
/// # Panics
///
/// Panics if `input_hw` is not divisible by 8 or `width` is zero.
pub fn resnet50<R: Rng + ?Sized>(
    rng: &mut R,
    in_channels: usize,
    input_hw: usize,
    classes: usize,
    width: usize,
) -> Network {
    assert!(
        input_hw.is_multiple_of(8),
        "input size must be divisible by 8"
    );
    assert!(width > 0, "width must be positive");
    let w = width;
    let mut layers = vec![
        Layer::conv2d(rng, in_channels, w, 3, 1, 1),
        Layer::batch_norm(w),
        Layer::relu(),
    ];
    let plan: [(usize, usize, usize); 4] = [(w, 3, 1), (2 * w, 4, 2), (4 * w, 6, 2), (8 * w, 3, 2)];
    let mut in_ch = w;
    for &(mid, blocks, stride) in &plan {
        let out = mid * 4;
        layers.push(bottleneck_block(rng, in_ch, mid, out, stride));
        for _ in 1..blocks {
            layers.push(bottleneck_block(rng, out, mid, out, 1));
        }
        in_ch = out;
    }
    let final_hw = input_hw / 8;
    layers.push(Layer::avg_pool(final_hw));
    layers.push(Layer::flatten());
    layers.push(Layer::linear(rng, 32 * w, classes));
    Network::new(layers)
}

/// A small multi-layer perceptron, handy for fast unit tests and the
/// quickstart example.
///
/// # Panics
///
/// Panics if `hidden` is empty-dimensional (any zero width).
pub fn mlp<R: Rng + ?Sized>(
    rng: &mut R,
    in_features: usize,
    hidden: &[usize],
    classes: usize,
) -> Network {
    let mut layers = vec![Layer::flatten()];
    let mut prev = in_features;
    for &h in hidden {
        layers.push(Layer::linear(rng, prev, h));
        layers.push(Layer::relu());
        prev = h;
    }
    layers.push(Layer::linear(rng, prev, classes));
    Network::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_rng::StdRng;
    use forms_tensor::Tensor;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn lenet5_output_shape() {
        let mut net = lenet5(&mut rng(), 1, 16, 10);
        let y = net.forward(&Tensor::ones(&[2, 1, 16, 16]));
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn vgg16_output_shape_and_depth() {
        let mut net = vgg16(&mut rng(), 3, 16, 10, 2);
        let y = net.forward(&Tensor::ones(&[1, 3, 16, 16]));
        assert_eq!(y.dims(), &[1, 10]);
        // 13 convs + 3 linears = 16 weight layers, the VGG-16 signature.
        assert_eq!(net.weight_layer_count(), 16);
    }

    #[test]
    fn resnet18_output_shape_and_depth() {
        let mut net = resnet18(&mut rng(), 3, 16, 10, 4);
        let y = net.forward(&Tensor::ones(&[1, 3, 16, 16]));
        assert_eq!(y.dims(), &[1, 10]);
        // stem + 8 blocks × 2 convs + 3 projections + fc = 1 + 16 + 3 + 1.
        assert_eq!(net.weight_layer_count(), 21);
    }

    #[test]
    fn resnet50_output_shape_and_depth() {
        let mut net = resnet50(&mut rng(), 3, 16, 10, 2);
        let y = net.forward(&Tensor::ones(&[1, 3, 16, 16]));
        assert_eq!(y.dims(), &[1, 10]);
        // stem + 16 blocks × 3 convs + 4 projections + fc.
        assert_eq!(net.weight_layer_count(), 1 + 48 + 4 + 1);
    }

    #[test]
    fn mlp_trains_on_trivial_task() {
        use crate::{softmax_cross_entropy, Optimizer, Sgd};
        let mut rng = rng();
        let mut net = mlp(&mut rng, 4, &[8], 2);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0], &[2, 1, 2, 2]);
        let labels = [0usize, 1];
        let mut opt = Sgd::new(0.5);
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            net.zero_grad();
            let y = net.forward_train(&x);
            let out = softmax_cross_entropy(&y, &labels);
            net.backward(&out.grad);
            opt.step(&mut net);
            last = out.loss;
        }
        assert!(last < 0.1, "failed to fit trivial task: loss {last}");
    }

    #[test]
    fn resnet18_backward_runs() {
        let mut net = resnet18(&mut rng(), 3, 8, 4, 2);
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let y = net.forward_train(&x);
        net.backward(&Tensor::ones(y.dims()));
    }
}
