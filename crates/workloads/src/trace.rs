//! Synthetic inference request traces for the serving subsystem.
//!
//! An open-loop load generator needs two things per request: *when* it
//! arrives and *what* it carries. Arrivals follow a Poisson process (the
//! standard model for independent user traffic — exponential inter-arrival
//! gaps at a fixed offered rate), and payloads are post-ReLU-shaped
//! activation vectors sized for a target layer from the shape catalogs.

use std::time::Duration;

use forms_rng::{Distribution, Exp, Rng};

use crate::activations::ActivationModel;

/// Specification of one synthetic request stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceSpec {
    /// Offered load in requests per second.
    pub rate_rps: f64,
    /// Number of requests in the trace.
    pub requests: usize,
}

/// Draws Poisson-process arrival offsets: `n` cumulative arrival times
/// (measured from the stream start) whose inter-arrival gaps are i.i.d.
/// exponential with mean `1 / rate_rps`.
///
/// # Panics
///
/// Panics if `rate_rps` is not finite and positive.
pub fn poisson_arrivals<R: Rng + ?Sized>(rng: &mut R, rate_rps: f64, n: usize) -> Vec<Duration> {
    let exp = Exp::new(rate_rps).expect("rate must be finite and positive");
    let mut at = 0.0f64;
    (0..n)
        .map(|_| {
            at += exp.sample(rng);
            Duration::from_secs_f64(at)
        })
        .collect()
}

/// Synthesizes one request payload: `len` non-negative post-ReLU-shaped
/// activation values drawn from `model`, as the `f32` sample a serving
/// front-end would hand to the accelerator.
pub fn synth_request<R: Rng + ?Sized>(rng: &mut R, model: ActivationModel, len: usize) -> Vec<f32> {
    model
        .sample_values(rng, len)
        .into_iter()
        .map(|v| v as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_rng::StdRng;

    #[test]
    fn arrivals_are_monotone_with_the_right_mean_gap() {
        let mut rng = StdRng::seed_from_u64(11);
        let arrivals = poisson_arrivals(&mut rng, 200.0, 4000);
        assert_eq!(arrivals.len(), 4000);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival should be close to 1/rate = 5 ms.
        let total = arrivals.last().unwrap().as_secs_f64();
        let mean_gap = total / 4000.0;
        assert!((mean_gap - 0.005).abs() < 0.0005, "mean gap {mean_gap}");
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let a = poisson_arrivals(&mut StdRng::seed_from_u64(3), 100.0, 64);
        let b = poisson_arrivals(&mut StdRng::seed_from_u64(3), 100.0, 64);
        let c = poisson_arrivals(&mut StdRng::seed_from_u64(4), 100.0, 64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn requests_are_nonnegative_and_sized() {
        let mut rng = StdRng::seed_from_u64(7);
        let req = synth_request(&mut rng, ActivationModel::half_normal(0.5), 1152);
        assert_eq!(req.len(), 1152);
        assert!(req.iter().all(|&v| v >= 0.0));
        assert!(req.iter().any(|&v| v > 0.0));
    }
}
