//! Parameter-sweep utilities for the experiment harness: a small cartesian
//! grid abstraction so benches and binaries sweep design axes uniformly.

/// A named axis of a parameter sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Axis<T> {
    /// Axis label (used in reports).
    pub name: &'static str,
    /// The values to sweep.
    pub values: Vec<T>,
}

impl<T: Clone> Axis<T> {
    /// Creates an axis.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(name: &'static str, values: Vec<T>) -> Self {
        assert!(!values.is_empty(), "axis {name} needs at least one value");
        Self { name, values }
    }
}

/// Cartesian product of two axes, yielding every `(a, b)` pair in row-major
/// order.
pub fn grid2<A: Clone, B: Clone>(a: &Axis<A>, b: &Axis<B>) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.values.len() * b.values.len());
    for av in &a.values {
        for bv in &b.values {
            out.push((av.clone(), bv.clone()));
        }
    }
    out
}

/// Cartesian product of three axes.
pub fn grid3<A: Clone, B: Clone, C: Clone>(
    a: &Axis<A>,
    b: &Axis<B>,
    c: &Axis<C>,
) -> Vec<(A, B, C)> {
    let mut out = Vec::with_capacity(a.values.len() * b.values.len() * c.values.len());
    for av in &a.values {
        for bv in &b.values {
            for cv in &c.values {
                out.push((av.clone(), bv.clone(), cv.clone()));
            }
        }
    }
    out
}

/// Runs `f` over a grid and collects `(point, result)` pairs — the shape
/// every sweep in the harness reduces to.
pub fn sweep2<A: Clone, B: Clone, R>(
    a: &Axis<A>,
    b: &Axis<B>,
    mut f: impl FnMut(&A, &B) -> R,
) -> Vec<((A, B), R)> {
    grid2(a, b)
        .into_iter()
        .map(|(av, bv)| {
            let r = f(&av, &bv);
            ((av, bv), r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_row_major_order() {
        let a = Axis::new("a", vec![1, 2]);
        let b = Axis::new("b", vec!["x", "y"]);
        assert_eq!(grid2(&a, &b), vec![(1, "x"), (1, "y"), (2, "x"), (2, "y")]);
    }

    #[test]
    fn grid3_size() {
        let a = Axis::new("a", vec![1, 2]);
        let b = Axis::new("b", vec![3]);
        let c = Axis::new("c", vec![4, 5, 6]);
        assert_eq!(grid3(&a, &b, &c).len(), 6);
    }

    #[test]
    fn sweep_collects_results_in_order() {
        let a = Axis::new("fragment", vec![4usize, 8]);
        let b = Axis::new("bits", vec![2u32]);
        let results = sweep2(&a, &b, |&f, &bits| f as u32 * bits);
        assert_eq!(results[0], ((4, 2), 8));
        assert_eq!(results[1], ((8, 2), 16));
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_axis_rejected() {
        Axis::<u32>::new("empty", vec![]);
    }
}
