//! Capture the activations feeding every weight layer of a network.
//!
//! The EIC measurements of paper Fig. 8 are taken on the *inputs* of each
//! CONV layer. This walks a `forms-dnn` network exactly as the accelerator
//! does (including into residual blocks, body before projection) and
//! records the tensor entering each conv/linear layer, in weight-layer
//! visit order.

use forms_dnn::{Layer, Network};
use forms_tensor::Tensor;

/// Runs `x` through a copy of the network and returns the input tensor of
/// every conv/linear layer, in the same order as
/// [`Network::for_each_weight_layer`].
pub fn capture_weight_layer_inputs(net: &Network, x: &Tensor) -> Vec<Tensor> {
    let mut layers = net.clone().into_layers();
    let mut captured = Vec::new();
    let mut y = x.clone();
    for layer in &mut layers {
        y = forward_capture(layer, &y, &mut captured);
    }
    captured
}

fn forward_capture(layer: &mut Layer, x: &Tensor, captured: &mut Vec<Tensor>) -> Tensor {
    match layer {
        Layer::Conv2d(_) | Layer::Linear(_) => {
            captured.push(x.clone());
            layer.forward(x, false)
        }
        Layer::Residual(block) => {
            let mut y = x.clone();
            for l in block.body_mut() {
                y = forward_capture(l, &y, captured);
            }
            let shortcut = match block.projection_mut() {
                Some(p) => forward_capture(p, x, captured),
                None => x.clone(),
            };
            y.zip(&shortcut, |a, b| (a + b).max(0.0))
        }
        other => other.forward(x, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_dnn::ResidualBlock;
    use forms_rng::StdRng;

    #[test]
    fn captures_one_tensor_per_weight_layer() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = Network::new(vec![
            Layer::conv2d(&mut rng, 1, 2, 3, 1, 1),
            Layer::relu(),
            Layer::flatten(),
            Layer::linear(&mut rng, 2 * 4 * 4, 3),
        ]);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let captured = capture_weight_layer_inputs(&net, &x);
        assert_eq!(captured.len(), net.weight_layer_count());
        assert_eq!(captured[0].dims(), &[1, 1, 4, 4]);
        assert_eq!(captured[1].dims(), &[1, 2 * 4 * 4]);
    }

    #[test]
    fn capture_order_matches_visit_order_in_residual_blocks() {
        let mut rng = StdRng::seed_from_u64(1);
        let block = ResidualBlock::new(
            vec![
                Layer::conv2d(&mut rng, 2, 4, 3, 1, 1),
                Layer::relu(),
                Layer::conv2d(&mut rng, 4, 4, 3, 1, 1),
            ],
            Some(Layer::conv2d(&mut rng, 2, 4, 1, 1, 0)),
        );
        let net = Network::new(vec![Layer::Residual(block)]);
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let captured = capture_weight_layer_inputs(&net, &x);
        assert_eq!(captured.len(), 3);
        // Body conv 1 sees the block input (2 channels); body conv 2 sees 4
        // channels; the projection sees the block input again.
        assert_eq!(captured[0].dims()[1], 2);
        assert_eq!(captured[1].dims()[1], 4);
        assert_eq!(captured[2].dims()[1], 2);
    }

    #[test]
    fn captured_inputs_are_post_relu_nonnegative() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Network::new(vec![
            Layer::conv2d(&mut rng, 1, 3, 3, 1, 1),
            Layer::relu(),
            Layer::conv2d(&mut rng, 3, 3, 3, 1, 1),
        ]);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let captured = capture_weight_layer_inputs(&net, &x);
        assert!(captured[1].min() >= 0.0);
    }
}
