//! Layer-shape catalogs of the paper's benchmark networks at full size.
//!
//! The frame-rate model (Figs. 13–14) and the crossbar-count arithmetic
//! only need layer *geometry* — filter dimensions and output positions —
//! not trained weights, so the full-scale topologies are available here
//! even though the trainable models in `forms-dnn` are scaled down.

/// Geometry of one convolutional (or fully-connected) layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Layer label (e.g. `"conv3_2"`).
    pub name: &'static str,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (filters).
    pub out_channels: usize,
    /// Square kernel size (1 for fully-connected layers).
    pub kernel: usize,
    /// Output feature-map height = width (1 for fully-connected layers).
    pub out_hw: usize,
}

impl LayerShape {
    /// Rows of the lowered weight matrix (`in_channels · kernel²`).
    pub fn matrix_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Columns of the lowered weight matrix (filters).
    pub fn matrix_cols(&self) -> usize {
        self.out_channels
    }

    /// Matrix-vector activations per image (`out_hw²`).
    pub fn positions(&self) -> usize {
        self.out_hw * self.out_hw
    }

    /// Total weights.
    pub fn weights(&self) -> usize {
        self.matrix_rows() * self.matrix_cols()
    }

    /// Physical crossbars needed to map this layer at the given crossbar
    /// dimension and cells per weight.
    ///
    /// # Panics
    ///
    /// Panics if `crossbar_dim` or `cells_per_weight` is zero.
    pub fn crossbars(&self, crossbar_dim: usize, cells_per_weight: usize) -> usize {
        assert!(
            crossbar_dim > 0 && cells_per_weight > 0,
            "invalid mapping parameters"
        );
        self.matrix_rows().div_ceil(crossbar_dim)
            * (self.matrix_cols() * cells_per_weight).div_ceil(crossbar_dim)
    }
}

const fn conv(
    name: &'static str,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    out_hw: usize,
) -> LayerShape {
    LayerShape {
        name,
        in_channels,
        out_channels,
        kernel,
        out_hw,
    }
}

const fn fc(name: &'static str, in_features: usize, out_features: usize) -> LayerShape {
    LayerShape {
        name,
        in_channels: in_features,
        out_channels: out_features,
        kernel: 1,
        out_hw: 1,
    }
}

/// LeNet-5 on 28×28 MNIST.
pub fn lenet5_mnist() -> Vec<LayerShape> {
    vec![
        conv("conv1", 1, 6, 5, 28),
        conv("conv2", 6, 16, 5, 14),
        fc("fc1", 16 * 7 * 7, 120),
        fc("fc2", 120, 84),
        fc("fc3", 84, 10),
    ]
}

/// VGG-16 on 32×32 CIFAR.
pub fn vgg16_cifar() -> Vec<LayerShape> {
    vec![
        conv("conv1_1", 3, 64, 3, 32),
        conv("conv1_2", 64, 64, 3, 32),
        conv("conv2_1", 64, 128, 3, 16),
        conv("conv2_2", 128, 128, 3, 16),
        conv("conv3_1", 128, 256, 3, 8),
        conv("conv3_2", 256, 256, 3, 8),
        conv("conv3_3", 256, 256, 3, 8),
        conv("conv4_1", 256, 512, 3, 4),
        conv("conv4_2", 512, 512, 3, 4),
        conv("conv4_3", 512, 512, 3, 4),
        conv("conv5_1", 512, 512, 3, 2),
        conv("conv5_2", 512, 512, 3, 2),
        conv("conv5_3", 512, 512, 3, 2),
        fc("fc1", 512, 512),
        fc("fc2", 512, 512),
        fc("fc3", 512, 10),
    ]
}

/// ResNet-18 on 32×32 CIFAR (3×3 stem, 4 stages).
pub fn resnet18_cifar() -> Vec<LayerShape> {
    let mut layers = vec![conv("stem", 3, 64, 3, 32)];
    let stages: [(usize, usize, usize); 4] = [(64, 32, 2), (128, 16, 2), (256, 8, 2), (512, 4, 2)];
    let mut in_ch = 64;
    for &(ch, hw, blocks) in &stages {
        for b in 0..blocks {
            layers.push(conv("block_conv_a", in_ch, ch, 3, hw));
            layers.push(conv("block_conv_b", ch, ch, 3, hw));
            if b == 0 && in_ch != ch {
                layers.push(conv("proj", in_ch, ch, 1, hw));
            }
            in_ch = ch;
        }
    }
    layers.push(fc("fc", 512, 10));
    layers
}

/// ResNet-18 on 224×224 ImageNet (7×7 stem, 4 stages).
pub fn resnet18_imagenet() -> Vec<LayerShape> {
    let mut layers = vec![conv("stem", 3, 64, 7, 112)];
    let stages: [(usize, usize, usize); 4] = [(64, 56, 2), (128, 28, 2), (256, 14, 2), (512, 7, 2)];
    let mut in_ch = 64;
    for &(ch, hw, blocks) in &stages {
        for b in 0..blocks {
            layers.push(conv("block_conv_a", in_ch, ch, 3, hw));
            layers.push(conv("block_conv_b", ch, ch, 3, hw));
            if b == 0 && in_ch != ch {
                layers.push(conv("proj", in_ch, ch, 1, hw));
            }
            in_ch = ch;
        }
    }
    layers.push(fc("fc", 512, 1000));
    layers
}

/// ResNet-50 on 224×224 ImageNet (bottleneck blocks, stage plan
/// `[3, 4, 6, 3]`).
pub fn resnet50_imagenet() -> Vec<LayerShape> {
    let mut layers = vec![conv("stem", 3, 64, 7, 112)];
    let plan: [(usize, usize, usize); 4] = [(64, 56, 3), (128, 28, 4), (256, 14, 6), (512, 7, 3)];
    let mut in_ch = 64;
    for &(mid, hw, blocks) in &plan {
        let out = mid * 4;
        for b in 0..blocks {
            layers.push(conv("bneck_reduce", in_ch, mid, 1, hw));
            layers.push(conv("bneck_conv", mid, mid, 3, hw));
            layers.push(conv("bneck_expand", mid, out, 1, hw));
            if b == 0 {
                layers.push(conv("proj", in_ch, out, 1, hw));
            }
            in_ch = out;
        }
    }
    layers.push(fc("fc", 2048, 1000));
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_has_sixteen_weight_layers() {
        assert_eq!(vgg16_cifar().len(), 16);
    }

    #[test]
    fn vgg16_parameter_count_is_plausible() {
        // CIFAR VGG-16 variants have ~15M weights.
        let total: usize = vgg16_cifar().iter().map(LayerShape::weights).sum();
        assert!((14_000_000..16_000_000).contains(&total), "weights {total}");
    }

    #[test]
    fn resnet18_imagenet_parameter_count_is_plausible() {
        // ResNet-18 has ~11M conv+fc weights.
        let total: usize = resnet18_imagenet().iter().map(LayerShape::weights).sum();
        assert!((10_500_000..12_500_000).contains(&total), "weights {total}");
    }

    #[test]
    fn resnet50_parameter_count_is_plausible() {
        // ResNet-50 has ~25M weights (conv + fc).
        let total: usize = resnet50_imagenet().iter().map(LayerShape::weights).sum();
        assert!((22_000_000..27_000_000).contains(&total), "weights {total}");
    }

    #[test]
    fn crossbar_counting_matches_hand_arithmetic() {
        // conv2_1 of VGG: 64·9 = 576 rows, 128 filters × 4 cells = 512 cell
        // columns → ceil(576/128)=5 × ceil(512/128)=4 → 20 crossbars.
        let l = conv("conv2_1", 64, 128, 3, 16);
        assert_eq!(l.crossbars(128, 4), 20);
    }

    #[test]
    fn positions_track_feature_map() {
        assert_eq!(conv("x", 3, 64, 3, 32).positions(), 1024);
        assert_eq!(fc("y", 512, 10).positions(), 1);
    }

    #[test]
    fn lenet_layers() {
        let l = lenet5_mnist();
        assert_eq!(l.len(), 5);
        assert_eq!(l[0].matrix_rows(), 25);
    }
}
