//! Synthetic post-ReLU activation distributions.
//!
//! The premise of zero-skipping (paper §IV-B) is that "most inputs actually
//! have small values" [58]: after batch-norm and ReLU, activation
//! magnitudes concentrate near zero with a thin positive tail. The models
//! here capture that shape with tunable sharpness so the EIC experiments
//! (Fig. 8) can sweep it.

use forms_rng::Rng;
use forms_rng::{Distribution, Exp, Normal};

use forms_tensor::FixedSpec;

/// A generator of non-negative activation values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ActivationModel {
    /// |N(0, sigma)| — the classic post-ReLU shape for batch-normalized
    /// layers (half of a unit-variance Gaussian scaled by `sigma`).
    HalfNormal {
        /// Scale of the underlying Gaussian.
        sigma: f64,
    },
    /// Exponential(λ = 1/mean) — an even heavier concentration at zero.
    Exponential {
        /// Mean activation value.
        mean: f64,
    },
    /// Half-normal with an extra point mass at exactly zero, modelling the
    /// fraction of units a ReLU silences outright.
    SparseHalfNormal {
        /// Scale of the underlying Gaussian.
        sigma: f64,
        /// Probability that a value is exactly zero.
        zero_fraction: f64,
    },
}

impl ActivationModel {
    /// Half-normal with the given scale.
    pub fn half_normal(sigma: f64) -> Self {
        ActivationModel::HalfNormal { sigma }
    }

    /// Exponential with the given mean.
    pub fn exponential(mean: f64) -> Self {
        ActivationModel::Exponential { mean }
    }

    /// Sparse half-normal (the most realistic post-ReLU shape: ~50% exact
    /// zeros for a zero-centred pre-activation).
    ///
    /// # Panics
    ///
    /// Panics if `zero_fraction` is outside `[0, 1]`.
    pub fn sparse_half_normal(sigma: f64, zero_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&zero_fraction),
            "zero fraction must be in [0, 1]"
        );
        ActivationModel::SparseHalfNormal {
            sigma,
            zero_fraction,
        }
    }

    /// Draws one activation value (non-negative).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ActivationModel::HalfNormal { sigma } => Normal::new(0.0, sigma)
                .expect("valid sigma")
                .sample(rng)
                .abs(),
            ActivationModel::Exponential { mean } => {
                Exp::new(1.0 / mean).expect("valid mean").sample(rng)
            }
            ActivationModel::SparseHalfNormal {
                sigma,
                zero_fraction,
            } => {
                if rng.gen_bool(zero_fraction) {
                    0.0
                } else {
                    Normal::new(0.0, sigma)
                        .expect("valid sigma")
                        .sample(rng)
                        .abs()
                }
            }
        }
    }

    /// Draws `n` values.
    pub fn sample_values<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Draws `n` values and quantizes them to `bits`-bit fixed-point codes,
    /// scaling so the 99.9th-percentile magnitude maps near full scale (as
    /// a real layer's activation scale would be calibrated, without letting
    /// a single outlier squash the distribution).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `bits` is outside `1..=31`.
    pub fn sample_codes<R: Rng + ?Sized>(&self, rng: &mut R, n: usize, bits: u32) -> Vec<u32> {
        assert!(n > 0, "need at least one sample");
        let values = self.sample_values(rng, n);
        let as_f32: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        let p999 = forms_tensor::quantile(&as_f32, 0.999).max(f32::MIN_POSITIVE);
        let spec = FixedSpec::for_max_value(bits, p999);
        as_f32.iter().map(|&v| spec.quantize(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_rng::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn all_models_produce_nonnegative_values() {
        let mut rng = rng();
        for model in [
            ActivationModel::half_normal(1.0),
            ActivationModel::exponential(0.5),
            ActivationModel::sparse_half_normal(1.0, 0.5),
        ] {
            assert!(model.sample_values(&mut rng, 500).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn sparse_model_produces_exact_zeros() {
        let mut rng = rng();
        let vals = ActivationModel::sparse_half_normal(1.0, 0.5).sample_values(&mut rng, 2000);
        let zeros = vals.iter().filter(|&&v| v == 0.0).count();
        assert!((800..1200).contains(&zeros), "zeros {zeros}");
    }

    #[test]
    fn half_normal_mean_matches_theory() {
        // E|N(0,σ)| = σ·√(2/π).
        let mut rng = rng();
        let vals = ActivationModel::half_normal(2.0).sample_values(&mut rng, 20_000);
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let expected = 2.0 * (2.0 / std::f64::consts::PI).sqrt();
        assert!((mean - expected).abs() < 0.05, "mean {mean} vs {expected}");
    }

    #[test]
    fn codes_concentrate_in_low_bits() {
        // The whole point: most 16-bit codes of post-ReLU data have
        // many leading zeros.
        let mut rng = rng();
        let codes = ActivationModel::half_normal(1.0).sample_codes(&mut rng, 5000, 16);
        let avg_eff: f64 = codes
            .iter()
            .map(|&c| (32 - c.leading_zeros()) as f64)
            .sum::<f64>()
            / codes.len() as f64;
        assert!(avg_eff < 15.0, "average effective bits {avg_eff}");
        assert!(avg_eff > 6.0, "suspiciously small codes: {avg_eff}");
    }

    #[test]
    fn codes_fit_bit_width() {
        let mut rng = rng();
        for bits in [8u32, 12, 16] {
            let codes = ActivationModel::exponential(1.0).sample_codes(&mut rng, 500, bits);
            assert!(codes.iter().all(|&c| u64::from(c) < (1u64 << bits)));
        }
    }
}
