//! # forms-workloads
//!
//! Workload generation for the FORMS (ISCA 2021) reproduction: the
//! activation distributions, layer-shape catalogs and EIC measurements that
//! feed the evaluation benches (Figs. 8, 13, 14).
//!
//! The serving benches additionally draw open-loop request streams from
//! here: [`poisson_arrivals`] generates Poisson-process arrival times and
//! [`synth_request`] sizes activation payloads for a catalog layer shape.
//!
//! The paper measures effective input cycles on real CONV-layer
//! activations. Here those come from two sources: [`ActivationModel`]
//! synthesizes post-ReLU-shaped distributions (most values small — paper
//! ref. \[58\]), and [`capture_weight_layer_inputs`] records the genuine
//! activations feeding every conv/linear layer of a trained
//! `forms-dnn` network.
//!
//! # Example
//!
//! ```
//! use forms_workloads::ActivationModel;
//! use forms_rng::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let codes = ActivationModel::half_normal(0.1).sample_codes(&mut rng, 1024, 16);
//! // Post-ReLU activations are small: most codes have leading zeros.
//! let avg_bits: f64 =
//!     codes.iter().map(|&c| (32 - c.leading_zeros()) as f64).sum::<f64>() / 1024.0;
//! assert!(avg_bits < 16.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod activations;
mod capture;
mod shapes;
mod sweep;
mod trace;

pub use activations::ActivationModel;
pub use capture::capture_weight_layer_inputs;
pub use shapes::{
    lenet5_mnist, resnet18_cifar, resnet18_imagenet, resnet50_imagenet, vgg16_cifar, LayerShape,
};
pub use sweep::{grid2, grid3, sweep2, Axis};
pub use trace::{poisson_arrivals, synth_request, TraceSpec};
