//! End-to-end ISAAC accelerator simulation: a whole DNN executed through
//! offset-encoded crossbars — the apples-to-apples counterpart of
//! `forms_arch::Accelerator`, used by the comparative experiments.
//!
//! Unlike FORMS, ISAAC needs no polarization: any trained network maps
//! directly. The price is the per-input-bit ones-counting and offset
//! subtraction, which the statistics expose.

use forms_dnn::{Layer, Network, WeightLayerMut};
use forms_tensor::{im2col, Conv2dGeometry, FixedSpec, QuantizedTensor, Tensor};

use crate::isaac::{IsaacLayer, IsaacStats};

/// Configuration of the ISAAC executor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IsaacConfig {
    /// Crossbar dimension (128 in the paper).
    pub crossbar_dim: usize,
    /// ReRAM cell spec.
    pub cell: forms_reram::CellSpec,
    /// Weight bits (offset-encoded).
    pub weight_bits: u32,
    /// Activation bits.
    pub input_bits: u32,
}

impl IsaacConfig {
    /// The paper's ISAAC configuration (128×128, 2-bit cells, 16-bit
    /// inputs, 8-bit weights for the quantized variant).
    pub fn paper() -> Self {
        Self {
            crossbar_dim: 128,
            cell: forms_reram::CellSpec::paper_2bit(),
            weight_bits: 8,
            input_bits: 16,
        }
    }
}

/// A DNN mapped onto offset-encoded ISAAC crossbars.
#[derive(Clone, Debug)]
pub struct IsaacAccelerator {
    net: Network,
    mapped: Vec<IsaacLayer>,
    config: IsaacConfig,
    stats: IsaacStats,
}

impl IsaacAccelerator {
    /// Maps any trained network — signed weights are fine.
    ///
    /// # Panics
    ///
    /// Panics if a weight layer is entirely zero.
    pub fn map_network(net: &Network, config: IsaacConfig) -> Self {
        let mut net = net.clone();
        let mut mapped = Vec::new();
        net.for_each_weight_layer(&mut |wl| {
            let m = match wl {
                WeightLayerMut::Conv(c) => c.weight_matrix(),
                WeightLayerMut::Linear(l) => l.weight_matrix(),
            };
            mapped.push(IsaacLayer::map_with(
                &m,
                config.weight_bits,
                config.input_bits,
                config.crossbar_dim,
                config.cell,
            ));
        });
        Self {
            net,
            mapped,
            config,
            stats: IsaacStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IsaacConfig {
        &self.config
    }

    /// Total crossbars used.
    pub fn total_crossbars(&self) -> usize {
        self.mapped.iter().map(IsaacLayer::crossbar_count).sum()
    }

    /// Accumulated statistics since the last reset.
    pub fn stats(&self) -> IsaacStats {
        self.stats
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = IsaacStats::default();
    }

    fn merge(&mut self, s: IsaacStats) {
        self.stats.cycles += s.cycles;
        self.stats.adc_conversions += s.adc_conversions;
        self.stats.ones_counted += s.ones_counted;
        self.stats.offset_subtractions += s.offset_subtractions;
    }

    /// Runs inference on a `[N, ...]` batch through the offset-encoded
    /// analog path.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut layers = std::mem::take(&mut self.net).into_layers();
        let mut widx = 0;
        let mut y = x.clone();
        for layer in &mut layers {
            y = self.forward_layer(layer, &y, &mut widx);
        }
        self.net = Network::new(layers);
        y
    }

    fn forward_layer(&mut self, layer: &mut Layer, x: &Tensor, widx: &mut usize) -> Tensor {
        match layer {
            Layer::Conv2d(conv) => {
                let idx = *widx;
                *widx += 1;
                let geom = Conv2dGeometry::new(
                    conv.in_channels(),
                    x.dims()[2],
                    x.dims()[3],
                    conv.kernel(),
                    conv.kernel(),
                    conv.stride(),
                    conv.padding(),
                );
                let bias = conv.bias().value.clone();
                self.conv_forward(idx, x, &geom, &bias)
            }
            Layer::Linear(lin) => {
                let idx = *widx;
                *widx += 1;
                let bias = lin.bias().value.clone();
                self.linear_forward(idx, x, &bias)
            }
            Layer::Residual(block) => {
                let mut y = x.clone();
                for l in block.body_mut() {
                    y = self.forward_layer(l, &y, widx);
                }
                let shortcut = match block.projection_mut() {
                    Some(p) => self.forward_layer(p, x, widx),
                    None => x.clone(),
                };
                y.zip(&shortcut, |a, b| (a + b).max(0.0))
            }
            other => other.forward(x, false),
        }
    }

    fn quantize(&self, t: &Tensor) -> QuantizedTensor {
        let spec = FixedSpec::for_max_value(self.config.input_bits, t.max());
        QuantizedTensor::quantize_with(t, spec)
    }

    fn conv_forward(
        &mut self,
        idx: usize,
        x: &Tensor,
        geom: &Conv2dGeometry,
        bias: &Tensor,
    ) -> Tensor {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let f = bias.len();
        let positions = geom.out_positions();
        let mut out = Tensor::zeros(&[n, f, geom.out_h, geom.out_w]);
        for s in 0..n {
            let sample = Tensor::from_vec(
                x.data()[s * c * h * w..(s + 1) * c * h * w].to_vec(),
                &[c, h, w],
            );
            let cols = im2col(&sample, geom);
            let q = self.quantize(&cols);
            let patch = geom.patch_len();
            for p in 0..positions {
                let codes: Vec<u32> = (0..patch).map(|r| q.codes()[r * positions + p]).collect();
                let (vals, stats) = self.mapped[idx].matvec(&codes, q.spec().scale());
                self.merge(stats);
                for (fi, v) in vals.iter().enumerate() {
                    out.data_mut()[(s * f + fi) * positions + p] = v + bias.data()[fi];
                }
            }
        }
        out
    }

    fn linear_forward(&mut self, idx: usize, x: &Tensor, bias: &Tensor) -> Tensor {
        let (n, in_features) = (x.dims()[0], x.dims()[1]);
        let o = bias.len();
        let mut out = Tensor::zeros(&[n, o]);
        for s in 0..n {
            let row = Tensor::from_vec(
                x.data()[s * in_features..(s + 1) * in_features].to_vec(),
                &[in_features],
            );
            let q = self.quantize(&row);
            let (vals, stats) = self.mapped[idx].matvec(q.codes(), q.spec().scale());
            self.merge(stats);
            for (j, v) in vals.iter().enumerate() {
                out.data_mut()[s * o + j] = v + bias.data()[j];
            }
        }
        out
    }

    /// Classification accuracy of the mapped model on a dataset.
    pub fn evaluate(&mut self, data: &forms_dnn::data::Dataset, batch_size: usize) -> f32 {
        assert!(batch_size > 0, "batch size must be positive");
        if data.is_empty() {
            return 0.0;
        }
        let mut correct = 0.0;
        for (x, labels) in data.batches(batch_size) {
            let logits = self.forward(&x);
            correct += forms_dnn::accuracy(&logits, labels) * labels.len() as f32;
        }
        correct / data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_dnn::Layer;
    use forms_rng::StdRng;

    fn small_config() -> IsaacConfig {
        IsaacConfig {
            crossbar_dim: 16,
            cell: forms_reram::CellSpec::paper_2bit(),
            weight_bits: 8,
            input_bits: 12,
        }
    }

    #[test]
    fn unpolarized_network_runs_and_tracks_reference() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Network::new(vec![
            Layer::conv2d(&mut rng, 1, 4, 3, 1, 1),
            Layer::relu(),
            Layer::max_pool(2),
            Layer::flatten(),
            Layer::linear(&mut rng, 4 * 4 * 4, 3),
        ]);
        let mut isaac = IsaacAccelerator::map_network(&net, small_config());
        let x = Tensor::from_fn(&[2, 1, 8, 8], |i| (i % 7) as f32 / 8.0);
        let digital = net.clone().forward(&x);
        let analog = isaac.forward(&x);
        let err = analog.max_abs_diff(&digital) / digital.abs_max().max(1e-6);
        assert!(err < 0.05, "relative error {err}");
        assert!(isaac.stats().offset_subtractions > 0);
    }

    #[test]
    fn stats_reset() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Network::new(vec![Layer::flatten(), Layer::linear(&mut rng, 16, 2)]);
        let mut isaac = IsaacAccelerator::map_network(&net, small_config());
        isaac.forward(&Tensor::ones(&[1, 1, 4, 4]));
        assert!(isaac.stats().cycles > 0);
        isaac.reset_stats();
        assert_eq!(isaac.stats(), IsaacStats::default());
    }

    #[test]
    fn residual_network_runs() {
        let mut rng = StdRng::seed_from_u64(6);
        let block = forms_dnn::ResidualBlock::new(
            vec![
                Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
                Layer::relu(),
                Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
            ],
            None,
        );
        let net = Network::new(vec![
            Layer::conv2d(&mut rng, 1, 2, 3, 1, 1),
            Layer::relu(),
            Layer::Residual(block),
            Layer::flatten(),
            Layer::linear(&mut rng, 2 * 4 * 4, 2),
        ]);
        let mut isaac = IsaacAccelerator::map_network(&net, small_config());
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32 / 16.0);
        let digital = net.clone().forward(&x);
        let analog = isaac.forward(&x);
        let err = analog.max_abs_diff(&digital) / digital.abs_max().max(1e-6);
        assert!(err < 0.08, "relative error {err}");
    }
}
