//! End-to-end ISAAC accelerator simulation: a whole DNN executed through
//! offset-encoded crossbars — the apples-to-apples counterpart of
//! `forms_arch::Accelerator`, used by the comparative experiments.
//!
//! Both accelerators drive the same shared execution core
//! ([`forms_exec::Executor`]): the network walk, im2col, activation
//! quantization, per-layer statistics and parallel batch execution are
//! identical code, so any measured difference between the designs comes
//! from the crossbar engines themselves, not the harness.
//!
//! Unlike FORMS, ISAAC needs no polarization: any trained network maps
//! directly. The price is the per-input-bit ones-counting and offset
//! subtraction, which the statistics expose.

use forms_exec::{
    CrossbarEngine, EngineHealth, ExecError, Executor, FaultCampaign, FaultReport, FaultableEngine,
    LayerPerf,
};
use forms_hwmodel::{Activity, DynamicActivity};
use forms_tensor::Tensor;

use crate::isaac::{IsaacLayer, IsaacScratch, IsaacStats};

/// Configuration of the ISAAC executor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IsaacConfig {
    /// Crossbar dimension (128 in the paper).
    pub crossbar_dim: usize,
    /// ReRAM cell spec.
    pub cell: forms_reram::CellSpec,
    /// Weight bits (offset-encoded).
    pub weight_bits: u32,
    /// Activation bits.
    pub input_bits: u32,
}

impl IsaacConfig {
    /// The paper's ISAAC configuration (128×128, 2-bit cells, 16-bit
    /// inputs, 8-bit weights for the quantized variant).
    pub fn paper() -> Self {
        Self {
            crossbar_dim: 128,
            cell: forms_reram::CellSpec::paper_2bit(),
            weight_bits: 8,
            input_bits: 16,
        }
    }

    /// ReRAM cells per offset-encoded weight (bit slices).
    pub fn cells_per_weight(&self) -> usize {
        self.weight_bits.div_ceil(self.cell.bits()) as usize
    }
}

impl CrossbarEngine for IsaacLayer {
    type Config = IsaacConfig;
    type Stats = IsaacStats;
    type Scratch = IsaacScratch;

    fn map_matrix(matrix: &Tensor, config: &IsaacConfig) -> Result<Self, ExecError> {
        IsaacLayer::map_with(
            matrix,
            config.weight_bits,
            config.input_bits,
            config.crossbar_dim,
            config.cell,
        )
    }

    fn output_len(&self) -> usize {
        IsaacLayer::output_len(self)
    }

    fn matvec_into(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        scratch: &mut IsaacScratch,
        out: &mut [f32],
    ) -> IsaacStats {
        IsaacLayer::matvec_into(self, input_codes, input_scale, scratch, out)
    }

    fn matmul_into(
        &self,
        batch_codes: &[u32],
        scales: &[f32],
        scratch: &mut IsaacScratch,
        outs: &mut [f32],
    ) -> IsaacStats {
        IsaacLayer::matmul_into(self, batch_codes, scales, scratch, outs)
    }

    fn crossbar_count(&self) -> usize {
        IsaacLayer::crossbar_count(self)
    }

    fn mean_input_cycles(stats: &IsaacStats) -> Option<f64> {
        // No zero-skipping: always `input_bits` cycles per row block, but
        // derive it from the measurements for symmetry with FORMS.
        (stats.row_blocks > 0).then(|| (stats.cycles as f64 / stats.row_blocks as f64).max(1.0))
    }

    fn max_input_cycles(config: &IsaacConfig) -> f64 {
        f64::from(config.input_bits)
    }

    fn precision_of(config: &IsaacConfig) -> forms_exec::LayerPrecision {
        forms_exec::LayerPrecision::new(config.weight_bits, config.input_bits)
    }

    fn with_precision(config: &IsaacConfig, precision: forms_exec::LayerPrecision) -> IsaacConfig {
        IsaacConfig {
            weight_bits: precision.weight_bits,
            input_bits: precision.input_bits,
            ..*config
        }
    }

    fn health(&self) -> EngineHealth {
        let (faulted_cells, drifted_cells, total_cells) = self.fault_counts();
        EngineHealth {
            faulted_cells,
            drifted_cells,
            total_cells,
        }
    }

    fn output_ceiling(&self) -> Option<f64> {
        Some(self.nominal_ceiling())
    }
}

impl FaultableEngine for IsaacLayer {
    fn inject_faults(&mut self, campaign: &FaultCampaign, salt: u64) -> FaultReport {
        IsaacLayer::inject_faults(self, campaign, salt)
    }
}

/// [`IsaacStats`] paired with its [`IsaacConfig`], convertible into the
/// energy model's [`Activity`] record (the ISAAC counterpart of
/// `forms_arch::FormsActivity`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IsaacActivity {
    /// The measured statistics.
    pub stats: IsaacStats,
    /// The configuration they were measured under.
    pub config: IsaacConfig,
}

impl DynamicActivity for IsaacActivity {
    fn activity(&self) -> Activity {
        Activity {
            shift_cycles: self.stats.cycles,
            adc_conversions: self.stats.adc_conversions,
            // ISAAC activates every row of a crossbar block each cycle.
            rows_per_cycle: self.config.crossbar_dim as u64,
            cells_per_conversion: self.config.cells_per_weight() as u64,
            // One shift-&-add per conversion plus one per offset
            // subtraction (the correction is extra digital work).
            shift_add_ops: self.stats.adc_conversions + self.stats.offset_subtractions,
        }
    }
}

/// A DNN mapped onto offset-encoded ISAAC crossbars.
///
/// A thin wrapper over the shared [`Executor`] driving [`IsaacLayer`]
/// engines — same network walk and quantization as the FORMS accelerator.
#[derive(Clone, Debug)]
pub struct IsaacAccelerator {
    exec: Executor<IsaacLayer>,
}

impl IsaacAccelerator {
    /// Maps any trained network — signed weights are fine.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if a weight layer is entirely zero (or the
    /// configuration is unusable).
    pub fn map_network(net: &forms_dnn::Network, config: IsaacConfig) -> Result<Self, ExecError> {
        Ok(Self {
            exec: Executor::map_network(net, &config, config.input_bits)?,
        })
    }

    /// Maps a network under a per-layer [`forms_exec::PrecisionPlan`]:
    /// weight layer `i` is offset-encoded at `plan.layer(i).weight_bits`
    /// and its activations quantized at `plan.layer(i).input_bits`. A
    /// uniform plan at the configuration's own widths is bitwise identical
    /// to [`map_network`](Self::map_network).
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if a layer cannot be mapped — note that
    /// offset encoding requires `weight_bits >= 2` for every layer.
    ///
    /// # Panics
    ///
    /// Panics if a per-layer plan's length differs from the weight-layer
    /// count.
    pub fn with_plan(
        net: &forms_dnn::Network,
        config: IsaacConfig,
        plan: forms_exec::PrecisionPlan,
    ) -> Result<Self, ExecError> {
        Ok(Self {
            exec: Executor::with_plan(net, &config, plan)?,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &IsaacConfig {
        self.exec.engine_config()
    }

    /// The precision plan every layer was mapped and quantized under.
    pub fn plan(&self) -> &forms_exec::PrecisionPlan {
        self.exec.plan()
    }

    /// The configuration each weight layer was actually mapped with (the
    /// plan-specialized per-layer view of the base configuration).
    pub fn layer_configs(&self) -> &[IsaacConfig] {
        self.exec.layer_configs()
    }

    /// The mapped weight layers, in visit order.
    pub fn mapped_layers(&self) -> &[IsaacLayer] {
        self.exec.engines()
    }

    /// Mutable access to the mapped layers (variation injection).
    pub fn mapped_layers_mut(&mut self) -> &mut [IsaacLayer] {
        self.exec.engines_mut()
    }

    /// Total crossbars used.
    pub fn total_crossbars(&self) -> usize {
        self.exec.total_crossbars()
    }

    /// Accumulated statistics since the last reset.
    pub fn stats(&self) -> IsaacStats {
        self.exec.stats()
    }

    /// Accumulated statistics per weight layer (visit order) since the
    /// last reset.
    pub fn layer_stats(&self) -> &[IsaacStats] {
        self.exec.layer_stats()
    }

    /// Matrix-vector activations per weight layer since the last reset.
    pub fn layer_mvms(&self) -> &[u64] {
        self.exec.layer_mvms()
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.exec.reset_stats();
    }

    /// Per-layer inputs of the frame-rate model from the inferences run
    /// since the last reset (see `forms_arch::FpsModel`).
    ///
    /// # Panics
    ///
    /// Panics if no inference has been run since the last reset or
    /// `images` is zero.
    pub fn layer_perfs(&self, images: usize) -> Vec<LayerPerf> {
        self.exec.layer_perfs(images)
    }

    /// Runs inference on a `[N, ...]` batch through the offset-encoded
    /// analog path.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.exec.forward(x)
    }

    /// [`forward`](Self::forward) through the batched hot path: each
    /// weight layer lowers the whole batch and runs as one
    /// [`IsaacLayer::matmul_into`](crate::IsaacLayer::matmul_into) call.
    /// Bitwise identical to [`forward`](Self::forward).
    pub fn forward_batched(&mut self, x: &Tensor) -> Tensor {
        self.exec.forward_batched(x)
    }

    /// Runs inference with samples distributed over `workers` threads;
    /// outputs are bitwise identical to [`forward`](Self::forward) and the
    /// statistics of all workers are merged.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn forward_parallel(&mut self, x: &Tensor, workers: usize) -> Tensor {
        self.exec.forward_parallel(x, workers)
    }

    /// Classification accuracy of the mapped model on a dataset.
    pub fn evaluate(&mut self, data: &forms_dnn::data::Dataset, batch_size: usize) -> f32 {
        self.exec.evaluate(data, batch_size)
    }

    /// [`evaluate`](Self::evaluate) with each batch distributed over
    /// `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` or `workers` is zero.
    pub fn evaluate_parallel(
        &mut self,
        data: &forms_dnn::data::Dataset,
        batch_size: usize,
        workers: usize,
    ) -> f32 {
        self.exec.evaluate_parallel(data, batch_size, workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_dnn::{Layer, Network};
    use forms_rng::StdRng;

    fn small_config() -> IsaacConfig {
        IsaacConfig {
            crossbar_dim: 16,
            cell: forms_reram::CellSpec::paper_2bit(),
            weight_bits: 8,
            input_bits: 12,
        }
    }

    fn small_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::conv2d(&mut rng, 1, 4, 3, 1, 1),
            Layer::relu(),
            Layer::max_pool(2),
            Layer::flatten(),
            Layer::linear(&mut rng, 4 * 4 * 4, 3),
        ])
    }

    #[test]
    fn unpolarized_network_runs_and_tracks_reference() {
        let net = small_net(4);
        let mut isaac = IsaacAccelerator::map_network(&net, small_config()).unwrap();
        let x = Tensor::from_fn(&[2, 1, 8, 8], |i| (i % 7) as f32 / 8.0);
        let digital = net.clone().forward(&x);
        let analog = isaac.forward(&x);
        let err = analog.max_abs_diff(&digital) / digital.abs_max().max(1e-6);
        assert!(err < 0.05, "relative error {err}");
        assert!(isaac.stats().offset_subtractions > 0);
    }

    #[test]
    fn stats_reset() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Network::new(vec![Layer::flatten(), Layer::linear(&mut rng, 16, 2)]);
        let mut isaac = IsaacAccelerator::map_network(&net, small_config()).unwrap();
        isaac.forward(&Tensor::ones(&[1, 1, 4, 4]));
        assert!(isaac.stats().cycles > 0);
        isaac.reset_stats();
        assert_eq!(isaac.stats(), IsaacStats::default());
    }

    #[test]
    fn residual_network_runs() {
        let mut rng = StdRng::seed_from_u64(6);
        let block = forms_dnn::ResidualBlock::new(
            vec![
                Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
                Layer::relu(),
                Layer::conv2d(&mut rng, 2, 2, 3, 1, 1),
            ],
            None,
        );
        let net = Network::new(vec![
            Layer::conv2d(&mut rng, 1, 2, 3, 1, 1),
            Layer::relu(),
            Layer::Residual(block),
            Layer::flatten(),
            Layer::linear(&mut rng, 2 * 4 * 4, 2),
        ]);
        let mut isaac = IsaacAccelerator::map_network(&net, small_config()).unwrap();
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32 / 16.0);
        let digital = net.clone().forward(&x);
        let analog = isaac.forward(&x);
        let err = analog.max_abs_diff(&digital) / digital.abs_max().max(1e-6);
        assert!(err < 0.08, "relative error {err}");
    }

    #[test]
    fn layer_stats_partition_the_totals() {
        let net = small_net(7);
        let mut isaac = IsaacAccelerator::map_network(&net, small_config()).unwrap();
        let x = Tensor::from_fn(&[2, 1, 8, 8], |i| (i % 5) as f32 / 8.0);
        isaac.forward(&x);
        let per_layer = isaac.layer_stats();
        assert_eq!(per_layer.len(), 2); // conv + linear
        let mut sum = IsaacStats::default();
        for s in per_layer {
            forms_exec::Merge::merge(&mut sum, *s);
        }
        assert_eq!(sum, isaac.stats());
        // Conv: 64 positions × 2 images; linear: 1 × 2 images.
        assert_eq!(isaac.layer_mvms(), &[128, 2]);
    }

    #[test]
    fn layer_perfs_report_full_input_cycles() {
        let net = small_net(8);
        let mut isaac = IsaacAccelerator::map_network(&net, small_config()).unwrap();
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 5) as f32 / 8.0);
        isaac.forward(&x);
        let perfs = isaac.layer_perfs(1);
        // No zero-skipping: mean cycles per block is exactly input_bits.
        assert!(perfs
            .iter()
            .all(|p| (p.input_cycles - 12.0).abs() < 1e-9 && p.crossbars > 0));
    }

    #[test]
    fn parallel_forward_matches_serial() {
        let net = small_net(9);
        let mut serial = IsaacAccelerator::map_network(&net, small_config()).unwrap();
        let mut parallel = serial.clone();
        let x = Tensor::from_fn(&[5, 1, 8, 8], |i| (i % 9) as f32 / 9.0);
        let ys = serial.forward(&x);
        let yp = parallel.forward_parallel(&x, 3);
        assert_eq!(ys, yp, "parallel output must be bitwise identical");
        assert_eq!(serial.stats(), parallel.stats());
        assert_eq!(serial.layer_stats(), parallel.layer_stats());
        assert_eq!(serial.layer_mvms(), parallel.layer_mvms());
    }

    #[test]
    fn parallel_evaluate_matches_serial() {
        let mut rng = StdRng::seed_from_u64(10);
        let spec = forms_dnn::data::SyntheticSpec {
            classes: 3,
            channels: 1,
            height: 8,
            width: 8,
            train_per_class: 2,
            test_per_class: 4,
            noise: 0.1,
        };
        let (_, test) = spec.generate(&mut rng);
        let net = small_net(11);
        let mut serial = IsaacAccelerator::map_network(&net, small_config()).unwrap();
        let mut parallel = serial.clone();
        let a = serial.evaluate(&test, 4);
        let b = parallel.evaluate_parallel(&test, 4, 3);
        assert_eq!(a, b);
        assert_eq!(serial.stats(), parallel.stats());
    }

    #[test]
    fn all_zero_layer_surfaces_as_error() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut net = Network::new(vec![Layer::flatten(), Layer::linear(&mut rng, 16, 2)]);
        net.for_each_weight_layer(&mut |wl| {
            if let forms_dnn::WeightLayerMut::Linear(l) = wl {
                let z = Tensor::zeros(l.weight_matrix().dims());
                l.set_weight_matrix(&z);
            }
        });
        let err = IsaacAccelerator::map_network(&net, small_config()).unwrap_err();
        assert!(matches!(err, ExecError::AllZero));
    }

    #[test]
    fn isaac_activity_matches_manual_record() {
        let config = small_config();
        let stats = IsaacStats {
            cycles: 120,
            adc_conversions: 480,
            ones_counted: 300,
            offset_subtractions: 300,
            row_blocks: 10,
        };
        let a = IsaacActivity { stats, config }.activity();
        assert_eq!(a.shift_cycles, 120);
        assert_eq!(a.adc_conversions, 480);
        assert_eq!(a.rows_per_cycle, 16);
        assert_eq!(a.cells_per_conversion, 4);
        assert_eq!(a.shift_add_ops, 480 + 300);
    }
}
