//! PUMA comparator constants (paper refs. \[21\] and Table V / Figs. 13–14).

/// PUMA's efficiency relative to ISAAC, carried as published constants
/// (Table V): the paper treats PUMA as a coarse-grained ISAAC-class design
/// whose pruning/quantization benefits mirror ISAAC's, scaled by its
/// relative efficiency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PumaModel {
    /// GOPs/s·mm² relative to ISAAC (Table V: 0.70).
    pub area_efficiency: f64,
    /// GOPs/W relative to ISAAC (Table V: 0.79).
    pub power_efficiency: f64,
    /// Frame rate relative to ISAAC for the same model. The paper's
    /// Figs. 13–14 show PUMA tracking ISAAC with ~0.7× bars (its pruning
    /// speedups of 5.3–142× against ISAAC's 7.5–200.8× ≈ the same 0.707
    /// ratio), so the area-efficiency constant doubles as the fps factor.
    pub fps_factor: f64,
}

impl Default for PumaModel {
    fn default() -> Self {
        Self {
            area_efficiency: 0.70,
            power_efficiency: 0.79,
            fps_factor: 0.707,
        }
    }
}

impl PumaModel {
    /// PUMA's frame rate given ISAAC's frame rate on the same model.
    pub fn fps_from_isaac(&self, isaac_fps: f64) -> f64 {
        isaac_fps * self.fps_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puma_tracks_isaac_scaled() {
        let p = PumaModel::default();
        assert!((p.fps_from_isaac(100.0) - 70.7).abs() < 1e-9);
    }

    #[test]
    fn ratio_matches_published_speedup_band() {
        // 5.3/7.5 ≈ 0.707 and 142/200.8 ≈ 0.707 — the paper's endpoints.
        let p = PumaModel::default();
        assert!((5.3 / 7.5 - p.fps_factor).abs() < 0.01);
        assert!((142.0 / 200.8 - p.fps_factor).abs() < 0.01);
    }
}
