//! The ISAAC offset-encoding crossbar model (paper §II-B and ref. \[18\]).

use forms_exec::{ExecError, Merge};
use forms_reram::{
    for_each_set_bit, pack_bit_planes, pack_tile_bit_planes, plane_is_zero, plane_ones, Adc,
    BitSlicer, CellSpec, Crossbar, FaultCampaign, FaultReport,
};
use forms_tensor::Tensor;

/// Samples per tile of the blocked [`IsaacLayer::matmul_into`] kernel —
/// kept equal to `forms_arch::MATMUL_TILE` so FORMS-vs-ISAAC batch
/// throughput comparisons use the same blocking.
const MATMUL_TILE: usize = 32;

/// Statistics of one ISAAC matrix-vector multiplication.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IsaacStats {
    /// Input shift cycles spent (always `input_bits` per row block — ISAAC
    /// has no zero-skipping).
    pub cycles: u64,
    /// ADC conversions performed.
    pub adc_conversions: u64,
    /// Input `1`s counted by the offset-correction circuitry.
    pub ones_counted: u64,
    /// Offset subtractions performed (one per counted `1`, as the paper
    /// describes the overhead).
    pub offset_subtractions: u64,
    /// Row-block activations (denominator of the mean-cycles-per-block
    /// figure the frame-rate model consumes).
    pub row_blocks: u64,
}

impl Merge for IsaacStats {
    fn merge(&mut self, other: Self) {
        self.cycles += other.cycles;
        self.adc_conversions += other.adc_conversions;
        self.ones_counted += other.ones_counted;
        self.offset_subtractions += other.offset_subtractions;
        self.row_blocks += other.row_blocks;
    }
}

/// Reusable working memory of one [`IsaacLayer`] MVM — the ISAAC mirror of
/// `forms_arch::MvmScratch`, so the FORMS-vs-ISAAC throughput comparison
/// stays apples-to-apples (both hot paths are packed and allocation-free).
#[derive(Clone, Debug, Default)]
pub struct IsaacScratch {
    /// Gathered input codes of the current row block.
    codes: Vec<u32>,
    /// Packed bit planes of the block's codes, LSB plane first.
    planes: Vec<u64>,
    /// Raw column currents, plane-major over all mapped cell columns.
    currents: Vec<f64>,
    /// Per-slice shift-&-add accumulators of the current weight column.
    slice_acc: Vec<u64>,
    /// Signed digital accumulators, one per compact weight column.
    accs: Vec<i64>,
    /// Dequantized cell values of the current block window, row-major over
    /// all mapped cell columns — the division by the conductance step is
    /// paid once per cell instead of once per cell per input bit plane.
    cell_vals: Vec<f64>,
    /// Batched path: gathered block codes of one tile of samples,
    /// sample-major.
    tile_codes: Vec<u32>,
    /// Batched path: packed bit planes of the whole tile.
    tile_planes: Vec<u64>,
    /// Batched fast path: integer image of the block window.
    icell: Vec<u16>,
    /// Batched fast path: integer column currents of one bit plane.
    icurr: Vec<u32>,
    /// Batched fast path: per-cell-column shift-&-add accumulators of one
    /// sample.
    cell_acc: Vec<u64>,
}

/// A signed weight matrix mapped with ISAAC's offset encoding.
///
/// Every quantized weight code `k ∈ [−(2^(b−1)−1), 2^(b−1)−1]` is stored as
/// the non-negative `k + 2^(b−1)`; the analog result is corrected digitally
/// by subtracting `2^(b−1) × (number of 1 input bits)` per bit plane.
#[derive(Clone, Debug)]
pub struct IsaacLayer {
    crossbar_dim: usize,
    input_bits: u32,
    bias: u64,
    step: f32,
    row_index: Vec<usize>,
    col_index: Vec<usize>,
    orig_rows: usize,
    orig_cols: usize,
    crossbars: Vec<Crossbar>,
    xb_cols: usize,
    adc: Adc,
    slicer: BitSlicer,
    /// Pristine nominal output ceiling: `max_col Σ|k| × max_input × step`
    /// — the offset correction cancels the bias exactly on clean arrays,
    /// so no clean output can exceed this (per unit input scale).
    ceiling: f64,
    /// Cumulative stuck cells injected through fault campaigns.
    faulted_cells: u64,
    /// Cumulative drifted cells injected likewise.
    drifted_cells: u64,
}

impl IsaacLayer {
    /// Maps a signed matrix with the paper's 128×128 / 2-bit-cell
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if `matrix` is not rank-2 or entirely zero.
    pub fn map(matrix: &Tensor, weight_bits: u32, input_bits: u32) -> Result<Self, ExecError> {
        Self::map_with(matrix, weight_bits, input_bits, 128, CellSpec::paper_2bit())
    }

    /// Maps with explicit crossbar dimension and cell spec (small arrays
    /// for tests).
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if `matrix` is not rank-2 or entirely
    /// zero, or if `weight_bits < 2` (the offset encoding needs a sign
    /// bit's worth of bias).
    pub fn map_with(
        matrix: &Tensor,
        weight_bits: u32,
        input_bits: u32,
        crossbar_dim: usize,
        cell: CellSpec,
    ) -> Result<Self, ExecError> {
        if matrix.shape().rank() != 2 {
            return Err(ExecError::NotMatrix {
                rank: matrix.shape().rank(),
            });
        }
        if weight_bits < 2 {
            return Err(ExecError::UnsupportedConfig {
                reason: "offset encoding needs at least 2 weight bits",
            });
        }
        let (rows, cols) = (matrix.dims()[0], matrix.dims()[1]);
        let nz = |r: usize, c: usize| matrix.data()[r * cols + c] != 0.0;
        let row_index: Vec<usize> = (0..rows).filter(|&r| (0..cols).any(|c| nz(r, c))).collect();
        let col_index: Vec<usize> = (0..cols).filter(|&c| (0..rows).any(|r| nz(r, c))).collect();
        if row_index.is_empty() || col_index.is_empty() {
            return Err(ExecError::AllZero);
        }

        let levels = ((1u64 << (weight_bits - 1)) - 1) as f32;
        let abs_max = matrix.abs_max();
        let step = if abs_max > 0.0 { abs_max / levels } else { 1.0 };
        let bias = 1u64 << (weight_bits - 1);
        let slicer = BitSlicer::new(weight_bits, cell.bits());
        let cpw = slicer.cells_per_weight();

        let xb_rows = row_index.len().div_ceil(crossbar_dim);
        let xb_cols = (col_index.len() * cpw).div_ceil(crossbar_dim);
        let mut crossbars =
            vec![Crossbar::new(crossbar_dim, crossbar_dim, cell); xb_rows * xb_cols];

        let mut col_abs_sums = vec![0u64; col_index.len()];
        for (ci, &c) in col_index.iter().enumerate() {
            for (ri, &r) in row_index.iter().enumerate() {
                let w = matrix.data()[r * cols + c];
                let k = (w / step).round().clamp(-levels, levels) as i64;
                col_abs_sums[ci] += k.unsigned_abs();
                let encoded = (k + bias as i64) as u32;
                let (xr, row_in_xb) = (ri / crossbar_dim, ri % crossbar_dim);
                for (slice, &s) in slicer.slice(encoded).iter().enumerate() {
                    let cell_col = ci * cpw + slice;
                    let (xc, col_in_xb) = (cell_col / crossbar_dim, cell_col % crossbar_dim);
                    crossbars[xr * xb_cols + xc].program_cell(row_in_xb, col_in_xb, s);
                }
            }
        }

        let max_input = ((1u64 << input_bits) - 1) as f64;
        let ceiling = col_abs_sums
            .iter()
            .map(|&s| s as f64 * max_input * f64::from(step))
            .fold(0.0f64, f64::max);

        let adc = Adc::ideal_for(crossbar_dim, &cell);
        Ok(Self {
            crossbar_dim,
            input_bits,
            bias,
            step,
            row_index,
            col_index,
            orig_rows: rows,
            orig_cols: cols,
            crossbars,
            xb_cols,
            adc,
            slicer,
            ceiling,
            faulted_cells: 0,
            drifted_cells: 0,
        })
    }

    /// Applies a fault campaign to every crossbar of this layer (the same
    /// per-crossbar salting as the FORMS engine, so FORMS-vs-ISAAC fault
    /// sweeps are apples-to-apples).
    pub fn inject_faults(&mut self, campaign: &FaultCampaign, salt: u64) -> FaultReport {
        let mut total = FaultReport::default();
        for (i, xbar) in self.crossbars.iter_mut().enumerate() {
            let xb_salt = salt ^ (i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
            total.merge(&campaign.apply(xbar, xb_salt));
        }
        self.faulted_cells += total.stuck() as u64;
        self.drifted_cells += total.drifted as u64;
        total
    }

    /// Aggregate fault counters: (faulted cells, drifted cells, total
    /// mapped cells).
    pub fn fault_counts(&self) -> (u64, u64, u64) {
        let dim = self.crossbar_dim as u64;
        (
            self.faulted_cells,
            self.drifted_cells,
            self.crossbars.len() as u64 * dim * dim,
        )
    }

    /// Pristine nominal output ceiling (per unit input scale).
    pub fn nominal_ceiling(&self) -> f64 {
        self.ceiling
    }

    /// Weight quantization step.
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Length of the layer's output vector (= original weight columns).
    pub fn output_len(&self) -> usize {
        self.orig_cols
    }

    /// Physical crossbars used.
    pub fn crossbar_count(&self) -> usize {
        self.crossbars.len()
    }

    /// Mutable access to the crossbars (variation injection).
    pub fn crossbars_mut(&mut self) -> &mut [Crossbar] {
        &mut self.crossbars
    }

    /// Reconstructs the (quantized, signed) weight matrix this mapping
    /// represents, in original indexing.
    pub fn dequantized_matrix(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.orig_rows, self.orig_cols]);
        let cpw = self.slicer.cells_per_weight();
        let dim = self.crossbar_dim;
        for (ci, &c) in self.col_index.iter().enumerate() {
            for (ri, &r) in self.row_index.iter().enumerate() {
                let (xr, row_in_xb) = (ri / dim, ri % dim);
                let slices: Vec<u64> = (0..cpw)
                    .map(|k| {
                        let cell_col = ci * cpw + k;
                        let (xc, col_in_xb) = (cell_col / dim, cell_col % dim);
                        self.crossbars[xr * self.xb_cols + xc].read_cell(row_in_xb, col_in_xb)
                            as u64
                    })
                    .collect();
                let encoded = self.slicer.recombine(&slices) as i64;
                let k = encoded - self.bias as i64;
                out.data_mut()[r * self.orig_cols + c] = k as f32 * self.step;
            }
        }
        out
    }

    /// Executes the coarse-grained offset-encoded MVM: all rows of each
    /// crossbar block activate together, every input bit plane is fed (no
    /// zero-skipping), and the counted-ones offset is subtracted digitally.
    ///
    /// # Panics
    ///
    /// Panics if `input_codes.len()` differs from the original row count or
    /// any code exceeds `input_bits`.
    pub fn matvec(&self, input_codes: &[u32], input_scale: f32) -> (Vec<f32>, IsaacStats) {
        let mut scratch = IsaacScratch::default();
        let mut out = vec![0.0f32; self.orig_cols];
        let stats = self.matvec_into(input_codes, input_scale, &mut scratch, &mut out);
        (out, stats)
    }

    /// The allocation-free packed hot path: [`matvec`](Self::matvec) into a
    /// caller-owned output buffer (length = original columns, overwritten)
    /// with caller-owned reusable [`IsaacScratch`]. Results are bitwise
    /// identical to [`matvec_reference`](Self::matvec_reference).
    ///
    /// # Panics
    ///
    /// Panics as [`matvec`](Self::matvec) does, and if `out.len()` differs
    /// from the original column count.
    pub fn matvec_into(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        scratch: &mut IsaacScratch,
        out: &mut [f32],
    ) -> IsaacStats {
        self.validate_input_codes(input_codes);
        assert_eq!(
            out.len(),
            self.orig_cols,
            "need one output slot per original column"
        );
        let dim = self.crossbar_dim;
        let cpw = self.slicer.cells_per_weight();
        let cell_bits = self.slicer.cell_bits();
        let cell_cols = self.col_index.len() * cpw;
        let mut stats = IsaacStats::default();
        out.fill(0.0);
        scratch.accs.clear();
        scratch.accs.resize(self.col_index.len(), 0);

        for (block, rows) in self.row_index.chunks(dim).enumerate() {
            scratch.codes.clear();
            scratch.codes.extend(rows.iter().map(|&r| input_codes[r]));
            stats.cycles += u64::from(self.input_bits);
            stats.row_blocks += 1;
            let words = pack_bit_planes(&scratch.codes, self.input_bits, &mut scratch.planes);

            // Offset term shared by every column of the block:
            // bias × Σ_planes ones(plane) << plane — popcounted straight
            // off the packed planes.
            let mut offset = 0u64;
            for (plane, mask) in scratch.planes.chunks_exact(words).enumerate() {
                let ones = plane_ones(mask);
                stats.ones_counted += ones;
                stats.offset_subtractions += ones;
                offset += (self.bias * ones) << plane;
            }

            // Dequantized cell values of the block window, cached once so
            // the per-plane reads below are pure adds.
            let block_rows = scratch.codes.len();
            scratch.cell_vals.clear();
            scratch.cell_vals.resize(block_rows * cell_cols, 0.0);
            for r in 0..block_rows {
                let row = &mut scratch.cell_vals[r * cell_cols..(r + 1) * cell_cols];
                for xc in 0..self.xb_cols {
                    let col_lo = xc * dim;
                    if col_lo >= cell_cols {
                        break;
                    }
                    let col_hi = (col_lo + dim).min(cell_cols);
                    self.crossbars[block * self.xb_cols + xc]
                        .dequant_row_into(r, &mut row[col_lo..col_hi]);
                }
            }

            // Raw currents for every plane × cell column: active rows
            // accumulate in ascending order, matching the legacy per-column
            // summation order bitwise.
            scratch.currents.clear();
            scratch
                .currents
                .resize(self.input_bits as usize * cell_cols, 0.0);
            let (currents, cell_vals) = (&mut scratch.currents, &scratch.cell_vals);
            for (plane, mask) in scratch.planes.chunks_exact(words).enumerate() {
                let row = &mut currents[plane * cell_cols..(plane + 1) * cell_cols];
                forms_reram::for_each_set_bit(mask, |i| {
                    if i >= block_rows {
                        return;
                    }
                    let vals = &cell_vals[i * cell_cols..(i + 1) * cell_cols];
                    for (acc, &v) in row.iter_mut().zip(vals) {
                        *acc += v;
                    }
                });
            }

            for (ci, acc) in scratch.accs.iter_mut().enumerate() {
                scratch.slice_acc.clear();
                scratch.slice_acc.resize(cpw, 0);
                for plane in 0..self.input_bits as usize {
                    let currents = &scratch.currents[plane * cell_cols..];
                    for (k, acc_k) in scratch.slice_acc.iter_mut().enumerate() {
                        let code = self
                            .adc
                            .convert(currents[ci * cpw + k], self.crossbars[0].spec());
                        stats.adc_conversions += 1;
                        *acc_k += u64::from(code) << plane;
                    }
                }
                let mut encoded_total = 0u64;
                for &s in &scratch.slice_acc {
                    encoded_total = (encoded_total << cell_bits) + s;
                }
                *acc += encoded_total as i64 - offset as i64;
            }
        }

        for (ci, &c) in self.col_index.iter().enumerate() {
            out[c] = scratch.accs[ci] as f32 * self.step * input_scale;
        }
        stats
    }

    /// Whether the batched kernel may run its integer fast path — the
    /// ISAAC mirror of `forms_arch::MappedLayer::integer_matmul_path`:
    /// every mapped cell dequantizes to an exact integer code and the ADC
    /// is lossless over a full block's current range.
    pub fn integer_matmul_path(&self) -> bool {
        let spec = self.crossbars[0].spec();
        let max_window = self.crossbar_dim as u64 * u64::from(spec.max_code());
        self.adc.full_scale() == f64::from(self.adc.levels() - 1)
            && max_window as f64 <= self.adc.full_scale()
            && self
                .crossbars
                .iter()
                .all(|x| x.integral_dequant_codes().is_some())
    }

    /// The blocked weight-stationary batch kernel: executes
    /// `scales.len()` offset-encoded matrix-vector products in one sweep,
    /// bitwise identical to calling [`matvec_into`](Self::matvec_into)
    /// once per sample (outputs *and* merged stats).
    ///
    /// Samples are processed in tiles; per row block the weight window is
    /// materialized once per tile and swept over every sample. Pristine
    /// arrays take an integer fast path (ADC conversion is the identity),
    /// drifted arrays fall back to an f64 path preserving the per-sample
    /// ascending-row summation order.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths are inconsistent with `scales.len()`
    /// or any input code exceeds `input_bits`.
    pub fn matmul_into(
        &self,
        batch_codes: &[u32],
        scales: &[f32],
        scratch: &mut IsaacScratch,
        outs: &mut [f32],
    ) -> IsaacStats {
        let mut stats = IsaacStats::default();
        if scales.is_empty() {
            assert!(batch_codes.is_empty(), "codes without scales");
            assert!(outs.is_empty(), "outputs without scales");
            return stats;
        }
        let nsamples = scales.len();
        assert_eq!(
            batch_codes.len(),
            nsamples * self.orig_rows,
            "need one whole input vector per batched sample"
        );
        assert_eq!(
            outs.len(),
            nsamples * self.orig_cols,
            "need one whole output vector per batched sample"
        );
        for sample in batch_codes.chunks_exact(self.orig_rows) {
            self.validate_input_codes(sample);
        }
        let dim = self.crossbar_dim;
        let cpw = self.slicer.cells_per_weight();
        let cell_bits = self.slicer.cell_bits();
        let ncols = self.col_index.len();
        let cell_cols = ncols * cpw;
        let n_planes = self.input_bits as usize;
        let fast = self.integer_matmul_path();
        outs.fill(0.0);

        for tile_lo in (0..nsamples).step_by(MATMUL_TILE) {
            let tile = tile_lo..(tile_lo + MATMUL_TILE).min(nsamples);
            let t = tile.len();
            scratch.accs.clear();
            scratch.accs.resize(t * ncols, 0);

            for (block, rows) in self.row_index.chunks(dim).enumerate() {
                let block_rows = rows.len();
                // Gather the tile's block codes (sample-major). ISAAC has
                // no zero-skipping: every sample pays all input bit planes.
                scratch.tile_codes.clear();
                for s in tile.clone() {
                    let codes = &batch_codes[s * self.orig_rows..(s + 1) * self.orig_rows];
                    scratch.tile_codes.extend(rows.iter().map(|&r| codes[r]));
                }
                stats.cycles += t as u64 * u64::from(self.input_bits);
                stats.row_blocks += t as u64;
                let words = pack_tile_bit_planes(
                    &scratch.tile_codes,
                    t,
                    self.input_bits,
                    &mut scratch.tile_planes,
                );
                let stride = n_planes * words;

                if fast {
                    let IsaacScratch {
                        tile_planes,
                        icell,
                        icurr,
                        cell_acc,
                        accs,
                        ..
                    } = scratch;
                    // Integer window, once per (block, tile).
                    icell.clear();
                    icell.resize(block_rows * cell_cols, 0);
                    for r in 0..block_rows {
                        let row = &mut icell[r * cell_cols..(r + 1) * cell_cols];
                        for xc in 0..self.xb_cols {
                            let col_lo = xc * dim;
                            if col_lo >= cell_cols {
                                break;
                            }
                            let col_hi = (col_lo + dim).min(cell_cols);
                            self.crossbars[block * self.xb_cols + xc]
                                .integral_row_into(r, &mut row[col_lo..col_hi]);
                        }
                    }
                    for si in 0..t {
                        cell_acc.clear();
                        cell_acc.resize(cell_cols, 0);
                        let planes = &tile_planes[si * stride..(si + 1) * stride];
                        let mut offset = 0u64;
                        for (plane, mask) in planes.chunks_exact(words).enumerate() {
                            let ones = plane_ones(mask);
                            stats.ones_counted += ones;
                            stats.offset_subtractions += ones;
                            offset += (self.bias * ones) << plane;
                            if plane_is_zero(mask) {
                                continue;
                            }
                            icurr.clear();
                            icurr.resize(cell_cols, 0);
                            for_each_set_bit(mask, |i| {
                                if i < block_rows {
                                    let row = &icell[i * cell_cols..(i + 1) * cell_cols];
                                    for (acc, &v) in icurr.iter_mut().zip(row) {
                                        *acc += u32::from(v);
                                    }
                                }
                            });
                            for (acc, &c) in cell_acc.iter_mut().zip(icurr.iter()) {
                                *acc += u64::from(c) << plane;
                            }
                        }
                        // Lossless conversion is the identity; conversions
                        // are counted arithmetically (every column converts
                        // every slice each bit plane).
                        stats.adc_conversions += n_planes as u64 * cell_cols as u64;
                        let sample_accs = &mut accs[si * ncols..][..ncols];
                        for (ci, acc) in sample_accs.iter_mut().enumerate() {
                            let mut encoded_total = 0u64;
                            for &s in &cell_acc[ci * cpw..(ci + 1) * cpw] {
                                encoded_total = (encoded_total << cell_bits) + s;
                            }
                            *acc += encoded_total as i64 - offset as i64;
                        }
                    }
                } else {
                    let IsaacScratch {
                        tile_planes,
                        cell_vals,
                        currents,
                        slice_acc,
                        accs,
                        ..
                    } = scratch;
                    // f64 window, once per (block, tile).
                    cell_vals.clear();
                    cell_vals.resize(block_rows * cell_cols, 0.0);
                    for r in 0..block_rows {
                        let row = &mut cell_vals[r * cell_cols..(r + 1) * cell_cols];
                        for xc in 0..self.xb_cols {
                            let col_lo = xc * dim;
                            if col_lo >= cell_cols {
                                break;
                            }
                            let col_hi = (col_lo + dim).min(cell_cols);
                            self.crossbars[block * self.xb_cols + xc]
                                .dequant_row_into(r, &mut row[col_lo..col_hi]);
                        }
                    }
                    for si in 0..t {
                        let planes = &tile_planes[si * stride..(si + 1) * stride];
                        let mut offset = 0u64;
                        currents.clear();
                        currents.resize(n_planes * cell_cols, 0.0);
                        for (plane, mask) in planes.chunks_exact(words).enumerate() {
                            let ones = plane_ones(mask);
                            stats.ones_counted += ones;
                            stats.offset_subtractions += ones;
                            offset += (self.bias * ones) << plane;
                            // Active rows accumulate in ascending order,
                            // matching the per-sample summation order
                            // bitwise.
                            let row = &mut currents[plane * cell_cols..(plane + 1) * cell_cols];
                            for_each_set_bit(mask, |i| {
                                if i < block_rows {
                                    let vals = &cell_vals[i * cell_cols..(i + 1) * cell_cols];
                                    for (acc, &v) in row.iter_mut().zip(vals) {
                                        *acc += v;
                                    }
                                }
                            });
                        }
                        let sample_accs = &mut accs[si * ncols..][..ncols];
                        for (ci, acc) in sample_accs.iter_mut().enumerate() {
                            slice_acc.clear();
                            slice_acc.resize(cpw, 0);
                            for plane in 0..n_planes {
                                let cur = &currents[plane * cell_cols..];
                                for (k, acc_k) in slice_acc.iter_mut().enumerate() {
                                    let code = self
                                        .adc
                                        .convert(cur[ci * cpw + k], self.crossbars[0].spec());
                                    stats.adc_conversions += 1;
                                    *acc_k += u64::from(code) << plane;
                                }
                            }
                            let mut encoded_total = 0u64;
                            for &s in slice_acc.iter() {
                                encoded_total = (encoded_total << cell_bits) + s;
                            }
                            *acc += encoded_total as i64 - offset as i64;
                        }
                    }
                }
            }

            for (si, s) in tile.enumerate() {
                let out = &mut outs[s * self.orig_cols..][..self.orig_cols];
                for (ci, &c) in self.col_index.iter().enumerate() {
                    out[c] = scratch.accs[si * ncols + ci] as f32 * self.step * scales[s];
                }
            }
        }
        stats
    }

    /// Validates the whole input vector in one pass (length + range), so
    /// the per-block gather loops stay assert-free.
    fn validate_input_codes(&self, input_codes: &[u32]) {
        assert_eq!(
            input_codes.len(),
            self.orig_rows,
            "need one input code per original row"
        );
        let limit = 1u64 << self.input_bits;
        assert!(
            self.row_index
                .iter()
                .all(|&r| u64::from(input_codes[r]) < limit),
            "input code exceeds {} bits",
            self.input_bits
        );
    }

    /// The legacy allocating kernel, kept as the bitwise oracle for the
    /// packed path and as the pre-optimization baseline for the MVM
    /// benchmark. Results are bitwise identical to
    /// [`matvec`](Self::matvec).
    ///
    /// # Panics
    ///
    /// Panics as [`matvec`](Self::matvec) does.
    pub fn matvec_reference(
        &self,
        input_codes: &[u32],
        input_scale: f32,
    ) -> (Vec<f32>, IsaacStats) {
        self.validate_input_codes(input_codes);
        let dim = self.crossbar_dim;
        let cpw = self.slicer.cells_per_weight();
        let cell_bits = self.slicer.cell_bits();
        let mut stats = IsaacStats::default();
        let mut accs = vec![0i64; self.col_index.len()];

        for (block, rows) in self.row_index.chunks(dim).enumerate() {
            let codes: Vec<u32> = rows.iter().map(|&r| input_codes[r]).collect();
            stats.cycles += u64::from(self.input_bits);
            stats.row_blocks += 1;
            let window = 0..codes.len();

            // Offset term shared by every column of the block:
            // bias × Σ_planes ones(plane) << plane.
            let mut offset = 0u64;
            for plane in 0..self.input_bits {
                let ones = codes.iter().filter(|&&c| (c >> plane) & 1 == 1).count() as u64;
                stats.ones_counted += ones;
                stats.offset_subtractions += ones;
                offset += (self.bias * ones) << plane;
            }

            for (ci, acc) in accs.iter_mut().enumerate() {
                let mut slice_acc = vec![0u64; cpw];
                for plane in 0..self.input_bits {
                    let drives: Vec<f64> = codes
                        .iter()
                        .map(|&c| if (c >> plane) & 1 == 1 { 1.0 } else { 0.0 })
                        .collect();
                    for (k, acc_k) in slice_acc.iter_mut().enumerate() {
                        let cell_col = ci * cpw + k;
                        let (xc, col_in_xb) = (cell_col / dim, cell_col % dim);
                        let current = self.crossbars[block * self.xb_cols + xc].column_current(
                            col_in_xb,
                            &drives,
                            window.clone(),
                        );
                        let code = self.adc.convert(current, self.crossbars[0].spec());
                        stats.adc_conversions += 1;
                        *acc_k += u64::from(code) << plane;
                    }
                }
                let mut encoded_total = 0u64;
                for &s in &slice_acc {
                    encoded_total = (encoded_total << cell_bits) + s;
                }
                *acc += encoded_total as i64 - offset as i64;
            }
        }

        let mut out = vec![0.0f32; self.orig_cols];
        for (ci, &c) in self.col_index.iter().enumerate() {
            out[c] = accs[ci] as f32 * self.step * input_scale;
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_tensor::QuantizedTensor;

    fn signed_matrix(rows: usize, cols: usize) -> Tensor {
        Tensor::from_fn(&[rows, cols], |i| {
            let v = ((i * 37 % 17) as f32 / 8.0) - 1.0;
            if v.abs() < 0.05 {
                0.1
            } else {
                v
            }
        })
    }

    #[test]
    fn matvec_matches_signed_reference() {
        let w = signed_matrix(12, 3);
        let layer = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
        let x = Tensor::from_fn(&[12], |i| (i as f32 * 0.21).fract());
        let q = QuantizedTensor::quantize(&x, 8);
        let (got, _) = layer.matvec(q.codes(), q.spec().scale());
        let reference = layer
            .dequantized_matrix()
            .transpose()
            .matvec(q.dequantize().data());
        for (g, r) in got.iter().zip(&reference) {
            assert!((g - r).abs() < 1e-3, "offset-encoded {g} vs signed {r}");
        }
    }

    #[test]
    fn encoding_stores_only_nonnegative_codes() {
        let w = signed_matrix(8, 2);
        let layer = IsaacLayer::map_with(&w, 8, 8, 8, CellSpec::paper_2bit()).expect("map");
        // All conductances are valid by construction; decode a negative
        // weight and verify the stored code was biased.
        let back = layer.dequantized_matrix();
        assert!(back.min() < 0.0, "test matrix should have negatives");
    }

    #[test]
    fn dequantized_round_trip_within_step() {
        let w = signed_matrix(16, 4);
        let layer = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
        let err = w.max_abs_diff(&layer.dequantized_matrix());
        assert!(err <= layer.step() / 2.0 + 1e-6, "error {err}");
    }

    #[test]
    fn no_zero_skipping_means_full_cycles() {
        let w = signed_matrix(8, 2);
        let layer = IsaacLayer::map_with(&w, 8, 8, 8, CellSpec::paper_2bit()).expect("map");
        // Tiny inputs whose effective bits are 1 — ISAAC still pays 8
        // cycles.
        let (_, stats) = layer.matvec(&[1; 8], 1.0);
        assert_eq!(stats.cycles, 8);
    }

    #[test]
    fn offset_work_scales_with_input_ones() {
        let w = signed_matrix(8, 2);
        let layer = IsaacLayer::map_with(&w, 8, 8, 8, CellSpec::paper_2bit()).expect("map");
        let (_, sparse) = layer.matvec(&[1; 8], 1.0); // 8 ones total
        let (_, dense) = layer.matvec(&[255; 8], 1.0); // 64 ones total
        assert_eq!(sparse.ones_counted, 8);
        assert_eq!(dense.ones_counted, 64);
        assert!(dense.offset_subtractions > sparse.offset_subtractions);
    }

    #[test]
    fn multi_block_layers_accumulate_correctly() {
        // More rows than the crossbar dimension → several blocks.
        let w = signed_matrix(40, 2);
        let layer = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
        assert!(layer.crossbar_count() >= 3);
        let x = Tensor::from_fn(&[40], |i| (i as f32 * 0.037).fract());
        let q = QuantizedTensor::quantize(&x, 8);
        let (got, _) = layer.matvec(q.codes(), q.spec().scale());
        let reference = layer
            .dequantized_matrix()
            .transpose()
            .matvec(q.dequantize().data());
        for (g, r) in got.iter().zip(&reference) {
            assert!((g - r).abs() < 2e-3, "{g} vs {r}");
        }
    }

    #[test]
    fn packed_kernel_is_bitwise_identical_to_reference() {
        // Mirror of the FORMS equivalence gate: the ISAAC packed kernel
        // must match the legacy allocating path bit-for-bit, including on
        // multi-block and pruned layers.
        for &(rows, cols) in &[(12usize, 3usize), (40, 5), (8, 2)] {
            let mut w = signed_matrix(rows, cols);
            for r in 0..rows {
                w.data_mut()[r * cols + 1] = 0.0; // prune a column
            }
            let layer = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
            for seed in 0..4u64 {
                let codes: Vec<u32> = (0..rows)
                    .map(|i| ((i as u64 * 29 + seed * 67) % 256) as u32)
                    .collect();
                let (reference, ref_stats) = layer.matvec_reference(&codes, 0.017);
                let (packed, packed_stats) = layer.matvec(&codes, 0.017);
                assert_eq!(reference, packed);
                assert_eq!(ref_stats, packed_stats);
            }
        }
    }

    #[test]
    fn packed_scratch_is_reusable_across_blocks_and_inputs() {
        let w = signed_matrix(40, 4);
        let layer = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
        let mut scratch = IsaacScratch::default();
        let mut out = vec![0.0f32; layer.output_len()];
        for seed in 0..3u32 {
            let codes: Vec<u32> = (0..40).map(|i| (i as u32 * 7 + seed) % 256).collect();
            let stats = layer.matvec_into(&codes, 1.0, &mut scratch, &mut out);
            let (reference, ref_stats) = layer.matvec_reference(&codes, 1.0);
            assert_eq!(reference, out);
            assert_eq!(ref_stats, stats);
        }
    }

    #[test]
    fn clean_outputs_stay_under_the_ceiling() {
        let w = signed_matrix(16, 4);
        let layer = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
        let ceiling = layer.nominal_ceiling();
        assert!(ceiling > 0.0);
        let (out, _) = layer.matvec(&[255u32; 16], 1.0);
        for v in out {
            assert!(
                f64::from(v.abs()) <= ceiling * (1.0 + 1e-9),
                "clean output {v} exceeds ceiling {ceiling}"
            );
        }
    }

    #[test]
    fn injected_faults_flow_through_packed_path() {
        let w = signed_matrix(16, 4);
        let mut layer = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
        let report = layer.inject_faults(&FaultCampaign::stuck_at(3, 0.15, 0.1), 7);
        assert!(report.stuck() > 0);
        let (faulted, _, total) = layer.fault_counts();
        assert_eq!(faulted, report.stuck() as u64);
        assert!(total >= 16 * 16);
        let codes: Vec<u32> = (0..16).map(|i| (i * 13) as u32 % 251).collect();
        let (packed, _) = layer.matvec(&codes, 0.5);
        let (reference, _) = layer.matvec_reference(&codes, 0.5);
        assert_eq!(packed, reference);
    }

    /// Per-sample oracle: N× `matvec_into` through one warm scratch.
    fn matmul_oracle(
        layer: &IsaacLayer,
        batch_codes: &[u32],
        scales: &[f32],
    ) -> (Vec<f32>, IsaacStats) {
        let mut scratch = IsaacScratch::default();
        let mut outs = vec![0.0f32; scales.len() * layer.orig_cols];
        let mut stats = IsaacStats::default();
        for ((codes, out), &scale) in batch_codes
            .chunks_exact(layer.orig_rows)
            .zip(outs.chunks_exact_mut(layer.orig_cols))
            .zip(scales)
        {
            stats.merge(layer.matvec_into(codes, scale, &mut scratch, out));
        }
        (outs, stats)
    }

    fn batch_codes_for(layer: &IsaacLayer, samples: usize, seed: u64) -> (Vec<u32>, Vec<f32>) {
        let codes: Vec<u32> = (0..samples * layer.orig_rows)
            .map(|i| ((i as u64 * 29 + seed * 67) % 256) as u32)
            .collect();
        let scales: Vec<f32> = (0..samples).map(|s| 0.015 + 0.002 * s as f32).collect();
        (codes, scales)
    }

    #[test]
    fn batched_matmul_is_bitwise_identical_to_per_sample_matvec() {
        // The batch-kernel invariant over pruned and multi-block layers,
        // covering the empty batch, a single sample and a ragged tail past
        // one tile.
        for &(rows, cols) in &[(12usize, 3usize), (40, 5), (8, 2)] {
            let mut w = signed_matrix(rows, cols);
            for r in 0..rows {
                w.data_mut()[r * cols + 1] = 0.0; // prune a column
            }
            let layer = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
            assert!(layer.integer_matmul_path(), "pristine map must be fast");
            let mut scratch = IsaacScratch::default();
            for samples in [0usize, 1, 5, MATMUL_TILE + 1] {
                let (codes, scales) = batch_codes_for(&layer, samples, 5);
                let mut outs = vec![0.0f32; samples * cols];
                let stats = layer.matmul_into(&codes, &scales, &mut scratch, &mut outs);
                let (want, want_stats) = matmul_oracle(&layer, &codes, &scales);
                assert_eq!(outs, want, "samples={samples}");
                assert_eq!(stats, want_stats, "samples={samples}");
            }
        }
    }

    #[test]
    fn batched_matmul_on_drifted_array_falls_back_bitwise() {
        let w = signed_matrix(40, 5);
        let mut layer = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
        layer.crossbars_mut()[0].conductances_mut()[5] += 3.77;
        layer.crossbars_mut()[0].commit_writes();
        assert!(!layer.integer_matmul_path(), "drift must disable fast path");
        let mut scratch = IsaacScratch::default();
        let (codes, scales) = batch_codes_for(&layer, MATMUL_TILE + 2, 9);
        let mut outs = vec![0.0f32; scales.len() * 5];
        let stats = layer.matmul_into(&codes, &scales, &mut scratch, &mut outs);
        let (want, want_stats) = matmul_oracle(&layer, &codes, &scales);
        assert_eq!(outs, want);
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn batched_matmul_survives_post_map_fault_injection() {
        let w = signed_matrix(16, 4);
        let mut layer = IsaacLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit()).expect("map");
        let report = layer.inject_faults(&FaultCampaign::stuck_at(3, 0.15, 0.1), 7);
        assert!(report.stuck() > 0);
        let mut scratch = IsaacScratch::default();
        let (codes, scales) = batch_codes_for(&layer, 11, 2);
        let mut outs = vec![0.0f32; 11 * 4];
        let stats = layer.matmul_into(&codes, &scales, &mut scratch, &mut outs);
        let (want, want_stats) = matmul_oracle(&layer, &codes, &scales);
        assert_eq!(outs, want);
        assert_eq!(stats, want_stats);
    }

    #[test]
    fn all_zero_matrix_rejected() {
        let err = IsaacLayer::map(&Tensor::zeros(&[4, 4]), 8, 8).unwrap_err();
        assert!(matches!(err, ExecError::AllZero));
    }

    #[test]
    fn single_weight_bit_rejected() {
        let w = signed_matrix(4, 4);
        let err = IsaacLayer::map(&w, 1, 8).unwrap_err();
        assert!(matches!(err, ExecError::UnsupportedConfig { .. }));
    }

    #[test]
    fn non_matrix_rejected() {
        let err = IsaacLayer::map(&Tensor::ones(&[2, 2, 2]), 8, 8).unwrap_err();
        assert!(matches!(err, ExecError::NotMatrix { rank: 3 }));
    }
}
