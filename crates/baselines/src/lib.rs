//! # forms-baselines
//!
//! Baseline accelerator models the FORMS paper compares against.
//!
//! The principal comparator is **ISAAC** (paper ref. \[18\]), which handles
//! signed weights by *offset encoding*: every `b`-bit two's-complement
//! weight is biased by `2^(b-1)` so all stored values are non-negative, and
//! the result is corrected by counting the `1`s in each input bit plane and
//! subtracting `count × 2^(b-1)` — the overhead FORMS' polarization
//! eliminates. [`IsaacLayer`] implements that mechanism functionally on the
//! same `forms-reram` crossbar substrate the FORMS mapping uses, so the two
//! designs are compared apples-to-apples.
//!
//! [`SplitLayer`] implements the other prior approach (PRIME-style
//! positive/negative crossbar pairs), and [`PumaModel`] carries PUMA's
//! published relative efficiency.
//!
//! # Example
//!
//! ```
//! use forms_baselines::IsaacLayer;
//! use forms_tensor::Tensor;
//!
//! // Signed weights — no polarization required.
//! let w = Tensor::from_vec(vec![0.5, -0.25, -1.0, 0.75], &[2, 2]);
//! let layer = IsaacLayer::map(&w, 8, 8).expect("signed weights map directly");
//! let (y, _) = layer.matvec(&[3, 1], 1.0);
//! let reference = layer.dequantized_matrix().transpose().matvec(&[3.0, 1.0]);
//! assert!((y[0] - reference[0]).abs() < 1e-4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accelerator;
mod isaac;
mod puma;
mod split;

pub use accelerator::{IsaacAccelerator, IsaacActivity, IsaacConfig};
pub use forms_exec::ExecError;
pub use isaac::{IsaacLayer, IsaacScratch, IsaacStats};
pub use puma::PumaModel;
pub use split::SplitLayer;
