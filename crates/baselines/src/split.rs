//! PRIME-style positive/negative crossbar splitting (paper §II-B, the
//! "general way" of handling signed weights, refs. \[17, 26–28, 41\]).

use forms_reram::{Adc, BitSlicer, CellSpec, Crossbar};
use forms_tensor::Tensor;

/// A signed weight matrix mapped as two magnitude-only crossbar sets: one
/// holding positive weights, one holding negative weights. The digital
/// back-end subtracts the negative array's result — at the cost of
/// doubling the ReRAM arrays, which is exactly the overhead FORMS'
/// polarization removes.
#[derive(Clone, Debug)]
pub struct SplitLayer {
    crossbar_dim: usize,
    input_bits: u32,
    step: f32,
    orig_rows: usize,
    orig_cols: usize,
    positive: Vec<Crossbar>,
    negative: Vec<Crossbar>,
    xb_cols: usize,
    adc: Adc,
    slicer: BitSlicer,
}

impl SplitLayer {
    /// Maps a signed matrix onto a positive and a negative crossbar set.
    ///
    /// # Panics
    ///
    /// Panics if `matrix` is not rank-2 or `weight_bits < 2`.
    pub fn map_with(
        matrix: &Tensor,
        weight_bits: u32,
        input_bits: u32,
        crossbar_dim: usize,
        cell: CellSpec,
    ) -> Self {
        assert_eq!(matrix.shape().rank(), 2, "expected a [rows, cols] matrix");
        assert!(weight_bits >= 2, "need at least 2 weight bits");
        let (rows, cols) = (matrix.dims()[0], matrix.dims()[1]);
        let levels = ((1u64 << weight_bits) - 1) as f32;
        let abs_max = matrix.abs_max();
        let step = if abs_max > 0.0 { abs_max / levels } else { 1.0 };
        let slicer = BitSlicer::new(weight_bits, cell.bits());
        let cpw = slicer.cells_per_weight();
        let xb_rows = rows.div_ceil(crossbar_dim);
        let xb_cols = (cols * cpw).div_ceil(crossbar_dim);
        let mut positive = vec![Crossbar::new(crossbar_dim, crossbar_dim, cell); xb_rows * xb_cols];
        let mut negative = positive.clone();
        for r in 0..rows {
            for c in 0..cols {
                let w = matrix.data()[r * cols + c];
                if w == 0.0 {
                    continue;
                }
                let code = ((w.abs() / step).round() as u32).min(levels as u32);
                let target = if w > 0.0 {
                    &mut positive
                } else {
                    &mut negative
                };
                let (xr, row_in_xb) = (r / crossbar_dim, r % crossbar_dim);
                for (k, &s) in slicer.slice(code).iter().enumerate() {
                    let cell_col = c * cpw + k;
                    let (xc, col_in_xb) = (cell_col / crossbar_dim, cell_col % crossbar_dim);
                    target[xr * xb_cols + xc].program_cell(row_in_xb, col_in_xb, s);
                }
            }
        }
        let adc = Adc::ideal_for(crossbar_dim, &cell);
        Self {
            crossbar_dim,
            input_bits,
            step,
            orig_rows: rows,
            orig_cols: cols,
            positive,
            negative,
            xb_cols,
            adc,
            slicer,
        }
    }

    /// Total physical crossbars — twice what a polarized mapping needs.
    pub fn crossbar_count(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// Weight quantization step.
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Executes the split MVM: positive-array result minus negative-array
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if `input_codes.len()` differs from the row count.
    pub fn matvec(&self, input_codes: &[u32], input_scale: f32) -> Vec<f32> {
        assert_eq!(input_codes.len(), self.orig_rows, "input length mismatch");
        let pos = self.half_matvec(&self.positive, input_codes);
        let neg = self.half_matvec(&self.negative, input_codes);
        (0..self.orig_cols)
            .map(|c| (pos[c] - neg[c]) as f32 * self.step * input_scale)
            .collect()
    }

    fn half_matvec(&self, arrays: &[Crossbar], input_codes: &[u32]) -> Vec<i64> {
        let dim = self.crossbar_dim;
        let cpw = self.slicer.cells_per_weight();
        let cell_bits = self.slicer.cell_bits();
        let mut accs = vec![0i64; self.orig_cols];
        for (block, rows) in (0..self.orig_rows)
            .collect::<Vec<_>>()
            .chunks(dim)
            .enumerate()
        {
            let codes: Vec<u32> = rows.iter().map(|&r| input_codes[r]).collect();
            let window = 0..codes.len();
            for (c, acc) in accs.iter_mut().enumerate() {
                let mut slice_acc = vec![0u64; cpw];
                for plane in 0..self.input_bits {
                    let drives: Vec<f64> = codes
                        .iter()
                        .map(|&v| if (v >> plane) & 1 == 1 { 1.0 } else { 0.0 })
                        .collect();
                    for (k, acc_k) in slice_acc.iter_mut().enumerate() {
                        let cell_col = c * cpw + k;
                        let (xc, col_in_xb) = (cell_col / dim, cell_col % dim);
                        let current = arrays[block * self.xb_cols + xc].column_current(
                            col_in_xb,
                            &drives,
                            window.clone(),
                        );
                        let code = self.adc.convert(current, arrays[0].spec());
                        *acc_k += u64::from(code) << plane;
                    }
                }
                let mut total = 0u64;
                for &s in &slice_acc {
                    total = (total << cell_bits) + s;
                }
                *acc += total as i64;
            }
        }
        accs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_tensor::QuantizedTensor;

    #[test]
    fn split_matvec_matches_signed_reference() {
        let w = Tensor::from_fn(&[12, 3], |i| ((i * 29 % 13) as f32 / 6.0) - 1.0);
        let layer = SplitLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit());
        let x = Tensor::from_fn(&[12], |i| (i as f32 * 0.17).fract());
        let q = QuantizedTensor::quantize(&x, 8);
        let got = layer.matvec(q.codes(), q.spec().scale());
        // Reference with quantized weights.
        let wq = w.map(|v| (v / layer.step()).round() * layer.step());
        let reference = wq.transpose().matvec(q.dequantize().data());
        for (g, r) in got.iter().zip(&reference) {
            assert!((g - r).abs() < 2e-3, "{g} vs {r}");
        }
    }

    #[test]
    fn split_uses_twice_the_crossbars() {
        let w = Tensor::ones(&[16, 4]);
        let layer = SplitLayer::map_with(&w, 8, 8, 16, CellSpec::paper_2bit());
        // One 16×16 crossbar would hold 16 rows × 4 weights; split needs 2.
        assert_eq!(layer.crossbar_count(), 2);
    }
}
