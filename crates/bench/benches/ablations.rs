//! Ablation benches over the paper's design choices (DESIGN.md §5): each
//! group sweeps one axis the paper calls out — fragment size, cell bits,
//! ADC sharing, zero-skipping, ADMM sign-update period — timing the real
//! simulator at that design point and printing the derived design metric
//! once per point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forms_arch::{MappedLayer, MappingConfig};
use forms_hwmodel::{McuConfig, ThroughputModel};
use forms_reram::CellSpec;
use forms_tensor::Tensor;

fn polarized_matrix(rows: usize, cols: usize, fragment: usize) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| {
        let (r, c) = (i / cols, i % cols);
        let sign = if ((r / fragment) + c) % 2 == 0 {
            1.0
        } else {
            -1.0
        };
        sign * (0.05 + ((i * 13) % 11) as f32 / 16.0)
    })
}

fn sparse_codes(n: usize) -> Vec<u32> {
    // Post-ReLU-like: half zero, the rest small.
    (0..n)
        .map(|i| if i % 2 == 0 { 0 } else { ((i * 7) % 64) as u32 })
        .collect()
}

/// Fragment-size ablation: smaller fragments → more row groups but lower
/// EIC. The printed metric is the cycles actually spent.
fn ablation_fragment(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fragment");
    for fragment in [4usize, 8, 16, 32] {
        let w = polarized_matrix(128, 8, fragment);
        let config = MappingConfig {
            crossbar_dim: 128,
            fragment_size: fragment,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 16,
            zero_skipping: true,
        };
        let mapped = MappedLayer::map(&w, config).unwrap();
        let codes = sparse_codes(128);
        let (_, stats) = mapped.matvec(&codes, 1.0);
        eprintln!(
            "[ablation_fragment {fragment}] cycles {} / {} (saved {:.1}%), adc bits {}",
            stats.cycles,
            stats.cycles_without_skip,
            100.0 * stats.cycles_saved_fraction(),
            McuConfig::forms(fragment.min(16)).adc_bits
        );
        group.bench_with_input(BenchmarkId::from_parameter(fragment), &fragment, |b, _| {
            b.iter(|| std::hint::black_box(mapped.matvec(&codes, 1.0)))
        });
    }
    group.finish();
}

/// Bits-per-cell ablation: the paper settles on 2-bit cells.
fn ablation_cell_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cell_bits");
    for cell_bits in [1u32, 2, 4] {
        let cell = CellSpec::new(cell_bits, 1.0, 61.0);
        let w = polarized_matrix(64, 8, 8);
        let config = MappingConfig {
            crossbar_dim: 64,
            fragment_size: 8,
            weight_bits: 8,
            cell,
            input_bits: 16,
            zero_skipping: true,
        };
        let mapped = MappedLayer::map(&w, config).unwrap();
        let codes = sparse_codes(64);
        eprintln!(
            "[ablation_cell_bits {cell_bits}] cells/weight {} crossbars {}",
            config.cells_per_weight(),
            mapped.crossbar_count()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(cell_bits),
            &cell_bits,
            |b, _| b.iter(|| std::hint::black_box(mapped.matvec(&codes, 1.0))),
        );
    }
    group.finish();
}

/// ADC-sharing ablation: 1–8 ADCs per crossbar (iso-area cycle-time trade).
fn ablation_adc_share(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_adc_share");
    let isaac = ThroughputModel::baseline(McuConfig::isaac()).peak_gops();
    for adcs in [1usize, 2, 4, 8] {
        let mcu = McuConfig {
            adcs_per_crossbar: adcs,
            ..McuConfig::forms(8)
        };
        let model = ThroughputModel::baseline(mcu);
        eprintln!(
            "[ablation_adc_share {adcs}] cycle {:.2} ns, rel. peak {:.2}, MCU {:.2} mW",
            mcu.conversion_cycle_ns(),
            model.peak_gops() / isaac,
            mcu.cost().power_mw
        );
        group.bench_with_input(BenchmarkId::from_parameter(adcs), &adcs, |b, _| {
            b.iter(|| std::hint::black_box(ThroughputModel::baseline(mcu).throughput()))
        });
    }
    group.finish();
}

/// Zero-skipping on/off at sparse inputs — the wall-clock of the simulated
/// MVM tracks the simulated cycles.
fn ablation_zeroskip(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_zeroskip");
    for skip in [false, true] {
        let w = polarized_matrix(128, 8, 8);
        let config = MappingConfig {
            crossbar_dim: 128,
            fragment_size: 8,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 16,
            zero_skipping: skip,
        };
        let mapped = MappedLayer::map(&w, config).unwrap();
        let codes = sparse_codes(128);
        let (_, stats) = mapped.matvec(&codes, 1.0);
        eprintln!("[ablation_zeroskip {skip}] cycles {}", stats.cycles);
        group.bench_with_input(BenchmarkId::from_parameter(skip), &skip, |b, _| {
            b.iter(|| std::hint::black_box(mapped.matvec(&codes, 1.0)))
        });
    }
    group.finish();
}

/// ADMM sign-update period (the paper's `M`): projection work per epoch at
/// different cadences.
fn ablation_sign_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sign_update");
    group.sample_size(10);
    let w = Tensor::from_fn(&[128, 32], |i| ((i * 31 % 97) as f32 / 48.0) - 1.0);
    for period in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(period), &period, |b, &p| {
            b.iter(|| {
                // Simulate 8 "epochs": signs refresh every p, projection
                // every epoch.
                let mut z = w.clone();
                let mut signs = forms_admm::fragment_signs(&z, 8);
                for epoch in 0..8 {
                    if epoch % p == 0 {
                        signs = forms_admm::fragment_signs(&z, 8);
                    }
                    if signs.len()
                        == z.dims()[1] * forms_admm::active_rows(&z).len().div_ceil(8).max(1)
                    {
                        z = forms_admm::project_polarization(&z, 8, &signs);
                    } else {
                        signs = forms_admm::fragment_signs(&z, 8);
                        z = forms_admm::project_polarization(&z, 8, &signs);
                    }
                }
                std::hint::black_box(z)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_fragment,
    ablation_cell_bits,
    ablation_adc_share,
    ablation_zeroskip,
    ablation_sign_update
);
criterion_main!(benches);
