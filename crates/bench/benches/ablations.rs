//! Ablation benches over the paper's design choices (DESIGN.md §5): each
//! group sweeps one axis the paper calls out — fragment size, cell bits,
//! ADC sharing, zero-skipping, ADMM sign-update period — timing the real
//! simulator at that design point and printing the derived design metric
//! once per point.
//!
//! Gated behind the off-by-default `bench` feature; run with
//! `cargo bench -p forms-bench --features bench`.

use forms_arch::{MappedLayer, MappingConfig};
use forms_bench::timing::Bencher;
use forms_hwmodel::{McuConfig, ThroughputModel};
use forms_reram::CellSpec;
use forms_tensor::Tensor;

fn polarized_matrix(rows: usize, cols: usize, fragment: usize) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| {
        let (r, c) = (i / cols, i % cols);
        let sign = if ((r / fragment) + c).is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        sign * (0.05 + ((i * 13) % 11) as f32 / 16.0)
    })
}

fn sparse_codes(n: usize) -> Vec<u32> {
    // Post-ReLU-like: half zero, the rest small.
    (0..n)
        .map(|i| if i % 2 == 0 { 0 } else { ((i * 7) % 64) as u32 })
        .collect()
}

/// Fragment-size ablation: smaller fragments → more row groups but lower
/// EIC. The printed metric is the cycles actually spent.
fn ablation_fragment(b: &mut Bencher) {
    for fragment in [4usize, 8, 16, 32] {
        let w = polarized_matrix(128, 8, fragment);
        let config = MappingConfig {
            crossbar_dim: 128,
            fragment_size: fragment,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 16,
            zero_skipping: true,
        };
        let mapped = MappedLayer::map(&w, config).unwrap();
        let codes = sparse_codes(128);
        let (_, stats) = mapped.matvec(&codes, 1.0);
        eprintln!(
            "[ablation_fragment {fragment}] cycles {} / {} (saved {:.1}%), adc bits {}",
            stats.cycles,
            stats.cycles_without_skip,
            100.0 * stats.cycles_saved_fraction(),
            McuConfig::forms(fragment.min(16)).adc_bits
        );
        b.bench(&format!("ablation_fragment/{fragment}"), || {
            mapped.matvec(&codes, 1.0)
        });
    }
}

/// Bits-per-cell ablation: the paper settles on 2-bit cells.
fn ablation_cell_bits(b: &mut Bencher) {
    for cell_bits in [1u32, 2, 4] {
        let cell = CellSpec::new(cell_bits, 1.0, 61.0);
        let w = polarized_matrix(64, 8, 8);
        let config = MappingConfig {
            crossbar_dim: 64,
            fragment_size: 8,
            weight_bits: 8,
            cell,
            input_bits: 16,
            zero_skipping: true,
        };
        let mapped = MappedLayer::map(&w, config).unwrap();
        let codes = sparse_codes(64);
        eprintln!(
            "[ablation_cell_bits {cell_bits}] cells/weight {} crossbars {}",
            config.cells_per_weight(),
            mapped.crossbar_count()
        );
        b.bench(&format!("ablation_cell_bits/{cell_bits}"), || {
            mapped.matvec(&codes, 1.0)
        });
    }
}

/// ADC-sharing ablation: 1–8 ADCs per crossbar (iso-area cycle-time trade).
fn ablation_adc_share(b: &mut Bencher) {
    let isaac = ThroughputModel::baseline(McuConfig::isaac()).peak_gops();
    for adcs in [1usize, 2, 4, 8] {
        let mcu = McuConfig {
            adcs_per_crossbar: adcs,
            ..McuConfig::forms(8)
        };
        let model = ThroughputModel::baseline(mcu);
        eprintln!(
            "[ablation_adc_share {adcs}] cycle {:.2} ns, rel. peak {:.2}, MCU {:.2} mW",
            mcu.conversion_cycle_ns(),
            model.peak_gops() / isaac,
            mcu.cost().power_mw
        );
        b.bench(&format!("ablation_adc_share/{adcs}"), || {
            ThroughputModel::baseline(mcu).throughput()
        });
    }
}

/// Zero-skipping on/off at sparse inputs — the wall-clock of the simulated
/// MVM tracks the simulated cycles.
fn ablation_zeroskip(b: &mut Bencher) {
    for skip in [false, true] {
        let w = polarized_matrix(128, 8, 8);
        let config = MappingConfig {
            crossbar_dim: 128,
            fragment_size: 8,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 16,
            zero_skipping: skip,
        };
        let mapped = MappedLayer::map(&w, config).unwrap();
        let codes = sparse_codes(128);
        let (_, stats) = mapped.matvec(&codes, 1.0);
        eprintln!("[ablation_zeroskip {skip}] cycles {}", stats.cycles);
        b.bench(&format!("ablation_zeroskip/{skip}"), || {
            mapped.matvec(&codes, 1.0)
        });
    }
}

/// ADMM sign-update period (the paper's `M`): projection work per epoch at
/// different cadences.
fn ablation_sign_update(b: &mut Bencher) {
    let w = Tensor::from_fn(&[128, 32], |i| ((i * 31 % 97) as f32 / 48.0) - 1.0);
    for period in [1usize, 2, 4] {
        let p = period;
        let w = w.clone();
        b.bench(&format!("ablation_sign_update/{period}"), move || {
            // Simulate 8 "epochs": signs refresh every p, projection
            // every epoch.
            let mut z = w.clone();
            let mut signs = forms_admm::fragment_signs(&z, 8);
            for epoch in 0..8 {
                if epoch % p == 0 {
                    signs = forms_admm::fragment_signs(&z, 8);
                }
                if signs.len() == z.dims()[1] * forms_admm::active_rows(&z).len().div_ceil(8).max(1)
                {
                    z = forms_admm::project_polarization(&z, 8, &signs);
                } else {
                    signs = forms_admm::fragment_signs(&z, 8);
                    z = forms_admm::project_polarization(&z, 8, &signs);
                }
            }
            z
        });
    }
}

fn main() {
    let mut b = Bencher::new();
    ablation_fragment(&mut b);
    ablation_cell_bits(&mut b);
    ablation_adc_share(&mut b);
    ablation_zeroskip(&mut b);
    ablation_sign_update(&mut b);
}
