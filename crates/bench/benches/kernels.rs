//! Timing benches over the simulator kernels: the inner loops every
//! experiment binary exercises.
//!
//! Gated behind the off-by-default `bench` feature; run with
//! `cargo bench -p forms-bench --features bench` (set `FORMS_BENCH_FAST=1`
//! for a quick smoke pass).

use forms_arch::{eic_stats, MappedLayer, MappingConfig, ShiftRegisterBank};
use forms_baselines::IsaacLayer;
use forms_bench::timing::Bencher;
use forms_reram::CellSpec;
use forms_tensor::Tensor;

fn polarized_matrix(rows: usize, cols: usize, fragment: usize) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| {
        let (r, c) = (i / cols, i % cols);
        let sign = if ((r / fragment) + c).is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        sign * (0.05 + ((i * 13) % 11) as f32 / 16.0)
    })
}

fn mapping_config(fragment: usize) -> MappingConfig {
    MappingConfig {
        crossbar_dim: 128,
        fragment_size: fragment,
        weight_bits: 8,
        cell: CellSpec::paper_2bit(),
        input_bits: 16,
        zero_skipping: true,
    }
}

fn input_codes(n: usize) -> Vec<u32> {
    (0..n).map(|i| ((i * 37) % 1024) as u32).collect()
}

fn main() {
    let mut b = Bencher::new();

    let w = polarized_matrix(128, 16, 8);
    let mapped = MappedLayer::map(&w, mapping_config(8)).unwrap();
    let codes = input_codes(128);
    b.bench("forms_matvec_128x16_frag8", || mapped.matvec(&codes, 1.0));

    let isaac = IsaacLayer::map(&w, 8, 16).unwrap();
    b.bench("isaac_matvec_128x16", || isaac.matvec(&codes, 1.0));

    let w_map = polarized_matrix(128, 64, 8);
    b.bench("map_layer_128x64", || {
        MappedLayer::map(&w_map, mapping_config(8)).unwrap()
    });

    b.bench("shift_bank_drain_128", || {
        ShiftRegisterBank::load(&codes).drain()
    });

    let many_codes = input_codes(1 << 14);
    b.bench("eic_stats_16k_frag8", || eic_stats(&many_codes, 8, 16));

    let w_proj = Tensor::from_fn(&[256, 64], |i| ((i * 31 % 97) as f32 / 48.0) - 1.0);
    let constraints =
        forms_admm::LayerConstraints::full(0.5, 0.5, 8, forms_admm::PolarizationPolicy::WMajor, 8);
    b.bench("project_all_256x64", || {
        forms_admm::project_all(&w_proj, &constraints, None)
    });

    let p = forms_arch::Pipeline::new(16, true);
    let ops: Vec<forms_arch::PipelineOp> = (0..1000)
        .map(|i| forms_arch::PipelineOp {
            shift_cycles: (i % 16) as u32 + 1,
        })
        .collect();
    b.bench("pipeline_run_1000_ops", || p.run(&ops));
}
