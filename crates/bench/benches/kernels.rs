//! Criterion benches over the simulator kernels: the inner loops every
//! experiment binary exercises.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use forms_arch::{eic_stats, MappedLayer, MappingConfig, ShiftRegisterBank};
use forms_baselines::IsaacLayer;
use forms_reram::CellSpec;
use forms_tensor::Tensor;

fn polarized_matrix(rows: usize, cols: usize, fragment: usize) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| {
        let (r, c) = (i / cols, i % cols);
        let sign = if ((r / fragment) + c) % 2 == 0 {
            1.0
        } else {
            -1.0
        };
        sign * (0.05 + ((i * 13) % 11) as f32 / 16.0)
    })
}

fn mapping_config(fragment: usize) -> MappingConfig {
    MappingConfig {
        crossbar_dim: 128,
        fragment_size: fragment,
        weight_bits: 8,
        cell: CellSpec::paper_2bit(),
        input_bits: 16,
        zero_skipping: true,
    }
}

fn input_codes(n: usize) -> Vec<u32> {
    (0..n).map(|i| ((i * 37) % 1024) as u32).collect()
}

fn bench_mapped_matvec(c: &mut Criterion) {
    let w = polarized_matrix(128, 16, 8);
    let mapped = MappedLayer::map(&w, mapping_config(8)).unwrap();
    let codes = input_codes(128);
    c.bench_function("forms_matvec_128x16_frag8", |b| {
        b.iter(|| std::hint::black_box(mapped.matvec(&codes, 1.0)))
    });
}

fn bench_isaac_matvec(c: &mut Criterion) {
    let w = polarized_matrix(128, 16, 8);
    let isaac = IsaacLayer::map(&w, 8, 16);
    let codes = input_codes(128);
    c.bench_function("isaac_matvec_128x16", |b| {
        b.iter(|| std::hint::black_box(isaac.matvec(&codes, 1.0)))
    });
}

fn bench_mapping(c: &mut Criterion) {
    let w = polarized_matrix(128, 64, 8);
    c.bench_function("map_layer_128x64", |b| {
        b.iter(|| std::hint::black_box(MappedLayer::map(&w, mapping_config(8)).unwrap()))
    });
}

fn bench_shift_bank(c: &mut Criterion) {
    let codes = input_codes(128);
    c.bench_function("shift_bank_drain_128", |b| {
        b.iter_batched(
            || ShiftRegisterBank::load(&codes),
            |bank| std::hint::black_box(bank.drain()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_eic_stats(c: &mut Criterion) {
    let codes = input_codes(1 << 14);
    c.bench_function("eic_stats_16k_frag8", |b| {
        b.iter(|| std::hint::black_box(eic_stats(&codes, 8, 16)))
    });
}

fn bench_projections(c: &mut Criterion) {
    let w = Tensor::from_fn(&[256, 64], |i| ((i * 31 % 97) as f32 / 48.0) - 1.0);
    let constraints =
        forms_admm::LayerConstraints::full(0.5, 0.5, 8, forms_admm::PolarizationPolicy::WMajor, 8);
    c.bench_function("project_all_256x64", |b| {
        b.iter(|| std::hint::black_box(forms_admm::project_all(&w, &constraints, None)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let p = forms_arch::Pipeline::new(16, true);
    let ops: Vec<forms_arch::PipelineOp> = (0..1000)
        .map(|i| forms_arch::PipelineOp {
            shift_cycles: (i % 16) as u32 + 1,
        })
        .collect();
    c.bench_function("pipeline_run_1000_ops", |b| {
        b.iter(|| std::hint::black_box(p.run(&ops)))
    });
}

criterion_group!(
    benches,
    bench_mapped_matvec,
    bench_isaac_matvec,
    bench_mapping,
    bench_shift_bank,
    bench_eic_stats,
    bench_projections,
    bench_pipeline
);
criterion_main!(benches);
