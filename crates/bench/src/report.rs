//! Experiment reporting: aligned console tables plus JSON result files.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::json::JsonValue;

/// One regenerated table or figure.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Paper identifier, e.g. `"Table V"` or `"Fig. 8"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (substitutions, scaling caveats, observations).
    pub notes: Vec<String>,
}

impl Experiment {
    /// Creates an empty experiment.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a note.
    pub fn note(&mut self, note: &str) -> &mut Self {
        self.notes.push(note.to_string());
        self
    }

    /// Renders the experiment as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("| ");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:w$} | ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The experiment as a JSON value tree.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("id", JsonValue::String(self.id.clone())),
            ("title", JsonValue::String(self.title.clone())),
            ("headers", JsonValue::strings(&self.headers)),
            (
                "rows",
                JsonValue::Array(self.rows.iter().map(|r| JsonValue::strings(r)).collect()),
            ),
            ("notes", JsonValue::strings(&self.notes)),
        ])
    }

    /// Writes the experiment as JSON under `dir` (created if missing),
    /// named after the experiment id.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn save_json(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let name = self
            .id
            .to_lowercase()
            .replace(['.', ' '], "_")
            .replace("__", "_");
        let path = dir.join(format!("{name}.json"));
        fs::write(path, self.to_json().pretty())
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as `N.NN×`.
pub fn times(v: f64) -> String {
    format!("{v:.2}×")
}

/// Formats a fraction as a percentage with 2 decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut e = Experiment::new("Table X", "demo", &["name", "value"]);
        e.row(&["a".into(), "1".into()]);
        e.row(&["longer".into(), "2".into()]);
        let s = e.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("| longer | 2"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Experiment::new("T", "t", &["a", "b"]).row(&["only one".into()]);
    }

    #[test]
    fn save_json_round_trip() {
        let mut e = Experiment::new("Fig. 99", "json", &["k"]);
        e.row(&["v".into()]).note("n");
        let dir = std::env::temp_dir().join("forms_bench_test_results");
        e.save_json(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("fig_99.json")).unwrap();
        assert!(text.contains("\"Fig. 99\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(times(2.0), "2.00×");
        assert_eq!(pct(0.1234), "12.34%");
    }
}
