//! MVM hot-path throughput suite (`BENCH_mvm.json`).
//!
//! Gates the packed bit-plane kernel rework: measures single-MVM
//! throughput of the packed kernel against the legacy reference kernel
//! (kept in-tree as `matvec_reference`) on a Table-V-style layer shape,
//! for both the FORMS design and the ISAAC baseline, plus end-to-end
//! images/s through the executor serially and across worker threads.
//!
//! The suite writes `BENCH_mvm.json` at the repository root and the
//! `mvm` binary re-reads and validates the file with
//! [`crate::json::parse`] before exiting, so CI fails on malformed
//! output.

use forms_arch::{Accelerator, AcceleratorConfig, MappedLayer, MappingConfig, MvmScratch};
use forms_baselines::{IsaacAccelerator, IsaacConfig, IsaacLayer, IsaacScratch};
use forms_dnn::{Layer, Network, WeightLayerMut};
use forms_reram::CellSpec;
use forms_rng::{Rng, StdRng};
use forms_tensor::Tensor;

use crate::json::JsonValue;
use crate::timing::{BenchConfig, Bencher};

/// How many distinct random input vectors each kernel cycles through, so
/// timings are not flattered by a single cached activation pattern.
const INPUT_ROTATION: usize = 8;

/// Shapes and configurations for one suite run.
#[derive(Clone, Debug)]
pub struct MvmBenchSpec {
    /// `"full"` or `"smoke"` — recorded in the JSON document.
    pub mode: &'static str,
    /// Human-readable label of the benchmarked layer shape.
    pub layer_label: &'static str,
    /// Lowered weight-matrix rows of the benchmarked layer.
    pub rows: usize,
    /// Lowered weight-matrix columns of the benchmarked layer.
    pub cols: usize,
    /// FORMS mapping parameters for the kernel bench.
    pub mapping: MappingConfig,
    /// Images per batch for the end-to-end executor bench.
    pub batch: usize,
    /// Worker threads for the parallel executor bench.
    pub workers: usize,
    /// Timing-harness configuration.
    pub timing: BenchConfig,
}

impl MvmBenchSpec {
    /// The real measurement point: a VGG-style `3x3x128 -> 128` conv layer
    /// (1152x128 lowered matrix, as in the paper's Table V workloads) at
    /// the paper's 128x128-crossbar configuration.
    pub fn full() -> Self {
        Self {
            mode: "full",
            layer_label: "VGG conv 3x3x128->128 (Table-V style, 1152x128 lowered)",
            rows: 1152,
            cols: 128,
            mapping: MappingConfig::paper(8),
            batch: 8,
            workers: worker_count(),
            timing: BenchConfig::from_env(),
        }
    }

    /// A seconds-scale variant for CI: tiny shapes, fast timing batches,
    /// same code paths and JSON schema as [`full`](Self::full).
    pub fn smoke() -> Self {
        Self {
            mode: "smoke",
            layer_label: "smoke conv 3x3x8->8 (72x8 lowered)",
            rows: 72,
            cols: 8,
            mapping: MappingConfig {
                crossbar_dim: 16,
                fragment_size: 4,
                weight_bits: 8,
                cell: CellSpec::paper_2bit(),
                input_bits: 8,
                zero_skipping: true,
            },
            batch: 4,
            workers: 2,
            timing: BenchConfig::fast(),
        }
    }
}

fn worker_count() -> usize {
    // At least two workers, so the parallel path (scoped threads sharing
    // the engines immutably) is exercised even on a single-core host.
    std::thread::available_parallelism()
        .map(|n| n.get().clamp(2, 8))
        .unwrap_or(2)
}

/// A dense polarized weight matrix: the sign is constant within every
/// `(fragment, column)` group, magnitudes vary deterministically.
pub fn polarized_matrix(rows: usize, cols: usize, fragment: usize) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| {
        let (r, c) = (i / cols, i % cols);
        let sign = if ((r / fragment) + c).is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        sign * (0.05 + ((r * 31 + c * 17) % 13) as f32 * 0.07)
    })
}

/// Polarizes every weight layer of a network in place with the ADMM
/// projection, iterated to a fixed point so it can be mapped onto FORMS.
pub fn polarize_network(net: &mut Network, fragment: usize) {
    net.for_each_weight_layer(&mut |wl| {
        let mut z = match &wl {
            WeightLayerMut::Conv(c) => c.weight_matrix(),
            WeightLayerMut::Linear(l) => l.weight_matrix(),
        };
        while forms_admm::polarization_violations(&z, fragment) > 0 {
            let signs = forms_admm::fragment_signs(&z, fragment);
            z = forms_admm::project_polarization(&z, fragment, &signs);
        }
        match wl {
            WeightLayerMut::Conv(c) => c.set_weight_matrix(&z),
            WeightLayerMut::Linear(l) => l.set_weight_matrix(&z),
        }
    });
}

/// The small CNN used for the end-to-end images/s measurement.
fn bench_network(spec: &MvmBenchSpec, rng: &mut StdRng) -> (Network, Tensor) {
    let (c, hw, f) = if spec.mode == "full" {
        (3, 16, 8)
    } else {
        (1, 8, 4)
    };
    let pooled = hw / 2;
    let net = Network::new(vec![
        Layer::conv2d(rng, c, f, 3, 1, 1),
        Layer::relu(),
        Layer::max_pool(2),
        Layer::flatten(),
        Layer::linear(rng, f * pooled * pooled, 10),
    ]);
    let x = Tensor::from_fn(&[spec.batch, c, hw, hw], |i| ((i * 7) % 11) as f32 / 11.0);
    (net, x)
}

fn random_codes(n: usize, bits: u32, rng: &mut StdRng) -> Vec<Vec<u32>> {
    (0..INPUT_ROTATION)
        .map(|_| (0..n).map(|_| rng.next_u32() & ((1 << bits) - 1)).collect())
        .collect()
}

/// One kernel measurement: design, kernel flavour, and throughput.
#[derive(Clone, Debug)]
pub struct KernelResult {
    /// `"FORMS"` or `"ISAAC"`.
    pub design: &'static str,
    /// `"packed"` (new hot path) or `"reference"` (legacy kernel).
    pub kernel: &'static str,
    /// Median (p50) nanoseconds per MVM.
    pub ns_per_mvm: f64,
    /// 95th-percentile nanoseconds per MVM across timing batches.
    pub p95_ns_per_mvm: f64,
    /// MVMs per second implied by the median.
    pub mvms_per_s: f64,
}

/// One end-to-end measurement: design, execution mode, and images/s.
#[derive(Clone, Debug)]
pub struct ImageResult {
    /// `"FORMS"` or `"ISAAC"`.
    pub design: &'static str,
    /// `"serial"` or `"parallel"`.
    pub exec: &'static str,
    /// Worker threads used (1 for serial).
    pub workers: usize,
    /// Images per second through the executor (from the median batch).
    pub images_per_s: f64,
    /// Images per second at the 95th-percentile (slowest-tail) batch.
    pub p95_images_per_s: f64,
}

/// Everything a suite run produces.
#[derive(Clone, Debug)]
pub struct MvmBenchReport {
    /// The spec the run used.
    pub spec: MvmBenchSpec,
    /// Per-kernel throughput results.
    pub kernels: Vec<KernelResult>,
    /// End-to-end images/s results.
    pub images: Vec<ImageResult>,
}

impl MvmBenchReport {
    /// Packed-over-reference MVM throughput ratio for a design, if both
    /// kernels were measured.
    pub fn speedup(&self, design: &str) -> Option<f64> {
        let find = |kernel: &str| {
            self.kernels
                .iter()
                .find(|k| k.design == design && k.kernel == kernel)
                .map(|k| k.mvms_per_s)
        };
        Some(find("packed")? / find("reference")?)
    }

    /// Renders the report as the `BENCH_mvm.json` document.
    pub fn to_json(&self) -> JsonValue {
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                JsonValue::object(vec![
                    ("design", JsonValue::String(k.design.into())),
                    ("kernel", JsonValue::String(k.kernel.into())),
                    ("ns_per_mvm", JsonValue::Number(k.ns_per_mvm)),
                    ("p95_ns_per_mvm", JsonValue::Number(k.p95_ns_per_mvm)),
                    ("mvms_per_s", JsonValue::Number(k.mvms_per_s)),
                ])
            })
            .collect();
        let images = self
            .images
            .iter()
            .map(|r| {
                JsonValue::object(vec![
                    ("design", JsonValue::String(r.design.into())),
                    ("exec", JsonValue::String(r.exec.into())),
                    ("workers", JsonValue::Number(r.workers as f64)),
                    ("images_per_s", JsonValue::Number(r.images_per_s)),
                    ("p95_images_per_s", JsonValue::Number(r.p95_images_per_s)),
                ])
            })
            .collect();
        let mut speedup = Vec::new();
        for design in ["FORMS", "ISAAC"] {
            if let Some(s) = self.speedup(design) {
                speedup.push((design, JsonValue::Number(s)));
            }
        }
        JsonValue::object(vec![
            ("bench", JsonValue::String("mvm".into())),
            ("mode", JsonValue::String(self.spec.mode.into())),
            (
                "layer",
                JsonValue::object(vec![
                    ("label", JsonValue::String(self.spec.layer_label.into())),
                    ("rows", JsonValue::Number(self.spec.rows as f64)),
                    ("cols", JsonValue::Number(self.spec.cols as f64)),
                ]),
            ),
            ("mvm", JsonValue::Array(kernels)),
            ("speedup_packed_over_reference", JsonValue::object(speedup)),
            ("images", JsonValue::Array(images)),
        ])
    }
}

/// Runs the whole suite for a spec.
///
/// # Panics
///
/// Panics if the benchmark layer cannot be mapped (a bug in the spec).
pub fn run(spec: &MvmBenchSpec) -> MvmBenchReport {
    let mut rng = StdRng::seed_from_u64(0xF0435);
    let mut bencher = Bencher::with_config(spec.timing);

    // --- single-layer MVM kernels -----------------------------------
    let matrix = polarized_matrix(spec.rows, spec.cols, spec.mapping.fragment_size);
    let forms = MappedLayer::map(&matrix, spec.mapping).expect("bench layer maps");
    let isaac = IsaacLayer::map_with(
        &matrix,
        spec.mapping.weight_bits,
        spec.mapping.input_bits,
        spec.mapping.crossbar_dim,
        spec.mapping.cell,
    )
    .expect("bench layer maps on ISAAC");
    let inputs = random_codes(spec.rows, spec.mapping.input_bits, &mut rng);
    let scale = 1.0 / (1 << spec.mapping.input_bits) as f32;

    let mut kernels = Vec::new();
    {
        let mut scratch = MvmScratch::default();
        let mut out = vec![0.0f32; spec.cols];
        let mut i = 0;
        let r = bencher.bench("forms/packed", || {
            let codes = &inputs[i % INPUT_ROTATION];
            i += 1;
            forms.matvec_into(codes, scale, &mut scratch, &mut out)
        });
        kernels.push(kernel_result("FORMS", "packed", r));
    }
    {
        let mut i = 0;
        let r = bencher.bench("forms/reference", || {
            let codes = &inputs[i % INPUT_ROTATION];
            i += 1;
            forms.matvec_reference(codes, scale)
        });
        kernels.push(kernel_result("FORMS", "reference", r));
    }
    {
        let mut scratch = IsaacScratch::default();
        let mut out = vec![0.0f32; isaac.output_len()];
        let mut i = 0;
        let r = bencher.bench("isaac/packed", || {
            let codes = &inputs[i % INPUT_ROTATION];
            i += 1;
            isaac.matvec_into(codes, scale, &mut scratch, &mut out)
        });
        kernels.push(kernel_result("ISAAC", "packed", r));
    }
    {
        let mut i = 0;
        let r = bencher.bench("isaac/reference", || {
            let codes = &inputs[i % INPUT_ROTATION];
            i += 1;
            isaac.matvec_reference(codes, scale)
        });
        kernels.push(kernel_result("ISAAC", "reference", r));
    }

    // --- end-to-end images/s ----------------------------------------
    let (mut net, x) = bench_network(spec, &mut rng);
    polarize_network(&mut net, spec.mapping.fragment_size);
    let acc_config = AcceleratorConfig {
        mapping: spec.mapping,
        activation_bits: spec.mapping.input_bits,
    };
    let mut forms_acc = Accelerator::map_network(&net, acc_config).expect("bench net maps");
    let isaac_config = IsaacConfig {
        crossbar_dim: spec.mapping.crossbar_dim,
        cell: spec.mapping.cell,
        weight_bits: spec.mapping.weight_bits,
        input_bits: spec.mapping.input_bits,
    };
    let mut isaac_acc =
        IsaacAccelerator::map_network(&net, isaac_config).expect("bench net maps on ISAAC");

    let mut images = Vec::new();
    let batch = spec.batch as f64;
    let workers = spec.workers;
    {
        let r = bencher.bench("forms/images/serial", || forms_acc.forward(&x));
        images.push(image_result("FORMS", "serial", 1, batch, r));
    }
    {
        let r = bencher.bench("forms/images/parallel", || {
            forms_acc.forward_parallel(&x, workers)
        });
        images.push(image_result("FORMS", "parallel", workers, batch, r));
    }
    {
        let r = bencher.bench("isaac/images/serial", || isaac_acc.forward(&x));
        images.push(image_result("ISAAC", "serial", 1, batch, r));
    }
    {
        let r = bencher.bench("isaac/images/parallel", || {
            isaac_acc.forward_parallel(&x, workers)
        });
        images.push(image_result("ISAAC", "parallel", workers, batch, r));
    }

    MvmBenchReport {
        spec: spec.clone(),
        kernels,
        images,
    }
}

fn kernel_result(
    design: &'static str,
    kernel: &'static str,
    timing: &crate::timing::BenchResult,
) -> KernelResult {
    KernelResult {
        design,
        kernel,
        ns_per_mvm: timing.p50_ns(),
        p95_ns_per_mvm: timing.p95_ns(),
        mvms_per_s: 1e9 / timing.p50_ns(),
    }
}

fn image_result(
    design: &'static str,
    exec: &'static str,
    workers: usize,
    batch: f64,
    timing: &crate::timing::BenchResult,
) -> ImageResult {
    ImageResult {
        design,
        exec,
        workers,
        images_per_s: batch * 1e9 / timing.p50_ns(),
        p95_images_per_s: batch * 1e9 / timing.p95_ns(),
    }
}

/// Checks that a parsed `BENCH_mvm.json` document has the shape this
/// suite writes: required top-level fields, all four kernel rows with
/// positive finite throughput, and at least one serial and one parallel
/// images/s row per design.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate(doc: &JsonValue) -> Result<(), String> {
    if doc.get("bench").and_then(JsonValue::as_str) != Some("mvm") {
        return Err("missing or wrong `bench` field".into());
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        _ => return Err("`mode` must be \"full\" or \"smoke\"".into()),
    }
    let layer = doc.get("layer").ok_or("missing `layer` object")?;
    for key in ["rows", "cols"] {
        let v = layer
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric `layer.{key}`"))?;
        if !(v.is_finite() && v >= 1.0) {
            return Err(format!("`layer.{key}` must be a positive count"));
        }
    }
    let kernels = doc
        .get("mvm")
        .and_then(JsonValue::as_array)
        .ok_or("missing `mvm` array")?;
    for design in ["FORMS", "ISAAC"] {
        for kernel in ["packed", "reference"] {
            let row = kernels
                .iter()
                .find(|k| {
                    k.get("design").and_then(JsonValue::as_str) == Some(design)
                        && k.get("kernel").and_then(JsonValue::as_str) == Some(kernel)
                })
                .ok_or_else(|| format!("missing mvm row for {design}/{kernel}"))?;
            for field in ["mvms_per_s", "p95_ns_per_mvm"] {
                let rate = row
                    .get(field)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("missing `{field}` for {design}/{kernel}"))?;
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(format!("non-positive `{field}` for {design}/{kernel}"));
                }
            }
        }
    }
    let images = doc
        .get("images")
        .and_then(JsonValue::as_array)
        .ok_or("missing `images` array")?;
    for design in ["FORMS", "ISAAC"] {
        for exec in ["serial", "parallel"] {
            let row = images
                .iter()
                .find(|r| {
                    r.get("design").and_then(JsonValue::as_str) == Some(design)
                        && r.get("exec").and_then(JsonValue::as_str) == Some(exec)
                })
                .ok_or_else(|| format!("missing images row for {design}/{exec}"))?;
            let rate = row
                .get("images_per_s")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing `images_per_s` for {design}/{exec}"))?;
            if !(rate.is_finite() && rate > 0.0) {
                return Err(format!("non-positive `images_per_s` for {design}/{exec}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn smoke_report_round_trips_and_validates() {
        let report = run(&MvmBenchSpec::smoke());
        let doc = report.to_json();
        validate(&doc).unwrap();
        let reparsed = parse(&doc.pretty()).unwrap();
        validate(&reparsed).unwrap();
        assert_eq!(reparsed, doc);
        assert!(report.speedup("FORMS").unwrap() > 0.0);
        assert!(report.speedup("ISAAC").unwrap() > 0.0);
    }

    #[test]
    fn validate_rejects_broken_documents() {
        let report = run(&MvmBenchSpec::smoke());
        let good = report.to_json();
        validate(&good).unwrap();
        // Drop a required top-level field.
        let JsonValue::Object(fields) = &good else {
            panic!("report is an object")
        };
        for missing in ["bench", "mode", "layer", "mvm", "images"] {
            let broken = JsonValue::Object(
                fields
                    .iter()
                    .filter(|(k, _)| k.as_str() != missing)
                    .cloned()
                    .collect(),
            );
            assert!(validate(&broken).is_err(), "accepted doc without {missing}");
        }
        assert!(validate(&JsonValue::Null).is_err());
    }
}
