//! MVM hot-path throughput suite (`BENCH_mvm.json`).
//!
//! Gates the packed bit-plane kernel rework: measures single-MVM
//! throughput of the packed kernel against the legacy reference kernel
//! (kept in-tree as `matvec_reference`) on a Table-V-style layer shape,
//! for both the FORMS design and the ISAAC baseline, plus end-to-end
//! images/s through the executor serially and across worker threads.
//!
//! The suite writes `BENCH_mvm.json` at the repository root and the
//! `mvm` binary re-reads and validates the file with
//! [`crate::json::parse`] before exiting, so CI fails on malformed
//! output.

use forms_arch::{Accelerator, AcceleratorConfig, MappedLayer, MappingConfig, MvmScratch};
use forms_baselines::{IsaacAccelerator, IsaacConfig, IsaacLayer, IsaacScratch};
use forms_dnn::{Layer, Network, WeightLayerMut};
use forms_reram::CellSpec;
use forms_rng::{Rng, StdRng};
use forms_tensor::Tensor;

use crate::json::JsonValue;
use crate::timing::{BenchConfig, Bencher};

/// How many distinct random input vectors each kernel cycles through, so
/// timings are not flattered by a single cached activation pattern.
const INPUT_ROTATION: usize = 8;

/// Shapes and configurations for one suite run.
#[derive(Clone, Debug)]
pub struct MvmBenchSpec {
    /// `"full"` or `"smoke"` — recorded in the JSON document.
    pub mode: &'static str,
    /// Human-readable label of the benchmarked layer shape.
    pub layer_label: &'static str,
    /// Lowered weight-matrix rows of the benchmarked layer.
    pub rows: usize,
    /// Lowered weight-matrix columns of the benchmarked layer.
    pub cols: usize,
    /// FORMS mapping parameters for the kernel bench.
    pub mapping: MappingConfig,
    /// Images per batch for the end-to-end executor bench.
    pub batch: usize,
    /// Batch sizes swept by the batched `matmul_into` kernel bench.
    pub batch_sweep: Vec<usize>,
    /// Worker threads for the parallel executor bench.
    pub workers: usize,
    /// Timing-harness configuration.
    pub timing: BenchConfig,
}

impl MvmBenchSpec {
    /// The real measurement point: a VGG-style `3x3x128 -> 128` conv layer
    /// (1152x128 lowered matrix, as in the paper's Table V workloads) at
    /// the paper's 128x128-crossbar configuration.
    pub fn full() -> Self {
        Self {
            mode: "full",
            layer_label: "VGG conv 3x3x128->128 (Table-V style, 1152x128 lowered)",
            rows: 1152,
            cols: 128,
            mapping: MappingConfig::paper(8),
            batch: 8,
            batch_sweep: vec![8, 32],
            workers: worker_count(),
            timing: BenchConfig::from_env(),
        }
    }

    /// A seconds-scale variant for CI: tiny shapes, fast timing batches,
    /// same code paths and JSON schema as [`full`](Self::full).
    pub fn smoke() -> Self {
        Self {
            mode: "smoke",
            layer_label: "smoke conv 3x3x8->8 (72x8 lowered)",
            rows: 72,
            cols: 8,
            mapping: MappingConfig {
                crossbar_dim: 16,
                fragment_size: 4,
                weight_bits: 8,
                cell: CellSpec::paper_2bit(),
                input_bits: 8,
                zero_skipping: true,
            },
            batch: 4,
            batch_sweep: vec![2, 4],
            workers: 2,
            timing: BenchConfig::fast(),
        }
    }
}

fn worker_count() -> usize {
    // At least two workers, so the parallel path (scoped threads sharing
    // the engines immutably) is exercised even on a single-core host.
    std::thread::available_parallelism()
        .map(|n| n.get().clamp(2, 8))
        .unwrap_or(2)
}

/// A dense polarized weight matrix: the sign is constant within every
/// `(fragment, column)` group, magnitudes vary deterministically.
pub fn polarized_matrix(rows: usize, cols: usize, fragment: usize) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| {
        let (r, c) = (i / cols, i % cols);
        let sign = if ((r / fragment) + c).is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        sign * (0.05 + ((r * 31 + c * 17) % 13) as f32 * 0.07)
    })
}

/// Polarizes every weight layer of a network in place with the ADMM
/// projection, iterated to a fixed point so it can be mapped onto FORMS.
pub fn polarize_network(net: &mut Network, fragment: usize) {
    net.for_each_weight_layer(&mut |wl| {
        let mut z = match &wl {
            WeightLayerMut::Conv(c) => c.weight_matrix(),
            WeightLayerMut::Linear(l) => l.weight_matrix(),
        };
        while forms_admm::polarization_violations(&z, fragment) > 0 {
            let signs = forms_admm::fragment_signs(&z, fragment);
            z = forms_admm::project_polarization(&z, fragment, &signs);
        }
        match wl {
            WeightLayerMut::Conv(c) => c.set_weight_matrix(&z),
            WeightLayerMut::Linear(l) => l.set_weight_matrix(&z),
        }
    });
}

/// The small CNN used for the end-to-end images/s measurement.
fn bench_network(spec: &MvmBenchSpec, rng: &mut StdRng) -> (Network, Tensor) {
    let (c, hw, f) = if spec.mode == "full" {
        (3, 16, 8)
    } else {
        (1, 8, 4)
    };
    let pooled = hw / 2;
    let net = Network::new(vec![
        Layer::conv2d(rng, c, f, 3, 1, 1),
        Layer::relu(),
        Layer::max_pool(2),
        Layer::flatten(),
        Layer::linear(rng, f * pooled * pooled, 10),
    ]);
    let x = Tensor::from_fn(&[spec.batch, c, hw, hw], |i| ((i * 7) % 11) as f32 / 11.0);
    (net, x)
}

fn random_codes(n: usize, bits: u32, rng: &mut StdRng) -> Vec<Vec<u32>> {
    (0..INPUT_ROTATION)
        .map(|_| (0..n).map(|_| rng.next_u32() & ((1 << bits) - 1)).collect())
        .collect()
}

/// One kernel measurement: design, kernel flavour, and throughput.
#[derive(Clone, Debug)]
pub struct KernelResult {
    /// `"FORMS"` or `"ISAAC"`.
    pub design: &'static str,
    /// `"packed"` (per-sample hot path), `"reference"` (legacy kernel) or
    /// `"batched"` (the blocked weight-stationary `matmul_into` kernel).
    pub kernel: &'static str,
    /// Input vectors per kernel call: 1 for per-sample kernels, the
    /// swept batch size for `"batched"` rows.
    pub batch: usize,
    /// Median (p50) nanoseconds per MVM.
    pub ns_per_mvm: f64,
    /// 95th-percentile nanoseconds per MVM across timing batches.
    pub p95_ns_per_mvm: f64,
    /// MVMs per second implied by the median.
    pub mvms_per_s: f64,
}

/// One end-to-end measurement: design, execution mode, and images/s.
#[derive(Clone, Debug)]
pub struct ImageResult {
    /// `"FORMS"` or `"ISAAC"`.
    pub design: &'static str,
    /// `"serial"` or `"parallel"`.
    pub exec: &'static str,
    /// Worker threads used (1 for serial).
    pub workers: usize,
    /// Images per second through the executor (from the median batch).
    pub images_per_s: f64,
    /// Images per second at the 95th-percentile (slowest-tail) batch.
    pub p95_images_per_s: f64,
}

/// Everything a suite run produces.
#[derive(Clone, Debug)]
pub struct MvmBenchReport {
    /// The spec the run used.
    pub spec: MvmBenchSpec,
    /// Per-kernel throughput results.
    pub kernels: Vec<KernelResult>,
    /// End-to-end images/s results.
    pub images: Vec<ImageResult>,
}

impl MvmBenchReport {
    /// Packed-over-reference MVM throughput ratio for a design, if both
    /// kernels were measured.
    pub fn speedup(&self, design: &str) -> Option<f64> {
        let find = |kernel: &str| {
            self.kernels
                .iter()
                .find(|k| k.design == design && k.kernel == kernel)
                .map(|k| k.mvms_per_s)
        };
        Some(find("packed")? / find("reference")?)
    }

    /// Batched-over-packed MVM throughput ratio for a design at the
    /// largest swept batch size, if both kernels were measured.
    pub fn speedup_batched(&self, design: &str) -> Option<f64> {
        let batched = self
            .kernels
            .iter()
            .filter(|k| k.design == design && k.kernel == "batched")
            .max_by_key(|k| k.batch)
            .map(|k| k.mvms_per_s)?;
        let packed = self
            .kernels
            .iter()
            .find(|k| k.design == design && k.kernel == "packed")
            .map(|k| k.mvms_per_s)?;
        Some(batched / packed)
    }

    /// Renders the report as the `BENCH_mvm.json` document.
    pub fn to_json(&self) -> JsonValue {
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                JsonValue::object(vec![
                    ("design", JsonValue::String(k.design.into())),
                    ("kernel", JsonValue::String(k.kernel.into())),
                    ("batch", JsonValue::Number(k.batch as f64)),
                    ("ns_per_mvm", JsonValue::Number(k.ns_per_mvm)),
                    ("p95_ns_per_mvm", JsonValue::Number(k.p95_ns_per_mvm)),
                    ("mvms_per_s", JsonValue::Number(k.mvms_per_s)),
                ])
            })
            .collect();
        let images = self
            .images
            .iter()
            .map(|r| {
                JsonValue::object(vec![
                    ("design", JsonValue::String(r.design.into())),
                    ("exec", JsonValue::String(r.exec.into())),
                    ("workers", JsonValue::Number(r.workers as f64)),
                    ("images_per_s", JsonValue::Number(r.images_per_s)),
                    ("p95_images_per_s", JsonValue::Number(r.p95_images_per_s)),
                ])
            })
            .collect();
        let mut speedup = Vec::new();
        let mut speedup_batched = Vec::new();
        for design in ["FORMS", "ISAAC"] {
            if let Some(s) = self.speedup(design) {
                speedup.push((design, JsonValue::Number(s)));
            }
            if let Some(s) = self.speedup_batched(design) {
                speedup_batched.push((design, JsonValue::Number(s)));
            }
        }
        JsonValue::object(vec![
            ("bench", JsonValue::String("mvm".into())),
            ("mode", JsonValue::String(self.spec.mode.into())),
            (
                "layer",
                JsonValue::object(vec![
                    ("label", JsonValue::String(self.spec.layer_label.into())),
                    ("rows", JsonValue::Number(self.spec.rows as f64)),
                    ("cols", JsonValue::Number(self.spec.cols as f64)),
                ]),
            ),
            ("mvm", JsonValue::Array(kernels)),
            ("speedup_packed_over_reference", JsonValue::object(speedup)),
            (
                "speedup_batched_over_packed",
                JsonValue::object(speedup_batched),
            ),
            ("images", JsonValue::Array(images)),
        ])
    }
}

/// Runs the whole suite for a spec.
///
/// # Panics
///
/// Panics if the benchmark layer cannot be mapped (a bug in the spec).
pub fn run(spec: &MvmBenchSpec) -> MvmBenchReport {
    let mut rng = StdRng::seed_from_u64(0xF0435);
    let mut bencher = Bencher::with_config(spec.timing);

    // --- single-layer MVM kernels -----------------------------------
    let matrix = polarized_matrix(spec.rows, spec.cols, spec.mapping.fragment_size);
    let forms = MappedLayer::map(&matrix, spec.mapping).expect("bench layer maps");
    let isaac = IsaacLayer::map_with(
        &matrix,
        spec.mapping.weight_bits,
        spec.mapping.input_bits,
        spec.mapping.crossbar_dim,
        spec.mapping.cell,
    )
    .expect("bench layer maps on ISAAC");
    let inputs = random_codes(spec.rows, spec.mapping.input_bits, &mut rng);
    let scale = 1.0 / (1 << spec.mapping.input_bits) as f32;

    let mut kernels = Vec::new();
    {
        let mut scratch = MvmScratch::default();
        let mut out = vec![0.0f32; spec.cols];
        let mut i = 0;
        let r = bencher.bench("forms/packed", || {
            let codes = &inputs[i % INPUT_ROTATION];
            i += 1;
            forms.matvec_into(codes, scale, &mut scratch, &mut out)
        });
        kernels.push(kernel_result("FORMS", "packed", r));
    }
    {
        let mut i = 0;
        let r = bencher.bench("forms/reference", || {
            let codes = &inputs[i % INPUT_ROTATION];
            i += 1;
            forms.matvec_reference(codes, scale)
        });
        kernels.push(kernel_result("FORMS", "reference", r));
    }
    {
        let mut scratch = IsaacScratch::default();
        let mut out = vec![0.0f32; isaac.output_len()];
        let mut i = 0;
        let r = bencher.bench("isaac/packed", || {
            let codes = &inputs[i % INPUT_ROTATION];
            i += 1;
            isaac.matvec_into(codes, scale, &mut scratch, &mut out)
        });
        kernels.push(kernel_result("ISAAC", "packed", r));
    }
    {
        let mut i = 0;
        let r = bencher.bench("isaac/reference", || {
            let codes = &inputs[i % INPUT_ROTATION];
            i += 1;
            isaac.matvec_reference(codes, scale)
        });
        kernels.push(kernel_result("ISAAC", "reference", r));
    }

    // --- batched matmul kernels -------------------------------------
    for &b in &spec.batch_sweep {
        // Rotated batched inputs: each buffer concatenates `b` consecutive
        // rotation vectors, so the batched kernel sees the same activation
        // diversity as the per-sample rows.
        let batches: Vec<Vec<u32>> = (0..INPUT_ROTATION)
            .map(|r| {
                (0..b)
                    .flat_map(|s| inputs[(r + s) % INPUT_ROTATION].iter().copied())
                    .collect()
            })
            .collect();
        let scales = vec![scale; b];
        {
            let mut scratch = MvmScratch::default();
            let mut out = vec![0.0f32; b * spec.cols];
            let mut i = 0;
            let r = bencher.bench(&format!("forms/batched/b{b}"), || {
                let codes = &batches[i % INPUT_ROTATION];
                i += 1;
                forms.matmul_into(codes, &scales, &mut scratch, &mut out)
            });
            kernels.push(batched_kernel_result("FORMS", b, r));
        }
        {
            let mut scratch = IsaacScratch::default();
            let mut out = vec![0.0f32; b * isaac.output_len()];
            let mut i = 0;
            let r = bencher.bench(&format!("isaac/batched/b{b}"), || {
                let codes = &batches[i % INPUT_ROTATION];
                i += 1;
                isaac.matmul_into(codes, &scales, &mut scratch, &mut out)
            });
            kernels.push(batched_kernel_result("ISAAC", b, r));
        }
    }

    // --- end-to-end images/s ----------------------------------------
    let (mut net, x) = bench_network(spec, &mut rng);
    polarize_network(&mut net, spec.mapping.fragment_size);
    let acc_config = AcceleratorConfig {
        mapping: spec.mapping,
        activation_bits: spec.mapping.input_bits,
    };
    let mut forms_acc = Accelerator::map_network(&net, acc_config).expect("bench net maps");
    let isaac_config = IsaacConfig {
        crossbar_dim: spec.mapping.crossbar_dim,
        cell: spec.mapping.cell,
        weight_bits: spec.mapping.weight_bits,
        input_bits: spec.mapping.input_bits,
    };
    let mut isaac_acc =
        IsaacAccelerator::map_network(&net, isaac_config).expect("bench net maps on ISAAC");

    let mut images = Vec::new();
    let batch = spec.batch as f64;
    let workers = spec.workers;
    {
        let r = bencher.bench("forms/images/serial", || forms_acc.forward(&x));
        images.push(image_result("FORMS", "serial", 1, batch, r));
    }
    {
        let r = bencher.bench("forms/images/batched", || forms_acc.forward_batched(&x));
        images.push(image_result("FORMS", "batched", 1, batch, r));
    }
    {
        let r = bencher.bench("forms/images/parallel", || {
            forms_acc.forward_parallel(&x, workers)
        });
        images.push(image_result("FORMS", "parallel", workers, batch, r));
    }
    {
        let r = bencher.bench("isaac/images/serial", || isaac_acc.forward(&x));
        images.push(image_result("ISAAC", "serial", 1, batch, r));
    }
    {
        let r = bencher.bench("isaac/images/batched", || isaac_acc.forward_batched(&x));
        images.push(image_result("ISAAC", "batched", 1, batch, r));
    }
    {
        let r = bencher.bench("isaac/images/parallel", || {
            isaac_acc.forward_parallel(&x, workers)
        });
        images.push(image_result("ISAAC", "parallel", workers, batch, r));
    }

    MvmBenchReport {
        spec: spec.clone(),
        kernels,
        images,
    }
}

fn kernel_result(
    design: &'static str,
    kernel: &'static str,
    timing: &crate::timing::BenchResult,
) -> KernelResult {
    KernelResult {
        design,
        kernel,
        batch: 1,
        ns_per_mvm: timing.p50_ns(),
        p95_ns_per_mvm: timing.p95_ns(),
        mvms_per_s: 1e9 / timing.p50_ns(),
    }
}

/// A batched `matmul_into` measurement normalized to per-MVM cost: one
/// kernel call covers `batch` vectors.
fn batched_kernel_result(
    design: &'static str,
    batch: usize,
    timing: &crate::timing::BenchResult,
) -> KernelResult {
    let b = batch as f64;
    KernelResult {
        design,
        kernel: "batched",
        batch,
        ns_per_mvm: timing.p50_ns() / b,
        p95_ns_per_mvm: timing.p95_ns() / b,
        mvms_per_s: b * 1e9 / timing.p50_ns(),
    }
}

fn image_result(
    design: &'static str,
    exec: &'static str,
    workers: usize,
    batch: f64,
    timing: &crate::timing::BenchResult,
) -> ImageResult {
    ImageResult {
        design,
        exec,
        workers,
        images_per_s: batch * 1e9 / timing.p50_ns(),
        p95_images_per_s: batch * 1e9 / timing.p95_ns(),
    }
}

/// Checks that a parsed `BENCH_mvm.json` document has the shape this
/// suite writes — required top-level fields, all per-sample kernel rows
/// with positive finite throughput, at least one batched kernel row per
/// design, and serial / batched / parallel images/s rows per design —
/// and enforces the batched-hot-path performance gates:
///
/// - per design, the batched kernel at its largest swept batch must not
///   be slower per MVM than the per-sample packed kernel;
/// - per design, batched images/s must be at least the serial
///   (per-sample) images/s;
/// - per design, parallel images/s at ≥ 2 workers must be at least
///   1.2× serial images/s (the work-stealing workers run the batched
///   kernel, so this holds even on a single core).
///
/// # Errors
///
/// Returns a description of the first structural problem or gate
/// violation found.
pub fn validate(doc: &JsonValue) -> Result<(), String> {
    if doc.get("bench").and_then(JsonValue::as_str) != Some("mvm") {
        return Err("missing or wrong `bench` field".into());
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        _ => return Err("`mode` must be \"full\" or \"smoke\"".into()),
    }
    let layer = doc.get("layer").ok_or("missing `layer` object")?;
    for key in ["rows", "cols"] {
        let v = layer
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric `layer.{key}`"))?;
        if !(v.is_finite() && v >= 1.0) {
            return Err(format!("`layer.{key}` must be a positive count"));
        }
    }
    let kernels = doc
        .get("mvm")
        .and_then(JsonValue::as_array)
        .ok_or("missing `mvm` array")?;
    for design in ["FORMS", "ISAAC"] {
        for kernel in ["packed", "reference"] {
            let row = kernels
                .iter()
                .find(|k| {
                    k.get("design").and_then(JsonValue::as_str) == Some(design)
                        && k.get("kernel").and_then(JsonValue::as_str) == Some(kernel)
                })
                .ok_or_else(|| format!("missing mvm row for {design}/{kernel}"))?;
            for field in ["mvms_per_s", "p95_ns_per_mvm"] {
                let rate = row
                    .get(field)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("missing `{field}` for {design}/{kernel}"))?;
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(format!("non-positive `{field}` for {design}/{kernel}"));
                }
            }
        }
    }
    // Batched kernel rows: at least one per design, every row positive
    // with a batch of at least 2, and the largest-batch row at least as
    // fast per MVM as the per-sample packed kernel.
    for design in ["FORMS", "ISAAC"] {
        let packed = kernels
            .iter()
            .find(|k| {
                k.get("design").and_then(JsonValue::as_str) == Some(design)
                    && k.get("kernel").and_then(JsonValue::as_str) == Some("packed")
            })
            .and_then(|k| k.get("mvms_per_s"))
            .and_then(JsonValue::as_f64)
            .expect("packed row checked above");
        let mut best: Option<(f64, f64)> = None; // (batch, mvms_per_s)
        for row in kernels.iter().filter(|k| {
            k.get("design").and_then(JsonValue::as_str) == Some(design)
                && k.get("kernel").and_then(JsonValue::as_str) == Some("batched")
        }) {
            let batch = row
                .get("batch")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing `batch` for {design}/batched"))?;
            if !(batch.is_finite() && batch >= 2.0) {
                return Err(format!("`batch` for {design}/batched must be at least 2"));
            }
            let rate = row
                .get("mvms_per_s")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing `mvms_per_s` for {design}/batched"))?;
            if !(rate.is_finite() && rate > 0.0) {
                return Err(format!("non-positive `mvms_per_s` for {design}/batched"));
            }
            if best.is_none_or(|(b, _)| batch > b) {
                best = Some((batch, rate));
            }
        }
        let (batch, rate) = best.ok_or_else(|| format!("missing mvm row for {design}/batched"))?;
        if rate < packed {
            return Err(format!(
                "batched kernel regression: {design} batch {batch} runs {rate:.0} MVMs/s \
                 vs {packed:.0} for the per-sample packed kernel"
            ));
        }
    }
    let images = doc
        .get("images")
        .and_then(JsonValue::as_array)
        .ok_or("missing `images` array")?;
    for design in ["FORMS", "ISAAC"] {
        let mut rates = [0.0f64; 3];
        let mut workers = 1.0f64;
        for (slot, exec) in rates.iter_mut().zip(["serial", "batched", "parallel"]) {
            let row = images
                .iter()
                .find(|r| {
                    r.get("design").and_then(JsonValue::as_str) == Some(design)
                        && r.get("exec").and_then(JsonValue::as_str) == Some(exec)
                })
                .ok_or_else(|| format!("missing images row for {design}/{exec}"))?;
            let rate = row
                .get("images_per_s")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing `images_per_s` for {design}/{exec}"))?;
            if !(rate.is_finite() && rate > 0.0) {
                return Err(format!("non-positive `images_per_s` for {design}/{exec}"));
            }
            *slot = rate;
            if exec == "parallel" {
                workers = row
                    .get("workers")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("missing `workers` for {design}/parallel"))?;
            }
        }
        let [serial, batched, parallel] = rates;
        if batched < serial {
            return Err(format!(
                "batched images regression: {design} batched runs {batched:.1} images/s \
                 vs {serial:.1} serial"
            ));
        }
        if workers >= 2.0 && parallel < 1.2 * serial {
            return Err(format!(
                "parallel images regression: {design} at {workers} workers runs \
                 {parallel:.1} images/s, below 1.2x the serial {serial:.1}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    /// A fixed-numbers report shaped exactly like a passing smoke run.
    ///
    /// The validator's timing gates (batched >= packed per MVM, batched
    /// images >= serial, parallel >= 1.2x serial) are enforced against
    /// *live* numbers by the `mvm` binary, which ci.sh runs on an
    /// otherwise idle machine. Unit tests run under `cargo test
    /// --workspace` where every core is oversubscribed by sibling test
    /// binaries, so a live 2-worker measurement here is pure noise —
    /// these tests pin the validator logic on synthetic numbers instead.
    fn synthetic_report() -> MvmBenchReport {
        let kernel = |design, kernel, batch, ns: f64| KernelResult {
            design,
            kernel,
            batch,
            ns_per_mvm: ns,
            p95_ns_per_mvm: ns * 1.3,
            mvms_per_s: 1e9 / ns,
        };
        let image = |design, exec, workers, rate: f64| ImageResult {
            design,
            exec,
            workers,
            images_per_s: rate,
            p95_images_per_s: rate * 0.8,
        };
        MvmBenchReport {
            spec: MvmBenchSpec::smoke(),
            kernels: vec![
                kernel("FORMS", "packed", 1, 600_000.0),
                kernel("FORMS", "reference", 1, 1_500_000.0),
                kernel("ISAAC", "packed", 1, 250_000.0),
                kernel("ISAAC", "reference", 1, 1_100_000.0),
                kernel("FORMS", "batched", 2, 300_000.0),
                kernel("ISAAC", "batched", 2, 180_000.0),
                kernel("FORMS", "batched", 4, 200_000.0),
                kernel("ISAAC", "batched", 4, 150_000.0),
            ],
            images: vec![
                image("FORMS", "serial", 1, 400.0),
                image("FORMS", "batched", 1, 900.0),
                image("FORMS", "parallel", 2, 1100.0),
                image("ISAAC", "serial", 1, 700.0),
                image("ISAAC", "batched", 1, 1400.0),
                image("ISAAC", "parallel", 2, 1500.0),
            ],
        }
    }

    #[test]
    fn smoke_report_round_trips_and_validates() {
        let report = synthetic_report();
        let doc = report.to_json();
        validate(&doc).unwrap();
        let reparsed = parse(&doc.pretty()).unwrap();
        validate(&reparsed).unwrap();
        assert_eq!(reparsed, doc);
        assert!(report.speedup("FORMS").unwrap() > 0.0);
        assert!(report.speedup("ISAAC").unwrap() > 0.0);
        assert!(report.speedup_batched("FORMS").unwrap() > 1.0);
        assert!(report.speedup_batched("ISAAC").unwrap() > 1.0);
    }

    #[test]
    fn validate_rejects_timing_regressions() {
        // Batched kernel slower per MVM than packed at the top batch size.
        let mut report = synthetic_report();
        for k in &mut report.kernels {
            if k.design == "FORMS" && k.kernel == "batched" && k.batch == 4 {
                k.ns_per_mvm = 2_000_000.0;
                k.mvms_per_s = 1e9 / k.ns_per_mvm;
            }
        }
        let err = validate(&report.to_json()).unwrap_err();
        assert!(err.contains("batched kernel regression"), "{err}");

        // Batched images below serial.
        let mut report = synthetic_report();
        for r in &mut report.images {
            if r.design == "ISAAC" && r.exec == "batched" {
                r.images_per_s = 500.0;
            }
        }
        let err = validate(&report.to_json()).unwrap_err();
        assert!(err.contains("batched images regression"), "{err}");

        // Parallel below 1.2x serial at 2 workers.
        let mut report = synthetic_report();
        for r in &mut report.images {
            if r.design == "FORMS" && r.exec == "parallel" {
                r.images_per_s = 410.0;
            }
        }
        let err = validate(&report.to_json()).unwrap_err();
        assert!(err.contains("parallel images regression"), "{err}");
    }

    #[test]
    fn validate_rejects_broken_documents() {
        let good = synthetic_report().to_json();
        validate(&good).unwrap();
        // Drop a required top-level field.
        let JsonValue::Object(fields) = &good else {
            panic!("report is an object")
        };
        for missing in ["bench", "mode", "layer", "mvm", "images"] {
            let broken = JsonValue::Object(
                fields
                    .iter()
                    .filter(|(k, _)| k.as_str() != missing)
                    .cloned()
                    .collect(),
            );
            assert!(validate(&broken).is_err(), "accepted doc without {missing}");
        }
        assert!(validate(&JsonValue::Null).is_err());
    }
}
