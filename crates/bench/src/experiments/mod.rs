//! One module per regenerated table/figure (see `DESIGN.md` §4).

pub mod energy;
pub mod fig13;
pub mod fig14;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod noise;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
