//! Table I: compression results on small/medium datasets (MNIST LeNet-5;
//! CIFAR-10 VGG-16 and ResNet-18) — prune ratio, accuracy drop per fragment
//! size, crossbar reduction.

use forms_dnn::{evaluate, evaluate_topk};

use crate::report::{pct, times, Experiment};
use crate::suite::{compress, train_baseline, CompressionRecipe, DatasetKind, ModelKind};

/// One benchmark row spec: model, dataset, pruning keeps, paper reference
/// values (prune ratio, crossbar reduction).
pub struct Case {
    /// Model under test.
    pub model: ModelKind,
    /// Dataset stand-in.
    pub dataset: DatasetKind,
    /// (shape_keep, filter_keep) for the ADMM pruning constraint.
    pub keeps: (f32, f32),
    /// The paper's prune ratio for this row.
    pub paper_prune: f32,
    /// The paper's crossbar reduction for this row.
    pub paper_reduction: f32,
    /// Whether accuracy is measured top-5, as the paper does for ImageNet.
    pub top5: bool,
}

/// The Table I cases. The keep fractions are chosen so the *scaled* models
/// prune at rates their reduced redundancy can absorb (the paper's 23–52×
/// ratios rely on full-width nets; see the emitted notes).
pub fn cases() -> Vec<Case> {
    vec![
        Case {
            model: ModelKind::LeNet5,
            dataset: DatasetKind::Mnist,
            keeps: (0.35, 0.5),
            paper_prune: 23.18,
            paper_reduction: 185.44,
            top5: false,
        },
        Case {
            model: ModelKind::Vgg16,
            dataset: DatasetKind::Cifar10,
            // The width-2 VGG stand-in has as few as 2 channels per early
            // layer, so it cannot absorb the deep cuts the 64-wide original
            // takes; keeps are raised accordingly.
            keeps: (0.7, 0.7),
            paper_prune: 41.2,
            paper_reduction: 329.6,
            top5: false,
        },
        Case {
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar10,
            keeps: (0.4, 0.4),
            paper_prune: 50.85,
            paper_reduction: 406.8,
            top5: false,
        },
    ]
}

/// Fragment sizes per row, as in the paper.
pub const FRAGMENT_SIZES: [usize; 3] = [4, 8, 16];

/// Runs the experiment over `cases()`.
pub fn run() -> Experiment {
    run_cases(
        &cases(),
        "Table I",
        "compression on MNIST & CIFAR-10 stand-ins",
    )
}

/// Shared driver for Tables I and II.
pub fn run_cases(cases: &[Case], id: &str, title: &str) -> Experiment {
    let mut e = Experiment::new(
        id,
        title,
        &[
            "model / dataset",
            "baseline acc",
            "fragment",
            "acc drop (8-bit)",
            "prune ratio",
            "crossbar reduction",
            "paper (prune, reduction)",
        ],
    );
    for (ci, case) in cases.iter().enumerate() {
        let baseline = train_baseline(case.model, case.dataset, 100 + ci as u64);
        // Top-5 for ImageNet rows, top-1 elsewhere — the paper's metrics.
        let metric = |net: &forms_dnn::Network| {
            let mut net = net.clone();
            if case.top5 {
                evaluate_topk(&mut net, &baseline.test, 32, 5)
            } else {
                evaluate(&mut net, &baseline.test, 32)
            }
        };
        let base_acc = metric(&baseline.net);
        for (fi, &fragment) in FRAGMENT_SIZES.iter().enumerate() {
            let recipe = CompressionRecipe::full(fragment, case.keeps.0, case.keeps.1);
            let c = compress(&baseline, recipe, 150 + (ci * 3 + fi) as u64);
            let drop = base_acc - metric(&c.net);
            let label = if case.top5 { " (top-5)" } else { "" };
            e.row(&[
                format!("{} / {}{label}", case.model.label(), case.dataset.label()),
                pct(base_acc as f64),
                fragment.to_string(),
                pct(drop as f64),
                times(c.summary.prune_ratio() as f64),
                times(c.summary.crossbar_reduction() as f64),
                format!("{}×, {}×", case.paper_prune, case.paper_reduction),
            ]);
        }
    }
    e.note(
        "scaled stand-in models have far less redundancy than the full-width originals, so \
         prune ratios are set lower; the structure — fragment 4/8 ≈ lossless, fragment 16 \
         slightly worse, reduction = prune × 4 (quant 32→8 bit) × 2 (polarization) — is the \
         reproduced claim",
    );
    e
}
