//! Fig. 6: test accuracy under different fragment sizes (CIFAR-100).
//!
//! The paper shows polarized accuracy tracking the original closely for
//! fragments of 4–16 and dipping slightly at 32–128. We reproduce the sweep
//! with the scaled ResNet-18 on the CIFAR-100 stand-in.

use crate::report::{pct, Experiment};
use crate::suite::{compress, train_baseline, CompressionRecipe, DatasetKind, ModelKind};

/// Fragment sizes swept by the paper's figure.
pub const FRAGMENT_SIZES: [usize; 6] = [4, 8, 16, 32, 64, 128];

/// Runs the experiment.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "Fig. 6",
        "test accuracy vs fragment size (polarization only, CIFAR-100 stand-in, ResNet-18)",
        &[
            "fragment size",
            "accuracy",
            "drop vs baseline",
            "paper trend",
        ],
    );
    let baseline = train_baseline(ModelKind::ResNet18, DatasetKind::Cifar100, 601);
    e.note(&format!(
        "baseline (unpolarized) accuracy: {}",
        pct(baseline.accuracy as f64)
    ));
    for (i, &fragment) in FRAGMENT_SIZES.iter().enumerate() {
        let c = compress(
            &baseline,
            CompressionRecipe::polarization_only(fragment),
            700 + i as u64,
        );
        let drop = baseline.accuracy - c.report.test_accuracy;
        let paper = match fragment {
            4 | 8 => "≈ no drop",
            16 => "minor drop",
            _ => "small drop",
        };
        e.row(&[
            fragment.to_string(),
            pct(c.report.test_accuracy as f64),
            pct(drop as f64),
            paper.to_string(),
        ]);
    }
    e.note("paper: smaller fragments introduce zero/minor degradation; larger ones a small drop");
    e
}
