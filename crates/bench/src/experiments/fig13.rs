//! Fig. 13: frame-per-second speedups on CIFAR-10 (VGG-16, ResNet-18)
//! as the FORMS techniques stack up, normalized to non-pruned 32-bit ISAAC.
//!
//! FPS is pure geometry — layer shapes, crossbar counts, cycle times — so
//! this uses the *full-size* layer catalogs of `forms-workloads` with the
//! pruning keeps of the Table I recipes and the measured EIC, not the
//! scaled training stand-ins.

use forms_admm::crossbar_aware_keep;
use forms_arch::{FpsModel, LayerPerf};
use forms_baselines::PumaModel;
use forms_hwmodel::McuConfig;
use forms_rng::StdRng;
use forms_workloads::{resnet18_cifar, vgg16_cifar, ActivationModel, LayerShape};

use crate::report::{times, Experiment};
use crate::suite::{
    compress, measured_eic, train_baseline, CompressionRecipe, DatasetKind, ModelKind,
};

/// How a configuration maps layers onto crossbars and feeds inputs.
#[derive(Clone, Copy, Debug)]
pub struct FpsConfig {
    /// Row label.
    pub label: &'static str,
    /// MCU configuration (ISAAC coarse or FORMS fine).
    pub mcu: McuConfig,
    /// ReRAM cells per weight (16 for 32-bit, 4 for 8-bit on 2-bit cells).
    pub cells_per_weight: usize,
    /// Keep fractions (shape, filter) from pruning; 1.0 = dense.
    pub keeps: (f32, f32),
    /// Crossbar divisor from polarization. FORMS and offset-encoded ISAAC
    /// use the same array count (1); only the PRIME-style split mapping
    /// pays 2× — polarization's 2× credit in Tables I/II is relative to
    /// that split baseline, so it does not appear against ISAAC here.
    pub polarization: usize,
    /// Input cycles per fragment activation (16 = no zero-skipping).
    pub input_cycles: f64,
    /// Extra fps factor (PUMA's published 0.707; 1.0 otherwise).
    pub fps_factor: f64,
}

/// Builds the FPS model of a configuration over a layer catalog.
pub fn fps_of(shapes: &[LayerShape], cfg: &FpsConfig) -> f64 {
    let dim = cfg.mcu.crossbar_dim;
    let layers: Vec<LayerPerf> = shapes
        .iter()
        .map(|s| {
            // Crossbar-aware pruning: kept rows/cols round up to array
            // boundaries (paper §III-A).
            let rows = crossbar_aware_keep(
                s.matrix_rows(),
                ((s.matrix_rows() as f32 * cfg.keeps.0).ceil() as usize).max(1),
                dim,
            );
            let cols = ((s.matrix_cols() as f32 * cfg.keeps.1).ceil() as usize).max(1);
            let crossbars = (rows.div_ceil(dim) * (cols * cfg.cells_per_weight).div_ceil(dim))
                .div_ceil(cfg.polarization)
                .max(1);
            LayerPerf {
                positions: s.positions(),
                crossbars,
                input_cycles: cfg.input_cycles,
            }
        })
        .collect();
    FpsModel::new(cfg.mcu, layers).fps() * cfg.fps_factor
}

/// The configuration ladder of Figs. 13–14, given pruning keeps and
/// measured EICs for fragments 8 and 16.
pub fn configurations(keeps: (f32, f32), eic8: f64, eic16: f64) -> Vec<FpsConfig> {
    vec![
        FpsConfig {
            label: "ISAAC (32-bit, non-pruned)",
            mcu: McuConfig::isaac(),
            cells_per_weight: 16,
            keeps: (1.0, 1.0),
            polarization: 1,
            input_cycles: 16.0,
            fps_factor: 1.0,
        },
        FpsConfig {
            label: "Pruned/Quantized ISAAC",
            mcu: McuConfig::isaac(),
            cells_per_weight: 4,
            keeps,
            polarization: 1,
            input_cycles: 16.0,
            fps_factor: 1.0,
        },
        FpsConfig {
            label: "Pruned/Quantized PUMA",
            mcu: McuConfig::isaac(),
            cells_per_weight: 4,
            keeps,
            polarization: 1,
            input_cycles: 16.0,
            fps_factor: PumaModel::default().fps_factor,
        },
        FpsConfig {
            label: "FORMS model-opt (frag 8)",
            mcu: McuConfig::forms(8),
            cells_per_weight: 4,
            keeps,
            polarization: 1,
            input_cycles: 16.0,
            fps_factor: 1.0,
        },
        FpsConfig {
            label: "FORMS model-opt (frag 16)",
            mcu: McuConfig::forms(16),
            cells_per_weight: 4,
            keeps,
            polarization: 1,
            input_cycles: 16.0,
            fps_factor: 1.0,
        },
        FpsConfig {
            label: "FORMS +zero-skip (frag 8)",
            mcu: McuConfig::forms(8),
            cells_per_weight: 4,
            keeps,
            polarization: 1,
            input_cycles: eic8,
            fps_factor: 1.0,
        },
        FpsConfig {
            label: "FORMS +zero-skip (frag 16)",
            mcu: McuConfig::forms(16),
            cells_per_weight: 4,
            keeps,
            polarization: 1,
            input_cycles: eic16,
            fps_factor: 1.0,
        },
    ]
}

/// Measured mean EIC of synthetic post-ReLU activations at a fragment size.
pub fn synthetic_eic(fragment: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let codes = ActivationModel::sparse_half_normal(1.0, 0.5).sample_codes(&mut rng, 1 << 15, 16);
    forms_arch::eic_stats(&codes, fragment, 16).mean
}

/// Mean EIC of a quickly-trained *and compressed* LeNet's real activations
/// at a fragment size — the deployed model is the ADMM-compressed one, and
/// its sparser activations are what the zero-skipping logic actually sees.
pub fn trained_eic() -> (f64, f64) {
    let baseline = train_baseline(ModelKind::LeNet5, DatasetKind::Mnist, 1310);
    let compressed = compress(&baseline, CompressionRecipe::full(8, 0.4, 0.5), 1311);
    (
        measured_eic(&compressed.net, &baseline.test, 8, 16),
        measured_eic(&compressed.net, &baseline.test, 16, 16),
    )
}

/// Shared driver: one speedup table over several (network, catalog, keeps).
pub fn run_networks(
    id: &str,
    title: &str,
    nets: &[(&str, Vec<LayerShape>, (f32, f32))],
    paper_note: &str,
) -> Experiment {
    let (eic8, eic16) = trained_eic();
    let mut headers: Vec<String> = vec!["configuration".to_string()];
    headers.extend(nets.iter().map(|(n, _, _)| format!("{n} speedup")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut e = Experiment::new(id, title, &headers_ref);
    let baselines: Vec<f64> = nets
        .iter()
        .map(|(_, shapes, keeps)| fps_of(shapes, &configurations(*keeps, eic8, eic16)[0]))
        .collect();
    let n_configs = configurations((1.0, 1.0), eic8, eic16).len();
    for ci in 0..n_configs {
        let mut row = Vec::new();
        let mut label = "";
        for ((_, shapes, keeps), base) in nets.iter().zip(&baselines) {
            let cfg = configurations(*keeps, eic8, eic16)[ci];
            label = cfg.label;
            row.push(times(fps_of(shapes, &cfg) / base));
        }
        let mut cells = vec![label.to_string()];
        cells.extend(row);
        e.row(&cells);
    }
    e.note(&format!(
        "mean EIC used for zero-skipping: {eic8:.1} (frag 8), {eic16:.1} (frag 16)"
    ));
    e.note(paper_note);
    e
}

/// Runs the experiment.
pub fn run() -> Experiment {
    // Table I keeps for the CIFAR-10 nets.
    let nets = vec![
        ("VGG16/CIFAR-10", vgg16_cifar(), (0.16f32, 0.16f32)),
        ("ResNet18/CIFAR-10", resnet18_cifar(), (0.14f32, 0.14f32)),
    ];
    run_networks(
        "Fig. 13",
        "fps speedup on CIFAR-10, normalized to non-pruned 32-bit ISAAC",
        &nets,
        "paper bands: pruning speeds ISAAC 7.5–200.8×; FORMS model-opts 4–109.6× (frag 8) / \
         5.8–155.8× (frag 16); with zero-skip 10.7–377.9× (frag 8) / 11.2–336.9× (frag 16); \
         FORMS+zero-skip beats optimized ISAAC by 1.12–2.4×",
    )
}
