//! Fig. 7: input effective bits and required fragment EIC (illustration).
//!
//! Deterministic reproduction of the paper's worked example: a fragment
//! whose inputs have 6 and 7 effective bits needs EIC 7 — the maximum over
//! its inputs, not the per-input effective bits.

use forms_arch::{effective_bits, fragment_eic, ShiftRegisterBank};

use crate::report::Experiment;

/// Runs the experiment.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "Fig. 7",
        "input effective bits and required fragment EIC",
        &["input (16-bit binary)", "effective bits", "role"],
    );
    // The paper's example: inp1 has 6 effective bits, inp2 has 7; the
    // fragment's EIC is 7 because inp2 dominates.
    let inputs: [(u32, &str); 4] = [
        (0b101101, "inp1 — 6 effective bits"),
        (0b1001011, "inp2 — largest, sets the EIC"),
        (0b000011, "inp3"),
        (0b000000, "inp4 — all zero"),
    ];
    for &(code, role) in &inputs {
        e.row(&[
            format!("{code:016b}"),
            effective_bits(code).to_string(),
            role.to_string(),
        ]);
    }
    let codes: Vec<u32> = inputs.iter().map(|&(c, _)| c).collect();
    let eic = fragment_eic(&codes);
    let shifted = ShiftRegisterBank::load(&codes).drain().len();
    e.note(&format!(
        "fragment EIC = {eic} (paper: 7); shift-register bank stopped after {shifted} cycles; \
         {} of 16 cycles skipped",
        16 - eic
    ));
    assert_eq!(eic, 7, "must reproduce the paper's worked example");
    assert_eq!(shifted as u32, eic);
    e
}
