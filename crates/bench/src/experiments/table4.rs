//! Table IV: chip-level power/area of FORMS, ISAAC and DaDianNao.

use forms_hwmodel::{ChipCost, DadiannaoModel, McuConfig, TileCost};

use crate::report::{f2, Experiment};

/// Runs the experiment.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "Table IV",
        "chip-level comparison (FORMS fragment 8, ISAAC, DaDianNao)",
        &[
            "level",
            "FORMS",
            "ISAAC",
            "DaDianNao",
            "paper (FORMS / ISAAC / DaDianNao)",
        ],
    );
    let forms_mcu = McuConfig::forms(8);
    let isaac_mcu = McuConfig::isaac();
    let (ft, it) = (TileCost::for_mcu(&forms_mcu), TileCost::for_mcu(&isaac_mcu));
    let (fc, ic) = (ChipCost::for_mcu(&forms_mcu), ChipCost::for_mcu(&isaac_mcu));
    let dd = DadiannaoModel::default();

    e.row(&[
        "12 MCUs power (mW)".to_string(),
        f2(ft.mcus.power_mw),
        f2(it.mcus.power_mw),
        "—".to_string(),
        "280.05 / 288.96 / —".to_string(),
    ]);
    e.row(&[
        "tile power (mW)".to_string(),
        f2(ft.total.power_mw),
        f2(it.total.power_mw),
        "—".to_string(),
        "333.1 / 329.81 / —".to_string(),
    ]);
    e.row(&[
        "tile area (mm²)".to_string(),
        format!("{:.4}", ft.total.area_mm2),
        format!("{:.4}", it.total.area_mm2),
        "—".to_string(),
        "0.39 / 0.370 / —".to_string(),
    ]);
    e.row(&[
        "chip power (W)".to_string(),
        f2(fc.total.power_mw / 1000.0),
        f2(ic.total.power_mw / 1000.0),
        f2(dd.total().power_mw / 1000.0),
        "66.36 / 65.81 / 19.86".to_string(),
    ]);
    e.row(&[
        "chip area (mm²)".to_string(),
        f2(fc.total.area_mm2),
        f2(ic.total.area_mm2),
        f2(dd.total().area_mm2),
        "89.15 / 85.09 / 86.2".to_string(),
    ]);
    let dp = fc.total.power_mw / ic.total.power_mw - 1.0;
    let da = fc.total.area_mm2 / ic.total.area_mm2 - 1.0;
    e.note(&format!(
        "FORMS vs ISAAC: {:+.2}% power, {:+.2}% area (paper: +0.08% power, +4.5% area — the \
         iso-cost design point)",
        dp * 100.0,
        da * 100.0
    ));
    e.note("DaDianNao items are carried as published (NFU 4886 mW, eDRAM 4760 mW, bus 12.8 mW, HT 10400 mW); the paper's own 19.86 W total differs slightly from its itemized sum of 20.06 W");
    e
}
