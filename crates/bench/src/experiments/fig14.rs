//! Fig. 14: frame-per-second speedups on CIFAR-100 and ImageNet,
//! normalized to non-pruned 32-bit ISAAC — same configuration ladder as
//! Fig. 13, with the Table II pruning keeps (harder datasets prune less,
//! so every speedup band sits lower).

use forms_workloads::{resnet18_cifar, resnet18_imagenet, resnet50_imagenet};

use crate::experiments::fig13::run_networks;
use crate::report::Experiment;

/// Runs the experiment.
pub fn run() -> Experiment {
    // Table II keep fractions: CIFAR-100 ~ keep 0.39² (6.65× prune),
    // ImageNet ~ keep 0.52–0.71 (2–3.67× prune).
    let nets = vec![
        ("ResNet18/CIFAR-100", resnet18_cifar(), (0.39f32, 0.39f32)),
        ("ResNet18/ImageNet", resnet18_imagenet(), (0.71f32, 0.71f32)),
        ("ResNet50/ImageNet", resnet50_imagenet(), (0.52f32, 0.52f32)),
    ];
    run_networks(
        "Fig. 14",
        "fps speedup on CIFAR-100 & ImageNet, normalized to non-pruned 32-bit ISAAC",
        &nets,
        "paper: speedups on the harder datasets sit at the low end of the Fig. 13 bands \
         (pruning contributes less); ordering — optimized ISAAC > FORMS model-opt, then \
         FORMS+zero-skip overtakes — must be preserved",
    )
}
