//! Table V: effective peak throughput per area and power, normalized to
//! ISAAC.
//!
//! The configured rows are computed from the calibrated hardware models;
//! the model-compression factor (prune × quant) is measured by running the
//! ADMM stack on the LeNet stand-in, and the zero-skipping factor comes
//! from the measured mean EIC — so the whole software/hardware pipeline
//! feeds this table.

use forms_hwmodel::{published_comparators, McuConfig, ThroughputModel};

use crate::report::{f2, Experiment};
use crate::suite::{
    compress, measured_eic, train_baseline, CompressionRecipe, DatasetKind, ModelKind,
};

/// Paper Table V reference values (area-eff, power-eff) per row label.
const PAPER: [(&str, f64, f64); 11] = [
    ("ISAAC", 1.0, 1.0),
    ("DaDianNao", 0.13, 0.45),
    ("PUMA", 0.70, 0.79),
    ("TPU", 0.08, 0.48),
    ("WAX", 0.33, 2.3),
    ("SIMBA", 0.34, 1.29),
    ("FORMS (polarization only, 8)", 0.54, 0.61),
    ("FORMS (polarization only, 16)", 0.77, 0.84),
    ("Pruned/Quantized-ISAAC", 26.4, 26.61),
    ("FORMS (full optimization, 8)", 36.02, 27.73),
    ("FORMS (full optimization, 16)", 39.48, 51.26),
];

fn paper(label: &str) -> (f64, f64) {
    PAPER
        .iter()
        .find(|(l, _, _)| *l == label)
        .map(|&(_, a, p)| (a, p))
        .unwrap_or((f64::NAN, f64::NAN))
}

/// Runs the experiment.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "Table V",
        "effective peak throughput normalized to ISAAC",
        &[
            "architecture",
            "GOPs/s·mm²",
            "GOPs/W",
            "paper (area, power)",
        ],
    );

    // Measured software factors.
    let baseline = train_baseline(ModelKind::LeNet5, DatasetKind::Mnist, 501);
    let compressed = compress(&baseline, CompressionRecipe::full(8, 0.4, 0.5), 502);
    let prune = compressed.summary.prune_ratio() as f64;
    let quant = 2.0; // 16-bit → 8-bit weights halve the cells per weight
    let pq = prune * quant;
    let eic8 = measured_eic(&compressed.net, &baseline.test, 8, 16);
    let eic16 = measured_eic(&compressed.net, &baseline.test, 16, 16);

    let isaac = ThroughputModel::baseline(McuConfig::isaac());
    let isaac_thr = isaac.throughput();
    fn push(
        e: &mut Experiment,
        isaac_thr: &forms_hwmodel::ArchitectureThroughput,
        label: &str,
        model: ThroughputModel,
    ) {
        let (a, p) = model.throughput().normalized_to(isaac_thr);
        let (pa, pp) = paper(label);
        e.row(&[label.to_string(), f2(a), f2(p), format!("{pa}, {pp}")]);
    }

    push(&mut e, &isaac_thr, "ISAAC", isaac);
    for c in published_comparators() {
        let (pa, pp) = paper(c.name);
        e.row(&[
            format!("{} (published)", c.name),
            f2(c.area_efficiency),
            f2(c.power_efficiency),
            format!("{pa}, {pp}"),
        ]);
    }
    push(
        &mut e,
        &isaac_thr,
        "FORMS (polarization only, 8)",
        ThroughputModel::baseline(McuConfig::forms(8)),
    );
    push(
        &mut e,
        &isaac_thr,
        "FORMS (polarization only, 16)",
        ThroughputModel::baseline(McuConfig::forms(16)),
    );
    push(
        &mut e,
        &isaac_thr,
        "Pruned/Quantized-ISAAC",
        ThroughputModel {
            model_compression: pq,
            ..ThroughputModel::baseline(McuConfig::isaac())
        },
    );
    push(
        &mut e,
        &isaac_thr,
        "FORMS (full optimization, 8)",
        ThroughputModel {
            model_compression: pq,
            input_cycles: eic8,
            ..ThroughputModel::baseline(McuConfig::forms(8))
        },
    );
    push(
        &mut e,
        &isaac_thr,
        "FORMS (full optimization, 16)",
        ThroughputModel {
            model_compression: pq,
            input_cycles: eic16,
            ..ThroughputModel::baseline(McuConfig::forms(16))
        },
    );

    e.note(&format!(
        "measured factors: prune {prune:.2}× (LeNet stand-in), quant 2×, mean EIC {eic8:.1} \
         (frag 8) / {eic16:.1} (frag 16); polarization's 2× array saving is relative to the \
         split-mapping baseline (Tables I/II), not to offset-encoded ISAAC"
    ));
    e.note(
        "shape claims reproduced: polarization-only FORMS < ISAAC < Pruned/Quantized-ISAAC < \
         full FORMS; fragment 16 > fragment 8; absolute factors depend on the prune ratio the \
         stand-in model can absorb",
    );
    e
}
