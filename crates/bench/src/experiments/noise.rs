//! Extension experiment: fine-grained vs coarse-grained susceptibility to
//! analog read noise and IR drop (paper §II-C, motivation point 3 —
//! "fine-grained architecture is less susceptible to non-idealities and
//! noise than coarse-grained architecture").
//!
//! The paper asserts this qualitatively; here it is measured: the same
//! dot-product is computed through fragment windows of increasing size
//! under (a) additive read noise and (b) wire IR drop, and the output error
//! is compared.

use forms_arch::{MappedLayer, MappingConfig};
use forms_reram::{CellSpec, CurrentNoise, IrDropModel};
use forms_rng::StdRng;
use forms_tensor::Tensor;

use crate::report::{f2, pct, Experiment};

/// Fragment sizes to compare (128 = the coarse-grained ISAAC-style column).
pub const FRAGMENT_SIZES: [usize; 5] = [4, 8, 16, 64, 128];

/// All-positive magnitudes: polarized at *every* fragment size, so the
/// same matrix (and the same ideal outputs) is reused across the sweep and
/// only the window size changes.
fn positive_matrix(rows: usize, cols: usize) -> Tensor {
    Tensor::from_fn(&[rows, cols], |i| 0.05 + ((i * 13) % 11) as f32 / 16.0)
}

/// Runs the experiment.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "Noise (ext.)",
        "output error vs fragment size under read noise and IR drop (128-row column)",
        &[
            "fragment size",
            "ADC bits",
            "mean |error| under read noise",
            "worst-case IR-drop error",
        ],
    );
    let rows = 128;
    let cols = 4;
    let codes: Vec<u32> = (0..rows).map(|i| ((i * 37) % 256) as u32).collect();
    let noise = CurrentNoise::typical();
    let ir = IrDropModel::typical();
    let runs = 16;

    let w = positive_matrix(rows, cols);
    let mut errors = Vec::new();
    for &fragment in &FRAGMENT_SIZES {
        let config = MappingConfig {
            crossbar_dim: 128,
            fragment_size: fragment,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 8,
            zero_skipping: true,
        };
        let mapped = MappedLayer::map(&w, config).unwrap();
        let (clean, _) = mapped.matvec(&codes, 1.0);
        let scale = clean.iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
        let mut total = 0.0f64;
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(9000 + run);
            let (noisy, _) = mapped.matvec_noisy(&codes, 1.0, &noise, &mut rng);
            let err: f32 = noisy
                .iter()
                .zip(&clean)
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / cols as f32;
            total += (err / scale) as f64;
        }
        let mean_rel_err = total / runs as f64;
        let adc_bits = 64 - ((fragment as u64 * 3).max(1)).leading_zeros() as u64;
        let ir_err = ir.worst_case_relative_error(fragment, 61.0);
        errors.push(mean_rel_err);
        e.row(&[
            fragment.to_string(),
            adc_bits.to_string(),
            pct(mean_rel_err),
            pct(ir_err),
        ]);
    }
    e.note(&format!(
        "coarse/fine read-noise error ratio (frag 128 vs frag 8): {}",
        f2(errors[4] / errors[1].max(1e-12))
    ));
    e.note(
        "reproduced claim (paper §II-C, point 3): both error columns grow with the fragment \
         size — small sub-arrays accumulate less noise and less wire drop per conversion",
    );
    e
}
