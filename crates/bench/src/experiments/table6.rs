//! Table VI: accuracy degradation under log-normal device variation
//! (σ = 0.1), ResNet-18 on the three datasets, four model variants.
//!
//! As in the paper (which injects variation into the weight tensors of its
//! PyTorch models), the perturbation is applied at the weight level —
//! `w ← w · exp(N(0, σ))` per ReRAM-mapped weight — and accuracy is
//! averaged over repeated draws.

use forms_dnn::{evaluate, Network};
use forms_reram::LogNormalVariation;
use forms_rng::StdRng;

use crate::report::{pct, Experiment};
use crate::suite::{compress, train_baseline, Baseline, CompressionRecipe, DatasetKind, ModelKind};

/// Runs averaged over this many variation draws (the paper uses 50; 12
/// keeps the harness fast while the mean is already stable).
pub const RUNS: usize = 12;

/// Mean accuracy over `RUNS` perturbed copies of a network.
fn perturbed_accuracy(
    net: &Network,
    baseline: &Baseline,
    variation: &LogNormalVariation,
    seed: u64,
) -> f32 {
    let mut total = 0.0;
    for run in 0..RUNS {
        let mut rng = StdRng::seed_from_u64(seed + run as u64);
        let mut noisy = net.clone();
        noisy.for_each_param(&mut |p| {
            // Only weights live on ReRAM; biases and batch-norm parameters
            // stay digital.
            if p.value.shape().rank() >= 2 {
                for v in p.value.data_mut() {
                    *v = variation.perturb_weight(*v, &mut rng);
                }
            }
        });
        total += evaluate(&mut noisy, &baseline.test, 32);
    }
    total / RUNS as f32
}

/// Runs the experiment.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "Table VI",
        "accuracy degradation under log-normal device variation (σ = 0.1), ResNet-18",
        &[
            "dataset",
            "original",
            "polarization only",
            "pruning only",
            "full optimization",
            "paper (orig/pol/prune/full)",
        ],
    );
    let variation = LogNormalVariation::paper();
    let paper: [(DatasetKind, &str); 3] = [
        (DatasetKind::Cifar10, "0.35 / 0.37 / 1.82 / 1.80 %"),
        (DatasetKind::Cifar100, "0.72 / 0.68 / 1.86 / 1.89 %"),
        (DatasetKind::ImageNet, "2.87 / 2.86 / 4.24 / 4.21 %"),
    ];
    for (di, (dataset, paper_row)) in paper.into_iter().enumerate() {
        let baseline = train_baseline(ModelKind::ResNet18, dataset, 1600 + di as u64);
        let pol = compress(
            &baseline,
            CompressionRecipe::polarization_only(8),
            1610 + di as u64,
        );
        let pruned = compress(
            &baseline,
            CompressionRecipe {
                prune_keep: Some((0.7, 0.7)),
                fragment: None,
                quant_bits: None,
                ..CompressionRecipe::polarization_only(8)
            },
            1620 + di as u64,
        );
        let full = compress(
            &baseline,
            CompressionRecipe::full(8, 0.7, 0.7),
            1630 + di as u64,
        );

        let mut drops = Vec::new();
        for (variant, net, clean) in [
            ("original", &baseline.net, baseline.accuracy),
            ("polarization", &pol.net, pol.report.test_accuracy),
            ("pruning", &pruned.net, pruned.report.test_accuracy),
            ("full", &full.net, full.report.test_accuracy),
        ] {
            let noisy = perturbed_accuracy(net, &baseline, &variation, 1700 + di as u64);
            let drop = (clean - noisy).max(0.0);
            drops.push((variant, drop));
        }
        e.row(&[
            dataset.label().to_string(),
            pct(drops[0].1 as f64),
            pct(drops[1].1 as f64),
            pct(drops[2].1 as f64),
            pct(drops[3].1 as f64),
            paper_row.to_string(),
        ]);
    }
    e.note(&format!("averaged over {RUNS} variation draws (paper: 50)"));
    e.note(
        "reproduced claims: the uncompressed model is the most robust, the fully optimized \
         model the least, and harder datasets degrade more",
    );
    e.note(
        "deviation: the paper's polarization-only column matches the original (0.37% vs \
         0.35%); our ADMM projection leaves residual zeroed weights in the polarized model, \
         so it shows pruning-like sensitivity instead — an artifact of the short stand-in \
         training, not of the mapping",
    );
    e
}
