//! Table II: compression results on medium/large datasets (CIFAR-100
//! ResNet-18/50 and VGG-16; ImageNet ResNet-18/50) — lower prune ratios,
//! same fragment sweep.

use crate::experiments::table1::{run_cases, Case};
use crate::report::Experiment;
use crate::suite::{DatasetKind, ModelKind};

/// The Table II cases (less aggressive pruning, as the paper uses for the
/// harder datasets).
pub fn cases() -> Vec<Case> {
    vec![
        Case {
            model: ModelKind::ResNet18,
            dataset: DatasetKind::Cifar100,
            keeps: (0.6, 0.7),
            paper_prune: 6.65,
            paper_reduction: 53.2,
            top5: false,
        },
        Case {
            model: ModelKind::ResNet50,
            dataset: DatasetKind::Cifar100,
            // The width-2 bottlenecks have as few as 2 mid-channels; deeper
            // cuts sever whole residual paths, so keeps are gentler here.
            keeps: (0.75, 0.85),
            paper_prune: 9.18,
            paper_reduction: 73.44,
            top5: false,
        },
        Case {
            model: ModelKind::Vgg16,
            dataset: DatasetKind::Cifar100,
            keeps: (0.6, 0.7),
            paper_prune: 8.15,
            paper_reduction: 65.20,
            top5: false,
        },
        Case {
            model: ModelKind::ResNet18,
            dataset: DatasetKind::ImageNet,
            keeps: (0.8, 0.85),
            paper_prune: 2.0,
            paper_reduction: 16.0,
            top5: true,
        },
        Case {
            model: ModelKind::ResNet50,
            dataset: DatasetKind::ImageNet,
            keeps: (0.8, 0.85),
            paper_prune: 3.67,
            paper_reduction: 29.36,
            top5: true,
        },
    ]
}

/// Runs the experiment.
pub fn run() -> Experiment {
    let mut e = run_cases(
        &cases(),
        "Table II",
        "compression on CIFAR-100 & ImageNet stand-ins",
    );
    e.note(
        "paper: harder datasets admit smaller prune ratios (CIFAR-100 6.6–9.2×, ImageNet \
         1.7–3.7×) while fragment 4/8 stay near-lossless — the same ordering should appear \
         above",
    );
    e
}
