//! Fig. 8: (a) distribution of effective input cycles per fragment size;
//! (b) average EIC per layer for various fragment sizes.
//!
//! Both panels are measured on the genuine activations of a trained
//! LeNet-5 (quantized to 16 bits with per-layer scales, exactly as the
//! accelerator front-end does). Panel (a) histograms the EIC of one CONV
//! layer's input fragments; panel (b) averages over all layers.

use forms_arch::eic_stats;
use forms_tensor::{FixedSpec, QuantizedTensor};
use forms_workloads::capture_weight_layer_inputs;

use crate::report::{f2, pct, Experiment};
use crate::suite::{
    measured_eic, measured_eic_with_headroom, train_baseline, Baseline, DatasetKind, ModelKind,
};

/// Fragment sizes swept by the paper's figure.
pub const FRAGMENT_SIZES: [usize; 6] = [4, 8, 16, 32, 64, 128];

fn conv2_input_codes(baseline: &Baseline) -> Vec<u32> {
    let samples = baseline.test.len().min(8);
    let (x, _) = baseline.test.batch(0, samples);
    let captured = capture_weight_layer_inputs(&baseline.net, &x);
    // Weight-layer 1 of LeNet-5 = conv2: a real post-ReLU/pool input.
    let layer_input = &captured[1];
    let spec = FixedSpec::for_max_value(16, layer_input.max());
    QuantizedTensor::quantize_with(layer_input, spec)
        .codes()
        .to_vec()
}

fn run_a(baseline: &Baseline) -> Experiment {
    let mut e = Experiment::new(
        "Fig. 8a",
        "share of conv2-input fragments per EIC band (16-bit inputs, trained LeNet-5)",
        &[
            "fragment size",
            "EIC ≤ 8",
            "EIC 9–12",
            "EIC 13–16",
            "mean EIC",
        ],
    );
    let codes = conv2_input_codes(baseline);
    for &fragment in &FRAGMENT_SIZES {
        let stats = eic_stats(&codes, fragment, 16);
        let total = stats.fragments as f64;
        let bucket = |lo: usize, hi: usize| -> f64 {
            stats.histogram[lo..=hi].iter().sum::<usize>() as f64 / total
        };
        e.row(&[
            fragment.to_string(),
            pct(bucket(0, 8)),
            pct(bucket(9, 12)),
            pct(bucket(13, 16)),
            f2(stats.mean),
        ]);
    }
    e.note("paper: larger fragments shift the distribution toward higher EIC");
    e
}

fn run_b(baseline: &Baseline) -> Experiment {
    let mut e = Experiment::new(
        "Fig. 8b",
        "average effective input cycles vs fragment size (trained LeNet-5, all layers)",
        &[
            "fragment size",
            "EIC (exact-max scale)",
            "EIC (3-bit headroom)",
            "cycles saved (headroom)",
        ],
    );
    let mut means = Vec::new();
    for &fragment in &FRAGMENT_SIZES {
        let tight = measured_eic(&baseline.net, &baseline.test, fragment, 16);
        let headroom = measured_eic_with_headroom(&baseline.net, &baseline.test, fragment, 16, 3);
        means.push(headroom);
        e.row(&[
            fragment.to_string(),
            f2(tight),
            f2(headroom),
            pct(1.0 - headroom / 16.0),
        ]);
    }
    e.note(&format!(
        "paper: mean EIC ≈ 10.7 at fragment 4 (33% saved) rising to ≈ 15 at fragment 128 \
         (6% saved); measured headroom-scaled ratio frag128/frag4 = {}",
        f2(means[5] / means[0].max(1e-9))
    ));
    e.note(
        "the exact-max column calibrates each layer's 16-bit scale to the observed maximum \
         (zero margin — the conservative bound); the headroom column adds the 3 bits of \
         fixed-point margin a deployed pipeline carries for worst-case activations, which is \
         the regime the paper's 10.7-cycle average reflects",
    );
    e
}

/// Runs both panels (one shared trained model).
pub fn run() -> Vec<Experiment> {
    let baseline = train_baseline(ModelKind::LeNet5, DatasetKind::Mnist, 802);
    vec![run_a(&baseline), run_b(&baseline)]
}
