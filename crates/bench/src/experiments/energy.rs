//! Extension experiment: dynamic energy of mixed-signal inference with and
//! without zero-skipping, from the activity-based energy model.
//!
//! The paper notes zero-skipping "saves dynamic power consumption by
//! feeding fewer input bits (useless 0s) to the crossbar" (§V-B); this
//! experiment quantifies the saving on a real trained model's activations
//! and compares the per-inference energy of FORMS and ISAAC executions.

use forms_arch::{Accelerator, AcceleratorConfig, MappingConfig};
use forms_baselines::{IsaacAccelerator, IsaacActivity, IsaacConfig};
use forms_hwmodel::{DynamicActivity, McuConfig};
use forms_reram::CellSpec;

use crate::report::{f2, pct, Experiment};
use crate::suite::{compress, train_baseline, CompressionRecipe, DatasetKind, ModelKind};
use forms_admm::PolarizationPolicy;

fn accel_config(fragment: usize, zero_skipping: bool) -> AcceleratorConfig {
    AcceleratorConfig {
        mapping: MappingConfig {
            crossbar_dim: 32,
            fragment_size: fragment,
            weight_bits: 8,
            cell: CellSpec::paper_2bit(),
            input_bits: 16,
            zero_skipping,
        },
        activation_bits: 16,
    }
}

/// Runs the experiment.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "Energy (ext.)",
        "per-inference dynamic energy on LeNet-5/MNIST stand-in (8 test images)",
        &[
            "configuration",
            "input cycles",
            "ADC conversions",
            "energy (µJ)",
            "vs no-skip",
        ],
    );
    let baseline = train_baseline(ModelKind::LeNet5, DatasetKind::Mnist, 2001);
    // W-major policy keeps the mapping's row order at identity so the
    // accelerator can map without per-layer permutations.
    let recipe = CompressionRecipe {
        policy: PolarizationPolicy::WMajor,
        ..CompressionRecipe::full(8, 0.4, 0.5)
    };
    let compressed = compress(&baseline, recipe, 2002);
    let (x, _) = baseline.test.batch(0, 8);

    // FORMS with and without zero-skipping.
    let mut rows = Vec::new();
    for (label, skip) in [
        ("FORMS (zero-skip on)", true),
        ("FORMS (zero-skip off)", false),
    ] {
        let mut accel =
            Accelerator::map_network(&compressed.net, accel_config(8, skip)).expect("maps");
        accel.forward(&x);
        let stats = accel.stats();
        let energy = stats.energy_pj(&accel.config().mapping, &McuConfig::forms(8)) * 1e-6;
        rows.push((
            label.to_string(),
            stats.cycles,
            stats.adc_conversions,
            energy,
        ));
    }
    // ISAAC on the same (pruned/quantized) model.
    {
        let isaac_cfg = IsaacConfig {
            crossbar_dim: 32,
            cell: CellSpec::paper_2bit(),
            weight_bits: 8,
            input_bits: 16,
        };
        let mut isaac = IsaacAccelerator::map_network(&compressed.net, isaac_cfg).expect("maps");
        isaac.forward(&x);
        let stats = isaac.stats();
        let energy = IsaacActivity {
            stats,
            config: isaac_cfg,
        }
        .energy_uj(&McuConfig::isaac());
        rows.push((
            "ISAAC (offset-encoded)".to_string(),
            stats.cycles,
            stats.adc_conversions,
            energy,
        ));
    }

    let no_skip_energy = rows[1].3;
    for (label, cycles, conversions, energy) in &rows {
        e.row(&[
            label.clone(),
            cycles.to_string(),
            conversions.to_string(),
            f2(*energy),
            pct(1.0 - energy / no_skip_energy).to_string(),
        ]);
    }
    e.note(
        "zero-skipping saves the cycle-proportional part of the energy (DAC drives, crossbar \
         reads, conversions); the saved fraction tracks the measured EIC",
    );
    e.note(
        "the shallow LeNet stand-in is dominated by its first conv layer, whose inputs are \
         raw image pixels with few leading zeros — deeper nets, whose cycles are dominated by \
         sparse post-ReLU layers, skip far more (cf. Fig. 8b)",
    );
    e.note(
        "ISAAC pays ~3× the energy per inference here: each of its 8-bit conversions costs \
         ~4.6× a 4-bit one, and the offset subtractions add digital work",
    );
    e
}
