//! Table III: MCU hardware specification and comparison with ISAAC —
//! per-component power/area from the calibrated models.

use forms_hwmodel::McuConfig;

use crate::report::Experiment;

/// Paper Table III reference values: (component, FORMS power mW, FORMS
/// area mm², ISAAC power mW, ISAAC area mm²).
const PAPER: [(&str, f64, f64, f64, f64); 7] = [
    ("ADC", 15.2, 0.0091, 16.0, 0.0096),
    ("DAC", 4.0, 0.00017, 4.0, 0.00017),
    ("S&H", 0.0055, 0.000023, 0.01, 0.00004),
    ("crossbar array", 2.44, 0.00024, 2.43, 0.00023),
    ("S+A", 0.2, 0.000024, 0.2, 0.000024),
    ("skipping logic", 0.01, 0.0000001, f64::NAN, f64::NAN),
    ("sign indicator", 0.012, 0.0000031, f64::NAN, f64::NAN),
];

/// Runs the experiment.
pub fn run() -> Experiment {
    let mut e = Experiment::new(
        "Table III",
        "FORMS (fragment 8) vs ISAAC MCU components",
        &[
            "component",
            "FORMS power (mW)",
            "FORMS area (mm²)",
            "ISAAC power (mW)",
            "ISAAC area (mm²)",
            "paper FORMS (mW, mm²)",
        ],
    );
    let forms = McuConfig::forms(8).cost();
    let isaac = McuConfig::isaac().cost();
    let find = |cost: &forms_hwmodel::McuCost, name: &str| {
        cost.breakdown
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
    };
    for (name, p_pw, p_ar, _, _) in PAPER {
        let f = find(&forms, name);
        let i = find(&isaac, name);
        let fmt = |c: Option<forms_hwmodel::ComponentCost>, power: bool| match c {
            Some(c) => {
                if power {
                    format!("{:.4}", c.power_mw)
                } else {
                    format!("{:.7}", c.area_mm2)
                }
            }
            None => "—".to_string(),
        };
        e.row(&[
            name.to_string(),
            fmt(f, true),
            fmt(f, false),
            fmt(i, true),
            fmt(i, false),
            format!("{p_pw}, {p_ar}"),
        ]);
    }
    e.row(&[
        "MCU total".to_string(),
        format!("{:.2}", forms.power_mw),
        format!("{:.5}", forms.area_mm2),
        format!("{:.2}", isaac.power_mw),
        format!("{:.5}", isaac.area_mm2),
        "(Table IV: 23.34 / 24.08 mW)".to_string(),
    ]);
    e.note("converter models are calibrated to the two published design points and interpolate with the paper's scaling rules");
    e.note("'registers & routing' (1.45 mW / 0.003 mm² per MCU) closes the gap between Table III's itemization and Table IV's per-MCU totals");
    e
}
