//! Fault-tolerance suite (`BENCH_faults.json`).
//!
//! Gates the fault-injection and graceful-degradation layer on the
//! paper's robustness claim (§II-C, §V-E): polarized FORMS mapping
//! quantizes magnitudes over the full `2^wb - 1` code range, while the
//! ISAAC offset encoding spends one bit on the bias, so the same stuck
//! cell corrupts a FORMS column by roughly half as much weight. The suite
//! measures that end to end in two parts:
//!
//! 1. **Accuracy sweep** — maps one fragment-polarized layer on FORMS (at
//!    several fragment sizes) and on ISAAC, injects seeded stuck-at
//!    campaigns at increasing cell-fault rates through the packed
//!    bit-plane path, and records top-1 agreement with the clean mapping
//!    plus mean relative output error. [`validate`] requires the FORMS
//!    curves to degrade more slowly than ISAAC's in aggregate.
//! 2. **Serving fault storm** — runs [`serve_resilient`] with paced
//!    replicas, poisons one replica persistently mid-run, and checks the
//!    availability story: the poisoned replica quarantines after its
//!    rebuild budget, every response that *completes* is bitwise-identical
//!    to the pristine output (zero corrupted results), and degraded /
//!    quarantine telemetry is recorded.
//!
//! The suite writes `BENCH_faults.json` at the repository root; the
//! `faults` binary re-reads the file, parses it with
//! [`crate::json::parse`] and checks it with [`validate`], so CI fails on
//! a fault model that stops protecting the serving layer.

use std::time::Duration;

use forms_arch::{MappedLayer, MappingConfig};
use forms_baselines::{IsaacConfig, IsaacLayer};
use forms_dnn::{Layer, Network, WeightLayerMut};
use forms_exec::{Executor, FaultCampaign, FaultableEngine};
use forms_reram::CellSpec;
use forms_rng::{Rng, StdRng};
use forms_serve::{
    serve_resilient, HealthPolicy, PacedConfig, PacedEngine, ResilientConfig, ServeConfig,
    ServeError,
};
use forms_tensor::Tensor;

use crate::json::JsonValue;

/// Shapes, fault axes and storm sizing for one suite run.
#[derive(Clone, Debug)]
pub struct FaultsBenchSpec {
    /// `"full"` or `"smoke"` — recorded in the JSON document.
    pub mode: &'static str,
    /// Human-readable label of the benchmarked layer shape.
    pub layer_label: &'static str,
    /// Lowered weight-matrix rows.
    pub rows: usize,
    /// Lowered weight-matrix columns (class scores for the agreement
    /// metric).
    pub cols: usize,
    /// Base FORMS mapping parameters; `fragment_size` is overridden per
    /// curve, and the ISAAC baseline derives its config from the rest.
    pub mapping: MappingConfig,
    /// FORMS fragment sizes to sweep (ascending; the weight matrix is
    /// polarized at the largest, which every smaller aligned fragment
    /// also satisfies).
    pub fragment_sizes: Vec<usize>,
    /// Cell stuck-at fault rates to sweep (ascending, starting at 0.0;
    /// each rate is split evenly between stuck-low and stuck-high).
    pub rates: Vec<f64>,
    /// Random input samples per measurement point.
    pub samples: usize,
    /// Independent fault draws (campaign seeds) averaged per rate.
    pub trials: u64,
    /// Requests offered during the serving fault storm.
    pub storm_requests: usize,
    /// Modeled per-MVM device occupancy of the storm replicas.
    pub device_latency: Duration,
}

impl FaultsBenchSpec {
    /// The real measurement point: a Table-V-style lowered conv layer at
    /// the paper's crossbar configuration, fragment sizes spanning the
    /// fine-grained design space.
    pub fn full() -> Self {
        Self {
            mode: "full",
            layer_label: "VGG conv 3x3x64->64 (Table-V style, 576x64 lowered)",
            rows: 576,
            cols: 64,
            mapping: MappingConfig::paper(16),
            fragment_sizes: vec![4, 8, 16],
            rates: vec![0.0, 0.002, 0.005, 0.01, 0.02, 0.05],
            samples: 48,
            trials: 3,
            storm_requests: 24,
            device_latency: Duration::from_millis(2),
        }
    }

    /// A seconds-scale variant for CI: tiny layer, fewer draws, same code
    /// paths and JSON schema as [`full`](Self::full).
    pub fn smoke() -> Self {
        Self {
            mode: "smoke",
            layer_label: "smoke conv 3x3x8->8 (72x8 lowered)",
            rows: 72,
            cols: 8,
            mapping: MappingConfig {
                crossbar_dim: 16,
                fragment_size: 8,
                weight_bits: 8,
                cell: CellSpec::paper_2bit(),
                input_bits: 8,
                zero_skipping: true,
            },
            fragment_sizes: vec![4, 8],
            rates: vec![0.0, 0.01, 0.05],
            samples: 24,
            trials: 2,
            storm_requests: 12,
            device_latency: Duration::from_millis(1),
        }
    }
}

/// One design's accuracy-vs-fault-rate curve.
#[derive(Clone, Debug)]
pub struct FaultCurve {
    /// `"FORMS"` or `"ISAAC"`.
    pub design: &'static str,
    /// FORMS fragment size, `None` for the ISAAC baseline.
    pub fragment_size: Option<usize>,
    /// Top-1 agreement with the clean mapping per swept rate, in `[0, 1]`.
    pub agreement: Vec<f64>,
    /// Mean relative L2 output error versus the clean mapping per rate.
    pub mean_rel_err: Vec<f64>,
}

impl FaultCurve {
    /// Mean top-1 agreement across the whole rate sweep — the aggregate
    /// [`validate`] compares between designs.
    pub fn mean_agreement(&self) -> f64 {
        if self.agreement.is_empty() {
            return 0.0;
        }
        self.agreement.iter().sum::<f64>() / self.agreement.len() as f64
    }
}

/// Availability outcome of the serving fault storm.
#[derive(Clone, Debug)]
pub struct StormResult {
    /// Replicas the resilient service ran.
    pub replicas: usize,
    /// Requests submitted.
    pub requests: usize,
    /// Requests that completed with a response.
    pub completed: u64,
    /// Requests refused with [`ServeError::Degraded`].
    pub degraded: u64,
    /// Completed responses that did **not** match the pristine output —
    /// must be zero for the degradation layer to be doing its job.
    pub corrupted: usize,
    /// Replicas quarantined after exhausting their rebuild budget.
    pub quarantines: u64,
    /// Rebuild-from-pristine recovery attempts.
    pub rebuilds: u64,
    /// Fault campaigns the replicas applied to themselves.
    pub faults_injected: u64,
}

/// Everything a suite run produces.
#[derive(Clone, Debug)]
pub struct FaultsBenchReport {
    /// The spec the run used.
    pub spec: FaultsBenchSpec,
    /// Accuracy curves: one per FORMS fragment size, then ISAAC.
    pub curves: Vec<FaultCurve>,
    /// The serving fault-storm outcome.
    pub storm: StormResult,
}

impl FaultsBenchReport {
    /// Mean agreement of the *worst* FORMS curve and of the ISAAC curve —
    /// the suite's headline comparison. FORMS passes only if every swept
    /// fragment size beats the baseline in aggregate.
    pub fn forms_vs_isaac(&self) -> Option<(f64, f64)> {
        let forms = self
            .curves
            .iter()
            .filter(|c| c.design == "FORMS")
            .map(FaultCurve::mean_agreement)
            .fold(f64::NAN, f64::min);
        let isaac = self
            .curves
            .iter()
            .find(|c| c.design == "ISAAC")
            .map(FaultCurve::mean_agreement)?;
        forms.is_finite().then_some((forms, isaac))
    }

    /// Renders the report as the `BENCH_faults.json` document.
    pub fn to_json(&self) -> JsonValue {
        let curves = self
            .curves
            .iter()
            .map(|c| {
                let mut fields = vec![("design", JsonValue::String(c.design.into()))];
                if let Some(f) = c.fragment_size {
                    fields.push(("fragment_size", JsonValue::Number(f as f64)));
                }
                fields.push((
                    "agreement",
                    JsonValue::Array(c.agreement.iter().map(|&a| JsonValue::Number(a)).collect()),
                ));
                fields.push((
                    "mean_rel_err",
                    JsonValue::Array(
                        c.mean_rel_err
                            .iter()
                            .map(|&e| JsonValue::Number(e))
                            .collect(),
                    ),
                ));
                JsonValue::object(fields)
            })
            .collect();
        let storm = &self.storm;
        JsonValue::object(vec![
            ("bench", JsonValue::String("faults".into())),
            ("mode", JsonValue::String(self.spec.mode.into())),
            (
                "layer",
                JsonValue::object(vec![
                    ("label", JsonValue::String(self.spec.layer_label.into())),
                    ("rows", JsonValue::Number(self.spec.rows as f64)),
                    ("cols", JsonValue::Number(self.spec.cols as f64)),
                ]),
            ),
            (
                "accuracy",
                JsonValue::object(vec![
                    (
                        "rates",
                        JsonValue::Array(
                            self.spec
                                .rates
                                .iter()
                                .map(|&r| JsonValue::Number(r))
                                .collect(),
                        ),
                    ),
                    ("samples", JsonValue::Number(self.spec.samples as f64)),
                    ("trials", JsonValue::Number(self.spec.trials as f64)),
                    ("curves", JsonValue::Array(curves)),
                ]),
            ),
            (
                "storm",
                JsonValue::object(vec![
                    ("replicas", JsonValue::Number(storm.replicas as f64)),
                    ("requests", JsonValue::Number(storm.requests as f64)),
                    ("completed", JsonValue::Number(storm.completed as f64)),
                    ("degraded", JsonValue::Number(storm.degraded as f64)),
                    ("corrupted", JsonValue::Number(storm.corrupted as f64)),
                    ("quarantines", JsonValue::Number(storm.quarantines as f64)),
                    ("rebuilds", JsonValue::Number(storm.rebuilds as f64)),
                    (
                        "faults_injected",
                        JsonValue::Number(storm.faults_injected as f64),
                    ),
                ]),
            ),
        ])
    }
}

/// The benchmarked single-weight-layer network. The matrix is polarized
/// at the *largest* swept fragment size; sign constancy over an aligned
/// 16-row group implies constancy over its 4- and 8-row subgroups, so the
/// same matrix maps at every swept fragment size and on ISAAC.
fn faults_network(spec: &FaultsBenchSpec) -> Network {
    let fragment = spec.fragment_sizes.iter().copied().max().unwrap_or(4);
    let mut rng = StdRng::seed_from_u64(0xFA_0175);
    let mut net = Network::new(vec![
        Layer::flatten(),
        Layer::linear(&mut rng, spec.rows, spec.cols),
    ]);
    let matrix = crate::mvm::polarized_matrix(spec.rows, spec.cols, fragment);
    net.for_each_weight_layer(&mut |wl| {
        if let WeightLayerMut::Linear(l) = wl {
            l.set_weight_matrix(&matrix);
        }
    });
    net
}

/// Seeded random input batch in `[0, 1)`, one row per sample.
fn sample_inputs(spec: &FaultsBenchSpec) -> Tensor {
    let mut rng = StdRng::seed_from_u64(0x1_2B07);
    Tensor::from_fn(&[spec.samples, spec.rows], |_| rng.gen::<f32>())
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Sweeps the fault-rate axis for one mapped design: per rate, averages
/// top-1 agreement and relative output error over `trials` independent
/// campaign seeds, each injected into a fresh clone of the pristine
/// executor through the packed bit-plane path.
fn accuracy_curve<E>(
    design: &'static str,
    fragment_size: Option<usize>,
    pristine: &Executor<E>,
    inputs: &Tensor,
    spec: &FaultsBenchSpec,
) -> FaultCurve
where
    E: FaultableEngine,
{
    let samples = spec.samples;
    let clean = pristine.clone().forward(inputs);
    let clean_rows: Vec<&[f32]> = clean.data().chunks(spec.cols).collect();
    let mut agreement = Vec::with_capacity(spec.rates.len());
    let mut mean_rel_err = Vec::with_capacity(spec.rates.len());
    for &rate in &spec.rates {
        let mut matches = 0usize;
        let mut rel_err_sum = 0.0f64;
        for trial in 0..spec.trials {
            let campaign = FaultCampaign::stuck_at(0xFA17 ^ trial, rate * 0.5, rate * 0.5);
            let mut faulty = pristine.clone();
            faulty.inject_faults(&campaign, trial.wrapping_mul(0x9E37));
            let out = faulty.forward(inputs);
            for (s, clean_row) in clean_rows.iter().enumerate() {
                let faulty_row = &out.data()[s * spec.cols..(s + 1) * spec.cols];
                if argmax(faulty_row) == argmax(clean_row) {
                    matches += 1;
                }
                let (mut diff2, mut norm2) = (0.0f64, 0.0f64);
                for (f, c) in faulty_row.iter().zip(clean_row.iter()) {
                    diff2 += f64::from(f - c).powi(2);
                    norm2 += f64::from(*c).powi(2);
                }
                if norm2 > 0.0 {
                    rel_err_sum += (diff2 / norm2).sqrt();
                }
            }
        }
        let points = (samples as u64 * spec.trials) as f64;
        agreement.push(matches as f64 / points);
        mean_rel_err.push(rel_err_sum / points);
    }
    println!(
        "{:>5}{}  agreement {}",
        design,
        fragment_size.map_or(String::new(), |f| format!(" m={f}")),
        agreement
            .iter()
            .map(|a| format!("{:.3}", a))
            .collect::<Vec<_>>()
            .join(" "),
    );
    FaultCurve {
        design,
        fragment_size,
        agreement,
        mean_rel_err,
    }
}

/// Stuck-high rate of the storm's persistent poison — heavy enough that a
/// poisoned replica's outputs blow past the pristine ceiling and trip the
/// sentinels on the first batch they corrupt.
const STORM_STUCK_HIGH_RATE: f64 = 0.35;

/// The storm serves a *single-polarity* layer (every weight positive):
/// with all fragments contributing one sign, a stuck-high campaign can
/// only inflate column currents toward — and past — the pristine ceiling,
/// so the output sentinels are guaranteed to see the corruption. On the
/// mixed-sign sweep matrix, inflation in positive and negative fragments
/// partially cancels, which is exactly the blind spot a range sentinel
/// has; the storm avoids it on purpose, because its job is to gate the
/// *recovery machinery*, not the sentinel's coverage.
fn storm_network(spec: &FaultsBenchSpec) -> Network {
    let mut rng = StdRng::seed_from_u64(0x570_0142);
    let mut net = Network::new(vec![
        Layer::flatten(),
        Layer::linear(&mut rng, spec.rows, spec.cols),
    ]);
    let matrix = Tensor::from_fn(&[spec.rows, spec.cols], |i| {
        0.05 + ((i * 31) % 13) as f32 * 0.07
    });
    net.for_each_weight_layer(&mut |wl| {
        if let WeightLayerMut::Linear(l) = wl {
            l.set_weight_matrix(&matrix);
        }
    });
    net
}

/// Runs the serving fault storm: two paced replicas over the FORMS
/// mapping, one persistently poisoned mid-run with a stuck-high campaign.
/// The health policy tolerates the fault *density* (so requests reach the
/// poisoned silicon), and the output-range sentinels catch the corruption:
/// poisoned batches are refused as [`ServeError::Degraded`], the replica
/// rebuilds, is re-poisoned, and quarantines, while the healthy peer keeps
/// completing pristine responses.
fn run_storm(pristine: &Executor<PacedEngine<MappedLayer>>, spec: &FaultsBenchSpec) -> StormResult {
    let replicas = 2;
    let config = ResilientConfig {
        serve: ServeConfig {
            replicas,
            queue_capacity: spec.storm_requests.max(4),
            max_batch: 2,
            max_delay: Duration::from_micros(200),
            default_deadline: None,
        },
        policy: HealthPolicy {
            // Tolerate the raw density so the sentinel path (not the
            // density gate) is what refuses corrupted batches.
            max_fault_density: 1.0,
            max_rebuilds: 1,
            backoff: Duration::from_micros(100),
            backoff_multiplier: 2.0,
        },
    };
    // Full-scale inputs: every input code is at the top of the range, so a
    // stuck-high array has no quantization headroom to hide in.
    let request = vec![1.0f32; spec.rows];
    let clean = {
        let mut probe = pristine.clone();
        probe
            .forward(&Tensor::from_vec(request.clone(), &[1, spec.rows]))
            .into_vec()
    };
    let poison = FaultCampaign::stuck_at(0x570_12A, 0.0, STORM_STUCK_HIGH_RATE);
    let warmup = spec.storm_requests / 3;
    // Recovery is asynchronous (the poisoned replica must pull at least
    // two batches to exhaust its rebuild budget), so after the minimum
    // request count the client keeps offering small waves until the
    // quarantine shows up in telemetry, up to a generous cap.
    let max_waves = 200;
    let ((requests, completed_outputs, degraded_seen), telemetry) =
        serve_resilient(pristine, &[spec.rows], &config, |handle, faults| {
            let mut outputs: Vec<Vec<f32>> = Vec::new();
            let mut degraded = 0usize;
            let mut requests = 0usize;
            let drive = |n: usize, outputs: &mut Vec<Vec<f32>>, degraded: &mut usize| {
                let tickets: Vec<_> = (0..n)
                    .map(|_| {
                        handle
                            .submit(request.clone())
                            .expect("queue sized for storm")
                    })
                    .collect();
                for t in tickets {
                    match t.wait() {
                        Ok(r) => outputs.push(r.output),
                        Err(ServeError::Degraded) => *degraded += 1,
                        Err(e) => panic!("unexpected storm outcome: {e}"),
                    }
                }
            };
            drive(warmup, &mut outputs, &mut degraded);
            requests += warmup;
            faults.poison(0, poison);
            while requests < spec.storm_requests
                || (handle.telemetry().quarantines == 0 && requests < warmup + max_waves * 2)
            {
                drive(2, &mut outputs, &mut degraded);
                requests += 2;
            }
            (requests, outputs, degraded)
        });
    let corrupted = completed_outputs.iter().filter(|o| **o != clean).count();
    println!(
        "storm: {} requests -> {} completed ({} corrupted), {} degraded, {} rebuilds, {} quarantined",
        requests,
        telemetry.completed,
        corrupted,
        telemetry.degraded,
        telemetry.rebuilds,
        telemetry.quarantines,
    );
    assert_eq!(
        degraded_seen as u64, telemetry.degraded,
        "client-observed and telemetry degraded counts must agree"
    );
    StormResult {
        replicas,
        requests,
        completed: telemetry.completed,
        degraded: telemetry.degraded,
        corrupted,
        quarantines: telemetry.quarantines,
        rebuilds: telemetry.rebuilds,
        faults_injected: telemetry.faults_injected,
    }
}

/// Runs the whole suite for a spec.
///
/// # Panics
///
/// Panics if the benchmark layer cannot be mapped (a bug in the spec).
pub fn run(spec: &FaultsBenchSpec) -> FaultsBenchReport {
    let net = faults_network(spec);
    let inputs = sample_inputs(spec);
    let mut curves = Vec::new();
    for &fragment in &spec.fragment_sizes {
        let config = MappingConfig {
            fragment_size: fragment,
            ..spec.mapping
        };
        let exec = Executor::<MappedLayer>::map_network(&net, &config, config.input_bits)
            .expect("bench layer maps on FORMS");
        curves.push(accuracy_curve(
            "FORMS",
            Some(fragment),
            &exec,
            &inputs,
            spec,
        ));
    }
    let isaac_config = IsaacConfig {
        crossbar_dim: spec.mapping.crossbar_dim,
        cell: spec.mapping.cell,
        weight_bits: spec.mapping.weight_bits,
        input_bits: spec.mapping.input_bits,
    };
    let isaac = Executor::<IsaacLayer>::map_network(&net, &isaac_config, spec.mapping.input_bits)
        .expect("bench layer maps on ISAAC");
    curves.push(accuracy_curve("ISAAC", None, &isaac, &inputs, spec));

    let storm_config = PacedConfig {
        inner: MappingConfig {
            fragment_size: spec.fragment_sizes.first().copied().unwrap_or(4),
            ..spec.mapping
        },
        latency: spec.device_latency,
    };
    let paced = Executor::<PacedEngine<MappedLayer>>::map_network(
        &storm_network(spec),
        &storm_config,
        spec.mapping.input_bits,
    )
    .expect("storm layer maps behind pacing");
    let storm = run_storm(&paced, spec);
    FaultsBenchReport {
        spec: spec.clone(),
        curves,
        storm,
    }
}

/// Checks that a parsed `BENCH_faults.json` document has the shape this
/// suite writes and proves both halves of the degradation story: every
/// FORMS curve starts at perfect agreement, degrades monotonically no
/// faster than the ISAAC baseline in aggregate, and the serving storm
/// quarantined the poisoned replica without returning a single corrupted
/// response.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate(doc: &JsonValue) -> Result<(), String> {
    if doc.get("bench").and_then(JsonValue::as_str) != Some("faults") {
        return Err("missing or wrong `bench` field".into());
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full" | "smoke") => {}
        _ => return Err("`mode` must be \"full\" or \"smoke\"".into()),
    }
    let accuracy = doc.get("accuracy").ok_or("missing `accuracy` object")?;
    let rates = accuracy
        .get("rates")
        .and_then(JsonValue::as_array)
        .ok_or("missing `accuracy.rates` array")?;
    if rates.is_empty() {
        return Err("`accuracy.rates` must not be empty".into());
    }
    let mut rate_values = Vec::with_capacity(rates.len());
    for (i, r) in rates.iter().enumerate() {
        let v = r
            .as_f64()
            .ok_or_else(|| format!("rates[{i}] is not a number"))?;
        if !(0.0..=1.0).contains(&v) || rate_values.last().is_some_and(|&p| v <= p) {
            return Err("`accuracy.rates` must ascend within [0, 1]".into());
        }
        rate_values.push(v);
    }
    if rate_values[0] != 0.0 {
        return Err("`accuracy.rates` must start at 0.0 (clean anchor)".into());
    }
    let curves = accuracy
        .get("curves")
        .and_then(JsonValue::as_array)
        .ok_or("missing `accuracy.curves` array")?;
    let mut worst_forms = f64::INFINITY;
    let mut isaac_mean = None;
    let mut forms_curves = 0usize;
    for (i, curve) in curves.iter().enumerate() {
        let design = match curve.get("design").and_then(JsonValue::as_str) {
            Some(d @ ("FORMS" | "ISAAC")) => d,
            _ => return Err(format!("curves[{i}] has no valid `design`")),
        };
        let series = |key: &str| -> Result<Vec<f64>, String> {
            let arr = curve
                .get(key)
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("curves[{i}] missing `{key}` array"))?;
            if arr.len() != rate_values.len() {
                return Err(format!("curves[{i}].{key} length mismatches `rates`"));
            }
            arr.iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|x| x.is_finite())
                        .ok_or_else(|| format!("curves[{i}].{key} has a non-numeric entry"))
                })
                .collect()
        };
        let agreement = series("agreement")?;
        let rel_err = series("mean_rel_err")?;
        if agreement.iter().any(|&a| !(0.0..=1.0).contains(&a)) {
            return Err(format!("curves[{i}] agreement outside [0, 1]"));
        }
        if agreement[0] != 1.0 || rel_err[0] != 0.0 {
            return Err(format!("curves[{i}] must be exact at the 0.0 clean anchor"));
        }
        let mean = agreement.iter().sum::<f64>() / agreement.len() as f64;
        if design == "FORMS" {
            forms_curves += 1;
            worst_forms = worst_forms.min(mean);
        } else {
            isaac_mean = Some(mean);
        }
    }
    if forms_curves == 0 {
        return Err("no FORMS curve in `accuracy.curves`".into());
    }
    let isaac_mean = isaac_mean.ok_or("no ISAAC curve in `accuracy.curves`")?;
    // The headline claim: fine-grained polarized mapping tolerates stuck
    // cells better than offset encoding — every swept FORMS fragment size
    // must hold at least the baseline's aggregate agreement.
    if worst_forms < isaac_mean {
        return Err(format!(
            "FORMS mean agreement {worst_forms:.3} fell below ISAAC's {isaac_mean:.3}"
        ));
    }
    let storm = doc.get("storm").ok_or("missing `storm` object")?;
    let num = |key: &str| {
        storm
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric `storm.{key}`"))
    };
    if num("corrupted")? != 0.0 {
        return Err("storm returned corrupted responses".into());
    }
    if num("completed")? <= 0.0 {
        return Err("storm completed no requests — no availability".into());
    }
    if num("quarantines")? < 1.0 {
        return Err("storm never quarantined the poisoned replica".into());
    }
    if num("rebuilds")? < 1.0 {
        return Err("storm never attempted recovery before quarantine".into());
    }
    if num("degraded")? < 1.0 {
        return Err("storm recorded no Degraded refusals".into());
    }
    if num("requests")? < num("completed")? + num("degraded")? {
        return Err("storm resolved more requests than were offered".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn smoke_report_round_trips_and_validates() {
        let report = run(&FaultsBenchSpec::smoke());
        let doc = report.to_json();
        validate(&doc).unwrap();
        let reparsed = parse(&doc.pretty()).unwrap();
        validate(&reparsed).unwrap();
        assert_eq!(reparsed, doc);
        let (forms, isaac) = report.forms_vs_isaac().unwrap();
        assert!(forms >= isaac, "FORMS must degrade no faster than ISAAC");
        assert_eq!(report.storm.corrupted, 0);
    }

    #[test]
    fn validate_rejects_broken_documents() {
        let report = run(&FaultsBenchSpec::smoke());
        let good = report.to_json();
        validate(&good).unwrap();
        let JsonValue::Object(fields) = &good else {
            panic!("report is an object")
        };
        for missing in ["bench", "mode", "accuracy", "storm"] {
            let broken = JsonValue::Object(
                fields
                    .iter()
                    .filter(|(k, _)| k.as_str() != missing)
                    .cloned()
                    .collect(),
            );
            assert!(validate(&broken).is_err(), "accepted doc without {missing}");
        }
        // A corrupted completed response must fail validation.
        let mut poisoned = fields.clone();
        for (k, v) in &mut poisoned {
            if k == "storm" {
                if let JsonValue::Object(storm) = v {
                    for (sk, sv) in storm.iter_mut() {
                        if sk == "corrupted" {
                            *sv = JsonValue::Number(1.0);
                        }
                    }
                }
            }
        }
        assert!(validate(&JsonValue::Object(poisoned)).is_err());
        // FORMS degrading faster than ISAAC must fail validation.
        let mut inverted = fields.clone();
        for (k, v) in &mut inverted {
            if k == "accuracy" {
                if let JsonValue::Object(acc) = v {
                    for (ak, av) in acc.iter_mut() {
                        if ak != "curves" {
                            continue;
                        }
                        if let JsonValue::Array(curves) = av {
                            for curve in curves.iter_mut() {
                                let JsonValue::Object(cf) = curve else {
                                    continue;
                                };
                                let is_forms = cf
                                    .iter()
                                    .any(|(ck, cv)| ck == "design" && cv.as_str() == Some("FORMS"));
                                if !is_forms {
                                    continue;
                                }
                                for (ck, cv) in cf.iter_mut() {
                                    if ck != "agreement" {
                                        continue;
                                    }
                                    if let JsonValue::Array(points) = cv {
                                        for p in points.iter_mut().skip(1) {
                                            *p = JsonValue::Number(0.0);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(validate(&JsonValue::Object(inverted)).is_err());
        assert!(validate(&JsonValue::Null).is_err());
    }
}
