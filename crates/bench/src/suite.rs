//! Shared model/dataset suite for the experiments.
//!
//! Every experiment binary is standalone, so the common work — generating
//! the synthetic stand-in datasets, training baselines, running the ADMM
//! compression stack, measuring EIC — lives here. Model and dataset scales
//! follow `DESIGN.md` §2 (topologies preserved, widths reduced for CPU
//! training).

use forms_admm::{
    AdmmConfig, AdmmReport, AdmmTrainer, CompressionSummary, LayerConstraints, PolarizationPolicy,
    PolarizeSpec, PruneSpec, QuantSpec,
};
use forms_dnn::data::{Dataset, SyntheticSpec};
use forms_dnn::{evaluate, models, train_epoch, Network, Optimizer, Sgd};
use forms_rng::StdRng;
use forms_tensor::{FixedSpec, QuantizedTensor};
use forms_workloads::capture_weight_layer_inputs;

/// The paper's benchmark datasets (synthetic stand-ins).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// MNIST stand-in (1×16×16, 10 classes).
    Mnist,
    /// CIFAR-10 stand-in (3×16×16, 10 classes).
    Cifar10,
    /// CIFAR-100 stand-in (3×16×16, 40 classes).
    Cifar100,
    /// ImageNet stand-in (3×24×24, 50 classes).
    ImageNet,
}

impl DatasetKind {
    /// Dataset label as the paper writes it.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::Mnist => "MNIST",
            DatasetKind::Cifar10 => "CIFAR-10",
            DatasetKind::Cifar100 => "CIFAR-100",
            DatasetKind::ImageNet => "ImageNet",
        }
    }

    /// Generation spec.
    pub fn spec(&self) -> SyntheticSpec {
        match self {
            DatasetKind::Mnist => SyntheticSpec::mnist_like(),
            DatasetKind::Cifar10 => SyntheticSpec::cifar10_like(),
            DatasetKind::Cifar100 => SyntheticSpec::cifar100_like(),
            DatasetKind::ImageNet => SyntheticSpec::imagenet_like(),
        }
    }
}

/// The paper's benchmark networks (scaled stand-ins).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// LeNet-5.
    LeNet5,
    /// VGG-16 (width 2).
    Vgg16,
    /// ResNet-18 (width 4).
    ResNet18,
    /// ResNet-50 (width 2).
    ResNet50,
}

impl ModelKind {
    /// Model label.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::LeNet5 => "LeNet5",
            ModelKind::Vgg16 => "VGG16",
            ModelKind::ResNet18 => "ResNet18",
            ModelKind::ResNet50 => "ResNet50",
        }
    }

    /// Builds the network for a dataset.
    pub fn build(&self, dataset: DatasetKind, rng: &mut StdRng) -> Network {
        let spec = dataset.spec();
        let (c, hw, classes) = (spec.channels, spec.height, spec.classes);
        match self {
            ModelKind::LeNet5 => models::lenet5(rng, c, hw, classes),
            ModelKind::Vgg16 => models::vgg16(rng, c, hw, classes, 2),
            ModelKind::ResNet18 => models::resnet18(rng, c, hw, classes, 4),
            ModelKind::ResNet50 => models::resnet50(rng, c, hw, classes, 2),
        }
    }

    /// Baseline training epochs (deeper nets get fewer to bound runtime).
    fn baseline_epochs(&self) -> usize {
        match self {
            ModelKind::LeNet5 => 12,
            ModelKind::Vgg16 => 14,
            ModelKind::ResNet18 => 8,
            ModelKind::ResNet50 => 12,
        }
    }

    /// Stable baseline learning rate per model (probed; higher rates kill
    /// the plain-conv nets' ReLUs).
    pub fn baseline_lr(&self) -> f32 {
        match self {
            ModelKind::Vgg16 => 0.01,
            _ => 0.02,
        }
    }
}

/// A trained baseline model with its data.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// The trained network (32-bit weights, uncompressed).
    pub net: Network,
    /// Training set.
    pub train: Dataset,
    /// Test set.
    pub test: Dataset,
    /// Test accuracy of the baseline.
    pub accuracy: f32,
    /// Which dataset this is.
    pub dataset: DatasetKind,
    /// Which model this is.
    pub model: ModelKind,
}

/// Trains a baseline model on a synthetic stand-in dataset.
pub fn train_baseline(model: ModelKind, dataset: DatasetKind, seed: u64) -> Baseline {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut train, test) = dataset.spec().generate(&mut rng);
    let mut net = model.build(dataset, &mut rng);
    let mut opt = Sgd::new(model.baseline_lr()).momentum(0.9);
    for epoch in 0..model.baseline_epochs() {
        train_epoch(&mut net, &mut opt, &mut train, 16, &mut rng);
        if epoch == model.baseline_epochs() * 2 / 3 {
            let lr = opt.learning_rate();
            opt.set_learning_rate(lr * 0.3);
        }
    }
    let accuracy = evaluate(&mut net, &test, 32);
    Baseline {
        net,
        train,
        test,
        accuracy,
        dataset,
        model,
    }
}

/// Which parts of the FORMS optimization stack to apply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompressionRecipe {
    /// Fraction of filter-shape rows kept (`None` = no pruning).
    pub prune_keep: Option<(f32, f32)>,
    /// Fragment size for polarization (`None` = no polarization).
    pub fragment: Option<usize>,
    /// Polarization policy.
    pub policy: PolarizationPolicy,
    /// Weight bits after quantization (`None` = no quantization).
    pub quant_bits: Option<u32>,
    /// ADMM epochs.
    pub epochs: usize,
}

impl CompressionRecipe {
    /// The paper's full stack at a fragment size with moderate pruning.
    pub fn full(fragment: usize, shape_keep: f32, filter_keep: f32) -> Self {
        Self {
            prune_keep: Some((shape_keep, filter_keep)),
            fragment: Some(fragment),
            policy: PolarizationPolicy::CMajor,
            quant_bits: Some(8),
            epochs: 10,
        }
    }

    /// Polarization only (no pruning, no quantization).
    pub fn polarization_only(fragment: usize) -> Self {
        Self {
            prune_keep: None,
            fragment: Some(fragment),
            policy: PolarizationPolicy::CMajor,
            quant_bits: None,
            epochs: 8,
        }
    }

    /// Pruning + quantization only (the "Pruned/Quantized-ISAAC" stack).
    pub fn prune_quant_only(shape_keep: f32, filter_keep: f32) -> Self {
        Self {
            prune_keep: Some((shape_keep, filter_keep)),
            fragment: None,
            policy: PolarizationPolicy::WMajor,
            quant_bits: Some(8),
            epochs: 10,
        }
    }
}

/// A compressed model with its reports.
#[derive(Clone, Debug)]
pub struct Compressed {
    /// The compressed (constraint-satisfying) network.
    pub net: Network,
    /// ADMM training report.
    pub report: AdmmReport,
    /// Structural compression summary.
    pub summary: CompressionSummary,
    /// The recipe used.
    pub recipe: CompressionRecipe,
}

/// Runs the ADMM compression stack on a trained baseline, using the
/// paper's multi-step flow (Fig. 1): structured pruning first, then
/// fragment polarization on the pruned structure, then quantization — each
/// as its own ADMM phase with masked retraining. (Projecting all three
/// constraints in one shot loses far more accuracy; the staging is what
/// makes the co-design work.)
pub fn compress(baseline: &Baseline, recipe: CompressionRecipe, seed: u64) -> Compressed {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = baseline.net.clone();
    let mut train = baseline.train.clone();
    let count = net.weight_layer_count();
    let prune_spec = |i: usize| {
        recipe.prune_keep.map(|(shape, filter)| PruneSpec {
            shape_keep: shape,
            // Never filter-prune the classifier head.
            filter_keep: if i + 1 == count { 1.0 } else { filter },
        })
    };
    let polarize_spec = recipe.fragment.map(|fragment_size| PolarizeSpec {
        fragment_size,
        policy: recipe.policy,
    });
    let quant_spec = recipe.quant_bits.map(|bits| QuantSpec { bits });

    // Phase plan. The batch-normed residual nets (and LeNet) converge best
    // with all constraints trained jointly, like ADMM-NN; the deep plain
    // VGG stack needs the gradual multi-step flow of paper Fig. 1
    // (prune → +polarize → +quantize), each phase keeping the earlier
    // constraints active so the structure cannot regress.
    let staged = baseline.model == ModelKind::Vgg16;
    let full_constraints: Vec<LayerConstraints> = (0..count)
        .map(|i| LayerConstraints {
            prune: prune_spec(i),
            polarize: polarize_spec,
            quantize: quant_spec,
        })
        .collect();
    let mut phases: Vec<(Vec<LayerConstraints>, usize, f32, usize)> = Vec::new();
    if staged {
        if recipe.prune_keep.is_some() {
            let cs = (0..count)
                .map(|i| LayerConstraints {
                    prune: prune_spec(i),
                    ..Default::default()
                })
                .collect();
            phases.push((cs, recipe.epochs.max(2) / 2 + 2, 1.15, 4));
        }
        if polarize_spec.is_some() {
            let cs = (0..count)
                .map(|i| LayerConstraints {
                    prune: prune_spec(i),
                    polarize: polarize_spec,
                    ..Default::default()
                })
                .collect();
            phases.push((cs, recipe.epochs + 2, 1.15, 4));
        }
        if quant_spec.is_some() {
            phases.push((full_constraints.clone(), recipe.epochs.max(2) / 2, 1.15, 4));
        }
        if phases.is_empty() {
            phases.push((full_constraints, recipe.epochs, 1.15, 4));
        }
    } else {
        phases.push((full_constraints, recipe.epochs, 1.0, 2));
    }

    let mut report = AdmmReport {
        final_loss: 0.0,
        test_accuracy: baseline.accuracy,
        pre_projection_accuracy: baseline.accuracy,
        violations_before_finalize: 0,
    };
    for (constraints, epochs, rho_growth, sign_update_interval) in phases {
        let config = AdmmConfig {
            epochs,
            lr: baseline.model.baseline_lr(),
            rho: 1e-2,
            rho_growth,
            sign_update_interval,
            retrain_epochs: 5,
            ..Default::default()
        };
        let mut trainer = AdmmTrainer::new(&mut net, constraints, config);
        report = trainer.train(&mut net, &mut train, &baseline.test, &mut rng);
    }
    let bits = recipe.quant_bits.unwrap_or(32);
    // The stand-in models are width-scaled, so the crossbar dimension is
    // scaled with them (32 instead of 128) — otherwise array granularity
    // (one crossbar minimum per layer) swamps the reduction ratios that the
    // full-width models show against 128-wide arrays.
    let summary = CompressionSummary::measure(&mut net, 32, bits, 2, 32);
    Compressed {
        net,
        report,
        summary,
        recipe,
    }
}

/// Measures the mean effective input cycles of a model's real activations
/// at a fragment size, quantizing each weight layer's inputs to
/// `input_bits` with a per-layer scale (as the accelerator does).
pub fn measured_eic(net: &Network, data: &Dataset, fragment: usize, input_bits: u32) -> f64 {
    measured_eic_with_headroom(net, data, fragment, input_bits, 0)
}

/// Like [`measured_eic`], with `headroom_bits` of fixed-point margin above
/// the observed maximum. Real fixed-point pipelines calibrate activation
/// scales for the worst case over the whole dataset plus design margin, so
/// typical values sit below full scale — every headroom bit is one extra
/// guaranteed leading zero, which is where much of the paper's Fig. 8
/// skipping opportunity comes from. Headroom 0 (the default elsewhere) is
/// the conservative bound.
pub fn measured_eic_with_headroom(
    net: &Network,
    data: &Dataset,
    fragment: usize,
    input_bits: u32,
    headroom_bits: u32,
) -> f64 {
    let samples = data.len().min(8);
    let (x, _) = data.batch(0, samples);
    let captured = capture_weight_layer_inputs(net, &x);
    let mut total = 0.0;
    let mut fragments = 0usize;
    let margin = (1u32 << headroom_bits) as f32;
    for layer_input in &captured {
        let spec = FixedSpec::for_max_value(input_bits, layer_input.max() * margin);
        let q = QuantizedTensor::quantize_with(layer_input, spec);
        let stats = forms_arch::eic_stats(q.codes(), fragment, input_bits);
        total += stats.mean * stats.fragments as f64;
        fragments += stats.fragments;
    }
    if fragments == 0 {
        0.0
    } else {
        total / fragments as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_learns_above_chance() {
        let b = train_baseline(ModelKind::LeNet5, DatasetKind::Mnist, 7);
        assert!(
            b.accuracy > 0.3,
            "LeNet baseline failed to learn: {}",
            b.accuracy
        );
    }

    #[test]
    fn compression_enforces_constraints_and_reports() {
        let b = train_baseline(ModelKind::LeNet5, DatasetKind::Mnist, 8);
        let mut recipe = CompressionRecipe::full(8, 0.6, 0.6);
        recipe.epochs = 6;
        let c = compress(&b, recipe, 9);
        assert!(
            c.summary.prune_ratio() > 1.5,
            "prune ratio {}",
            c.summary.prune_ratio()
        );
        assert!(
            c.summary.crossbar_reduction() > 2.0,
            "crossbar reduction {}",
            c.summary.crossbar_reduction()
        );
        assert!(c.report.test_accuracy > 0.2);
    }

    #[test]
    fn eic_grows_with_fragment_size() {
        let b = train_baseline(ModelKind::LeNet5, DatasetKind::Mnist, 10);
        let e4 = measured_eic(&b.net, &b.test, 4, 16);
        let e64 = measured_eic(&b.net, &b.test, 64, 16);
        assert!(e4 > 0.0 && e4 <= 16.0);
        assert!(e64 >= e4, "EIC must be monotone in fragment size");
    }
}
