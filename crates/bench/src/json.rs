//! A minimal JSON writer, replacing the former `serde_json` dependency.
//!
//! Only covers what the experiment reports need — strings, numbers, bools,
//! arrays and objects, pretty-printed with two-space indentation (the same
//! layout `serde_json::to_string_pretty` produced, so existing result files
//! stay diffable). Parsing is deliberately out of scope.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Number(f64),
    /// A string (escaped on output).
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array of strings.
    pub fn strings(items: &[String]) -> Self {
        JsonValue::Array(items.iter().cloned().map(JsonValue::String).collect())
    }

    /// Pretty-prints with two-space indentation and a trailing-newline-free
    /// body, matching `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        let v = JsonValue::String("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_object_layout_matches_serde_style() {
        let v = JsonValue::object(vec![
            ("id", JsonValue::String("Fig. 9".into())),
            ("rows", JsonValue::Array(vec![JsonValue::strings(&["a".into()])])),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let expected = "{\n  \"id\": \"Fig. 9\",\n  \"rows\": [\n    [\n      \"a\"\n    ]\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.pretty(), expected);
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(JsonValue::Number(3.0).pretty(), "3");
        assert_eq!(JsonValue::Number(3.25).pretty(), "3.25");
        assert_eq!(JsonValue::Number(f64::NAN).pretty(), "null");
        assert_eq!(JsonValue::Bool(true).pretty(), "true");
        assert_eq!(JsonValue::Null.pretty(), "null");
    }
}
