//! Mixed-precision quantization suite (`BENCH_quant.json`).
//!
//! Gates the per-layer precision-plan refactor: trains a small VGG-style
//! conv stack (the Table-V VGG workload, downscaled to bench size), derives
//! a mixed-precision plan from an ADMM sensitivity sweep
//! ([`forms_admm::plan_from_sensitivity`]: quantization-sensitive layers
//! stay at the paper's w8/a16 point, tolerant layers drop to w4/a8), and
//! measures uniform vs. mixed plans on both the FORMS design and the ISAAC
//! baseline:
//!
//! - MVMs/s through the executor,
//! - input cycles per MVM (the bit-serial cost the plan is meant to cut),
//! - top-1 agreement against the fp32 digital forward,
//! - dynamic energy per MVM, charged per layer against that layer's own
//!   ADC resolution ([`forms_hwmodel::per_layer_energy_pj`]).
//!
//! The suite writes `BENCH_quant.json` at the repository root; the `quant`
//! binary re-reads and validates the file with [`crate::json::parse`] +
//! [`validate`] before exiting, so CI fails on malformed output. The
//! validation also pins the refactor's payoff: for each design, the mixed
//! plan must spend strictly fewer input cycles per MVM than the uniform
//! 16-bit-input plan.

use forms_arch::{Accelerator, AcceleratorConfig, FormsActivity, MappingConfig};
use forms_baselines::{IsaacAccelerator, IsaacActivity, IsaacConfig};
use forms_dnn::data::SyntheticSpec;
use forms_dnn::{evaluate, train_epoch, Layer, Network, Sgd};
use forms_exec::{LayerPrecision, PrecisionPlan};
use forms_hwmodel::{per_layer_energy_pj, McuConfig};
use forms_reram::{Adc, CellSpec};
use forms_rng::StdRng;
use forms_tensor::Tensor;

use crate::json::JsonValue;
use crate::mvm::polarize_network;
use crate::timing::{BenchConfig, Bencher};

/// The paper's operating point for sensitive layers: 8-bit weights,
/// 16-bit activations.
pub const SENSITIVE: LayerPrecision = LayerPrecision {
    weight_bits: 8,
    input_bits: 16,
};

/// The cheap point tolerant layers drop to: 4-bit weights, 8-bit
/// activations.
pub const TOLERANT: LayerPrecision = LayerPrecision {
    weight_bits: 4,
    input_bits: 8,
};

/// Tolerance ladder for the sensitivity-derived plan: the run uses the
/// first accuracy-drop tolerance under which at least one layer proves
/// tolerant. The final 1.0 entry always fires (no accuracy gap exceeds
/// one), so every run produces a plan with at least one narrowed layer.
const TOLERANCES: [f32; 6] = [0.02, 0.05, 0.1, 0.2, 0.5, 1.0];

/// Shapes and configuration for one suite run.
#[derive(Clone, Debug)]
pub struct QuantBenchSpec {
    /// `"full"` or `"smoke"` — recorded in the JSON document.
    pub mode: &'static str,
    /// Human-readable label of the benchmarked layer stack.
    pub workload_label: &'static str,
    /// Input image side length (square, single aspect).
    pub image: usize,
    /// Input channels.
    pub channels: usize,
    /// Classes of the synthetic task.
    pub classes: usize,
    /// Training epochs before the sensitivity sweep.
    pub epochs: usize,
    /// Keep fractions tested by the sensitivity sweep (must include a
    /// value below 1.0 so a layer *can* prove tolerant).
    pub keeps: &'static [f32],
    /// FORMS mapping parameters; the uniform plan runs at these widths.
    pub mapping: MappingConfig,
    /// Images per measured batch.
    pub batch: usize,
    /// Timing-harness configuration.
    pub timing: BenchConfig,
}

impl QuantBenchSpec {
    /// The real measurement point: a VGG-style two-conv stack (Table-V
    /// VGG layers, downscaled to bench size) at the paper's uniform
    /// w8/a16 operating point.
    pub fn full() -> Self {
        Self {
            mode: "full",
            workload_label: "VGG-style conv stack (Table-V VGG layers, downscaled)",
            image: 16,
            channels: 1,
            classes: 10,
            epochs: 10,
            keeps: &[0.5, 0.75],
            mapping: MappingConfig {
                crossbar_dim: 32,
                fragment_size: 4,
                weight_bits: SENSITIVE.weight_bits,
                cell: CellSpec::paper_2bit(),
                input_bits: SENSITIVE.input_bits,
                zero_skipping: true,
            },
            batch: 16,
            timing: BenchConfig::from_env(),
        }
    }

    /// A seconds-scale variant for CI: tiny net, one keep fraction, fast
    /// timing batches, same code paths and JSON schema as
    /// [`full`](Self::full).
    pub fn smoke() -> Self {
        Self {
            mode: "smoke",
            workload_label: "smoke conv stack (Table-V VGG layers, minimal)",
            image: 8,
            channels: 1,
            classes: 3,
            epochs: 6,
            keeps: &[0.5],
            mapping: MappingConfig {
                crossbar_dim: 16,
                fragment_size: 4,
                weight_bits: SENSITIVE.weight_bits,
                cell: CellSpec::paper_2bit(),
                input_bits: SENSITIVE.input_bits,
                zero_skipping: true,
            },
            batch: 8,
            timing: BenchConfig::fast(),
        }
    }

    /// The VGG-style network of this spec (random initialization): two
    /// conv blocks + classifier head in full mode, one conv block in
    /// smoke mode.
    fn network(&self, rng: &mut StdRng) -> Network {
        let c = self.channels;
        if self.mode == "full" {
            let pooled = self.image / 4;
            Network::new(vec![
                Layer::conv2d(rng, c, 8, 3, 1, 1),
                Layer::relu(),
                Layer::max_pool(2),
                Layer::conv2d(rng, 8, 16, 3, 1, 1),
                Layer::relu(),
                Layer::max_pool(2),
                Layer::flatten(),
                Layer::linear(rng, 16 * pooled * pooled, self.classes),
            ])
        } else {
            let pooled = self.image / 2;
            Network::new(vec![
                Layer::conv2d(rng, c, 4, 3, 1, 1),
                Layer::relu(),
                Layer::max_pool(2),
                Layer::flatten(),
                Layer::linear(rng, 4 * pooled * pooled, self.classes),
            ])
        }
    }
}

/// One measurement row: design × plan with every reported metric.
#[derive(Clone, Debug)]
pub struct QuantResult {
    /// `"FORMS"` or `"ISAAC"`.
    pub design: &'static str,
    /// `"uniform"` or `"mixed"`.
    pub plan: &'static str,
    /// The plan's human-readable summary (`PrecisionPlan::summary`).
    pub plan_summary: String,
    /// MVMs per second through the executor (median batch).
    pub mvms_per_s: f64,
    /// Measured input cycles per MVM — what the mixed plan is meant to
    /// cut.
    pub input_cycles_per_mvm: f64,
    /// Fraction of the probe batch whose top-1 class matches the fp32
    /// digital forward.
    pub top1_agreement: f64,
    /// Dynamic energy per MVM in picojoules, each layer charged against
    /// its own ADC resolution.
    pub energy_pj_per_mvm: f64,
}

/// Everything a suite run produces.
#[derive(Clone, Debug)]
pub struct QuantBenchReport {
    /// The spec the run used.
    pub spec: QuantBenchSpec,
    /// Weight layers of the benchmarked network.
    pub weight_layers: usize,
    /// Digital test accuracy before any quantization.
    pub baseline_accuracy: f64,
    /// The accuracy-drop tolerance the sensitivity derivation settled on.
    pub tolerance: f64,
    /// Layers the sweep proved tolerant (narrowed by the mixed plan).
    pub tolerant_layers: usize,
    /// The sensitivity-derived mixed plan.
    pub mixed_plan: PrecisionPlan,
    /// The four design × plan measurement rows.
    pub results: Vec<QuantResult>,
}

impl QuantBenchReport {
    /// The row for a design/plan pair, if measured.
    pub fn result(&self, design: &str, plan: &str) -> Option<&QuantResult> {
        self.results
            .iter()
            .find(|r| r.design == design && r.plan == plan)
    }

    /// Mixed-over-uniform input-cycle ratio for a design (below 1.0 means
    /// the plan pays off).
    pub fn cycle_ratio(&self, design: &str) -> Option<f64> {
        Some(
            self.result(design, "mixed")?.input_cycles_per_mvm
                / self.result(design, "uniform")?.input_cycles_per_mvm,
        )
    }

    /// The narrowest input width any layer of the mixed plan uses.
    pub fn mixed_min_input_bits(&self) -> u32 {
        (0..self.weight_layers)
            .map(|i| self.mixed_plan.layer(i).input_bits)
            .min()
            .unwrap_or(0)
    }

    /// Renders the report as the `BENCH_quant.json` document.
    pub fn to_json(&self) -> JsonValue {
        let results = self
            .results
            .iter()
            .map(|r| {
                JsonValue::object(vec![
                    ("design", JsonValue::String(r.design.into())),
                    ("plan", JsonValue::String(r.plan.into())),
                    ("plan_summary", JsonValue::String(r.plan_summary.clone())),
                    ("mvms_per_s", JsonValue::Number(r.mvms_per_s)),
                    (
                        "input_cycles_per_mvm",
                        JsonValue::Number(r.input_cycles_per_mvm),
                    ),
                    ("top1_agreement", JsonValue::Number(r.top1_agreement)),
                    ("energy_pj_per_mvm", JsonValue::Number(r.energy_pj_per_mvm)),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("bench", JsonValue::String("quant".into())),
            ("mode", JsonValue::String(self.spec.mode.into())),
            (
                "workload",
                JsonValue::object(vec![
                    ("label", JsonValue::String(self.spec.workload_label.into())),
                    (
                        "weight_layers",
                        JsonValue::Number(self.weight_layers as f64),
                    ),
                ]),
            ),
            (
                "baseline_accuracy",
                JsonValue::Number(self.baseline_accuracy),
            ),
            ("tolerance", JsonValue::Number(self.tolerance)),
            (
                "tolerant_layers",
                JsonValue::Number(self.tolerant_layers as f64),
            ),
            ("mixed_plan", JsonValue::String(self.mixed_plan.summary())),
            (
                "mixed_min_input_bits",
                JsonValue::Number(f64::from(self.mixed_min_input_bits())),
            ),
            ("results", JsonValue::Array(results)),
        ])
    }
}

/// Fraction of rows whose argmax class agrees between two `[N, classes]`
/// logit tensors.
fn top1_agreement(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.dims(), b.dims(), "logit shapes must match");
    let (n, classes) = (a.dims()[0], a.dims()[1]);
    let argmax = |t: &Tensor, row: usize| {
        let data = &t.data()[row * classes..(row + 1) * classes];
        data.iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| x.total_cmp(y))
            .map(|(i, _)| i)
            .unwrap()
    };
    let same = (0..n).filter(|&i| argmax(a, i) == argmax(b, i)).count();
    same as f64 / n as f64
}

/// Derives the mixed plan: the first tolerance of the ladder under which
/// at least one layer proves tolerant. Returns the plan, the tolerance,
/// and the tolerant-layer count.
fn derive_mixed_plan(
    sweep: &[forms_admm::LayerSensitivity],
    baseline: f32,
) -> (PrecisionPlan, f64, usize) {
    for &tolerance in &TOLERANCES {
        let plan =
            forms_admm::plan_from_sensitivity(sweep, baseline, tolerance, SENSITIVE, TOLERANT);
        let tolerant = (0..sweep.len())
            .filter(|&i| plan.layer(i) == TOLERANT)
            .count();
        if tolerant > 0 {
            return (plan, f64::from(tolerance), tolerant);
        }
    }
    unreachable!("tolerance 1.0 admits every layer");
}

/// Measures one mapped FORMS accelerator against the digital reference.
fn measure_forms(
    acc: &mut Accelerator,
    plan_name: &'static str,
    x: &Tensor,
    digital: &Tensor,
    bencher: &mut Bencher,
) -> QuantResult {
    acc.reset_stats();
    let analog = acc.forward(x);
    let mvms: u64 = acc.layer_mvms().iter().sum();
    let stats = acc.stats();
    let energies = per_layer_energy_pj(
        &acc.layer_stats()
            .iter()
            .zip(acc.layer_configs())
            .map(|(s, c)| FormsActivity {
                stats: *s,
                config: *c,
            })
            .collect::<Vec<_>>(),
        &acc.layer_configs()
            .iter()
            .map(|c| {
                McuConfig::forms(c.fragment_size)
                    .with_adc_bits(Adc::for_fragment(c.fragment_size, &c.cell).bits().min(12))
            })
            .collect::<Vec<_>>(),
    );
    let agreement = top1_agreement(&analog, digital);
    let timing = bencher.bench(&format!("forms/{plan_name}"), || acc.forward(x));
    QuantResult {
        design: "FORMS",
        plan: plan_name,
        plan_summary: acc.plan().summary(),
        mvms_per_s: mvms as f64 * 1e9 / timing.p50_ns(),
        input_cycles_per_mvm: stats.cycles as f64 / mvms as f64,
        top1_agreement: agreement,
        energy_pj_per_mvm: energies.iter().sum::<f64>() / mvms as f64,
    }
}

/// Measures one mapped ISAAC accelerator against the digital reference.
fn measure_isaac(
    acc: &mut IsaacAccelerator,
    plan_name: &'static str,
    x: &Tensor,
    digital: &Tensor,
    bencher: &mut Bencher,
) -> QuantResult {
    acc.reset_stats();
    let analog = acc.forward(x);
    let mvms: u64 = acc.layer_mvms().iter().sum();
    let stats = acc.stats();
    let energies = per_layer_energy_pj(
        &acc.layer_stats()
            .iter()
            .zip(acc.layer_configs())
            .map(|(s, c)| IsaacActivity {
                stats: *s,
                config: *c,
            })
            .collect::<Vec<_>>(),
        &vec![McuConfig::isaac(); acc.layer_configs().len()],
    );
    let agreement = top1_agreement(&analog, digital);
    let timing = bencher.bench(&format!("isaac/{plan_name}"), || acc.forward(x));
    QuantResult {
        design: "ISAAC",
        plan: plan_name,
        plan_summary: acc.plan().summary(),
        mvms_per_s: mvms as f64 * 1e9 / timing.p50_ns(),
        input_cycles_per_mvm: stats.cycles as f64 / mvms as f64,
        top1_agreement: agreement,
        energy_pj_per_mvm: energies.iter().sum::<f64>() / mvms as f64,
    }
}

/// Runs the whole suite for a spec.
///
/// # Panics
///
/// Panics if the benchmark network cannot be mapped (a bug in the spec).
pub fn run(spec: &QuantBenchSpec) -> QuantBenchReport {
    let mut rng = StdRng::seed_from_u64(0x0B175);
    let mut bencher = Bencher::with_config(spec.timing);

    // --- train the workload and sweep its sensitivity -----------------
    let data_spec = SyntheticSpec {
        classes: spec.classes,
        channels: spec.channels,
        height: spec.image,
        width: spec.image,
        train_per_class: if spec.mode == "full" { 24 } else { 12 },
        test_per_class: if spec.mode == "full" { 12 } else { 8 },
        noise: 0.12,
    };
    let (mut train, test) = data_spec.generate(&mut rng);
    let mut net = spec.network(&mut rng);
    let mut opt = Sgd::new(0.1).momentum(0.9);
    for _ in 0..spec.epochs {
        train_epoch(&mut net, &mut opt, &mut train, spec.batch, &mut rng);
    }
    let baseline = evaluate(&mut net, &test, spec.batch);
    let sweep = forms_admm::sensitivity_sweep(&net, &test, spec.keeps, spec.batch);
    let (mixed, tolerance, tolerant_layers) = derive_mixed_plan(&sweep, baseline);
    let uniform = PrecisionPlan::uniform(SENSITIVE.weight_bits, SENSITIVE.input_bits);

    // --- map under each plan and measure ------------------------------
    polarize_network(&mut net, spec.mapping.fragment_size);
    let x = Tensor::from_fn(&[spec.batch, spec.channels, spec.image, spec.image], |i| {
        ((i * 7) % 11) as f32 / 11.0
    });
    let digital = net.clone().forward(&x);

    let acc_config = AcceleratorConfig {
        mapping: spec.mapping,
        activation_bits: spec.mapping.input_bits,
    };
    let isaac_config = IsaacConfig {
        crossbar_dim: spec.mapping.crossbar_dim,
        cell: spec.mapping.cell,
        weight_bits: spec.mapping.weight_bits,
        input_bits: spec.mapping.input_bits,
    };

    let mut results = Vec::with_capacity(4);
    for (plan_name, plan) in [("uniform", &uniform), ("mixed", &mixed)] {
        let mut forms = Accelerator::with_plan(&net, acc_config, plan.clone())
            .expect("bench net maps on FORMS");
        results.push(measure_forms(
            &mut forms,
            plan_name,
            &x,
            &digital,
            &mut bencher,
        ));
        let mut isaac = IsaacAccelerator::with_plan(&net, isaac_config, plan.clone())
            .expect("bench net maps on ISAAC");
        results.push(measure_isaac(
            &mut isaac,
            plan_name,
            &x,
            &digital,
            &mut bencher,
        ));
    }

    QuantBenchReport {
        spec: spec.clone(),
        weight_layers: sweep.len(),
        baseline_accuracy: f64::from(baseline),
        tolerance,
        tolerant_layers,
        mixed_plan: mixed,
        results,
    }
}

/// Checks that a parsed `BENCH_quant.json` document has the shape this
/// suite writes — and that the refactor's payoff holds: for each design,
/// the mixed plan spends strictly fewer input cycles per MVM than the
/// uniform plan, and the mixed plan narrowed at least one layer below
/// 16 input bits.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate(doc: &JsonValue) -> Result<(), String> {
    if doc.get("bench").and_then(JsonValue::as_str) != Some("quant") {
        return Err("missing or wrong `bench` field".into());
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("full") | Some("smoke") => {}
        _ => return Err("`mode` must be \"full\" or \"smoke\"".into()),
    }
    let layers = doc
        .get("workload")
        .and_then(|w| w.get("weight_layers"))
        .and_then(JsonValue::as_f64)
        .ok_or("missing numeric `workload.weight_layers`")?;
    if !(layers.is_finite() && layers >= 1.0) {
        return Err("`workload.weight_layers` must be a positive count".into());
    }
    let baseline = doc
        .get("baseline_accuracy")
        .and_then(JsonValue::as_f64)
        .ok_or("missing `baseline_accuracy`")?;
    if !(0.0..=1.0).contains(&baseline) {
        return Err("`baseline_accuracy` must be in [0, 1]".into());
    }
    let min_bits = doc
        .get("mixed_min_input_bits")
        .and_then(JsonValue::as_f64)
        .ok_or("missing `mixed_min_input_bits`")?;
    if !(1.0..16.0).contains(&min_bits) {
        return Err(format!(
            "mixed plan must narrow at least one layer below 16 input bits, got {min_bits}"
        ));
    }
    let results = doc
        .get("results")
        .and_then(JsonValue::as_array)
        .ok_or("missing `results` array")?;
    let metric = |design: &str, plan: &str, field: &str| -> Result<f64, String> {
        let row = results
            .iter()
            .find(|r| {
                r.get("design").and_then(JsonValue::as_str) == Some(design)
                    && r.get("plan").and_then(JsonValue::as_str) == Some(plan)
            })
            .ok_or_else(|| format!("missing results row for {design}/{plan}"))?;
        row.get(field)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing `{field}` for {design}/{plan}"))
    };
    for design in ["FORMS", "ISAAC"] {
        for plan in ["uniform", "mixed"] {
            for field in ["mvms_per_s", "input_cycles_per_mvm", "energy_pj_per_mvm"] {
                let v = metric(design, plan, field)?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("non-positive `{field}` for {design}/{plan}"));
                }
            }
            let agreement = metric(design, plan, "top1_agreement")?;
            if !(0.0..=1.0).contains(&agreement) {
                return Err(format!(
                    "`top1_agreement` for {design}/{plan} must be in [0, 1]"
                ));
            }
        }
        let uniform_cycles = metric(design, "uniform", "input_cycles_per_mvm")?;
        let mixed_cycles = metric(design, "mixed", "input_cycles_per_mvm")?;
        if mixed_cycles >= uniform_cycles {
            return Err(format!(
                "mixed plan must spend strictly fewer input cycles/MVM than uniform \
                 on {design}: {mixed_cycles} vs {uniform_cycles}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn smoke_report_round_trips_and_validates() {
        let report = run(&QuantBenchSpec::smoke());
        let doc = report.to_json();
        validate(&doc).unwrap();
        let reparsed = parse(&doc.pretty()).unwrap();
        validate(&reparsed).unwrap();
        assert_eq!(reparsed, doc);
        assert_eq!(report.results.len(), 4);
        // The payoff the suite exists to pin, also visible in-process.
        for design in ["FORMS", "ISAAC"] {
            assert!(report.cycle_ratio(design).unwrap() < 1.0, "{design}");
        }
        assert!(report.tolerant_layers >= 1);
        assert!(report.mixed_min_input_bits() < SENSITIVE.input_bits);
    }

    #[test]
    fn validate_rejects_broken_documents() {
        let report = run(&QuantBenchSpec::smoke());
        let good = report.to_json();
        validate(&good).unwrap();
        let JsonValue::Object(fields) = &good else {
            panic!("report is an object")
        };
        for missing in [
            "bench",
            "mode",
            "workload",
            "baseline_accuracy",
            "mixed_min_input_bits",
            "results",
        ] {
            let broken = JsonValue::Object(
                fields
                    .iter()
                    .filter(|(k, _)| k.as_str() != missing)
                    .cloned()
                    .collect(),
            );
            assert!(validate(&broken).is_err(), "accepted doc without {missing}");
        }
        assert!(validate(&JsonValue::Null).is_err());
    }

    #[test]
    fn top1_agreement_counts_matching_rows() {
        let a = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]);
        let same = Tensor::from_vec(vec![0.7, 0.3, 0.1, 0.9], &[2, 2]);
        let half = Tensor::from_vec(vec![0.2, 0.8, 0.1, 0.9], &[2, 2]);
        assert_eq!(top1_agreement(&a, &same), 1.0);
        assert_eq!(top1_agreement(&a, &half), 0.5);
    }
}
