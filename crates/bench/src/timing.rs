//! A std-only micro-benchmark harness, replacing the former `criterion`
//! dependency.
//!
//! Deliberately simple: warm up, then run a fixed number of timed batches
//! and report min / p50 / p95 / mean batch time per iteration. That is
//! enough to compare design points and catch order-of-magnitude
//! regressions; it does not attempt criterion's statistical machinery.
//!
//! The quantile machinery is shared by every suite: [`percentile`]
//! extracts p50/p95/p99 from sorted samples (batch timings here,
//! client-side latencies in the serving suite), and [`LogHistogram`]
//! aggregates large sample streams into fixed log-spaced buckets when
//! keeping every sample would be wasteful.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// The `q`-quantile (`0 < q <= 1`) of ascending-sorted samples by linear
/// interpolation between the two nearest order statistics. Returns 0 for
/// an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `(0, 1]` or the samples are not sorted.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "samples sorted");
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Number of [`LogHistogram`] buckets.
pub const LOG_HISTOGRAM_BUCKETS: usize = 64;
/// Lower edge of bucket 1 in nanoseconds (bucket 0 catches smaller
/// values).
pub const LOG_HISTOGRAM_LO_NS: f64 = 1_000.0;
/// Geometric growth factor between consecutive bucket edges: every
/// estimate is within ±19% across six decades of latency.
pub const LOG_HISTOGRAM_GROWTH: f64 = std::f64::consts::SQRT_2;

/// A fixed log-spaced-bucket histogram over nanosecond observations, for
/// aggregating sample streams too large to keep sorted in memory.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; LOG_HISTOGRAM_BUCKETS],
    count: u64,
    sum_ns: f64,
    max_ns: f64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; LOG_HISTOGRAM_BUCKETS],
            count: 0,
            sum_ns: 0.0,
            max_ns: 0.0,
        }
    }

    fn bucket_index(ns: f64) -> usize {
        if ns < LOG_HISTOGRAM_LO_NS {
            return 0;
        }
        let octaves = (ns / LOG_HISTOGRAM_LO_NS).log2() / LOG_HISTOGRAM_GROWTH.log2();
        (octaves as usize + 1).min(LOG_HISTOGRAM_BUCKETS - 1)
    }

    fn bucket_lower(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            LOG_HISTOGRAM_LO_NS * LOG_HISTOGRAM_GROWTH.powi(i as i32 - 1)
        }
    }

    fn bucket_upper(i: usize) -> f64 {
        LOG_HISTOGRAM_LO_NS * LOG_HISTOGRAM_GROWTH.powi(i as i32)
    }

    /// Records one observation in nanoseconds.
    pub fn record_ns(&mut self, ns: f64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one observation as a [`Duration`].
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos() as f64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns / self.count as f64
        }
    }

    /// Largest observation in nanoseconds (exact, not bucketed).
    pub fn max_ns(&self) -> f64 {
        self.max_ns
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) in nanoseconds by
    /// geometric interpolation within the bucket holding the target rank;
    /// 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = Self::bucket_lower(i).max(1.0);
                let hi = Self::bucket_upper(i).min(self.max_ns).max(lo);
                let frac = (rank - seen) as f64 / c as f64;
                return lo * (hi / lo).powf(frac);
            }
            seen += c;
        }
        self.max_ns
    }

    /// Median estimate in nanoseconds.
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile estimate in nanoseconds.
    pub fn p95_ns(&self) -> f64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile estimate in nanoseconds.
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Target wall-clock time per measurement batch.
    pub batch_target: Duration,
    /// Number of measured batches.
    pub batches: usize,
    /// Warm-up time before measuring.
    pub warmup: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            batch_target: Duration::from_millis(50),
            batches: 20,
            warmup: Duration::from_millis(100),
        }
    }
}

impl BenchConfig {
    /// A fast profile for smoke runs (used when `FORMS_BENCH_FAST` is set).
    pub fn fast() -> Self {
        Self {
            batch_target: Duration::from_millis(5),
            batches: 5,
            warmup: Duration::from_millis(5),
        }
    }

    /// Picks the profile from the environment.
    pub fn from_env() -> Self {
        if std::env::var_os("FORMS_BENCH_FAST").is_some() {
            Self::fast()
        } else {
            Self::default()
        }
    }
}

/// One benchmark's measurements, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per measured batch.
    pub iters_per_batch: u64,
    /// Per-iteration batch means, sorted ascending.
    pub ns_per_iter: Vec<f64>,
}

impl BenchResult {
    /// Fastest observed batch (ns/iter).
    pub fn min_ns(&self) -> f64 {
        self.ns_per_iter.first().copied().unwrap_or(0.0)
    }

    /// Median batch (ns/iter).
    pub fn median_ns(&self) -> f64 {
        self.p50_ns()
    }

    /// Median batch (ns/iter), interpolated.
    pub fn p50_ns(&self) -> f64 {
        percentile(&self.ns_per_iter, 0.50)
    }

    /// 95th-percentile batch (ns/iter), interpolated.
    pub fn p95_ns(&self) -> f64 {
        percentile(&self.ns_per_iter, 0.95)
    }

    /// 99th-percentile batch (ns/iter), interpolated.
    pub fn p99_ns(&self) -> f64 {
        percentile(&self.ns_per_iter, 0.99)
    }

    /// Mean over batches (ns/iter).
    pub fn mean_ns(&self) -> f64 {
        if self.ns_per_iter.is_empty() {
            return 0.0;
        }
        self.ns_per_iter.iter().sum::<f64>() / self.ns_per_iter.len() as f64
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing one configuration.
pub struct Bencher {
    config: BenchConfig,
    results: Vec<BenchResult>,
}

impl Bencher {
    /// Creates a harness with the environment-selected profile.
    pub fn new() -> Self {
        Self::with_config(BenchConfig::from_env())
    }

    /// Creates a harness with an explicit configuration.
    pub fn with_config(config: BenchConfig) -> Self {
        Self {
            config,
            results: Vec::new(),
        }
    }

    /// Times `f`, printing a one-line summary. The closure's return value
    /// is passed through [`black_box`] so the computation cannot be
    /// optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        // Warm up and calibrate the per-batch iteration count.
        let warmup_end = Instant::now() + self.config.warmup;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            warm_iters += 1;
            if Instant::now() >= warmup_end {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_batch =
            ((self.config.batch_target.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);

        let mut ns_per_iter = Vec::with_capacity(self.config.batches);
        for _ in 0..self.config.batches {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            ns_per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_batch as f64);
        }
        ns_per_iter.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            name: name.to_string(),
            iters_per_batch,
            ns_per_iter,
        };
        println!(
            "{:<40} min {:>12}  p50 {:>12}  p95 {:>12}  mean {:>12}  ({} iters/batch)",
            result.name,
            format_ns(result.min_ns()),
            format_ns(result.p50_ns()),
            format_ns(result.p95_ns()),
            format_ns(result.mean_ns()),
            result.iters_per_batch
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

impl Default for Bencher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut b = Bencher::with_config(BenchConfig {
            batch_target: Duration::from_micros(200),
            batches: 3,
            warmup: Duration::from_micros(100),
        });
        let r = b.bench("spin", || (0..100u64).sum::<u64>());
        assert!(r.min_ns() > 0.0);
        assert!(r.median_ns() >= r.min_ns());
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn percentile_interpolates_between_order_statistics() {
        let samples = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&samples, 0.5), 30.0);
        assert_eq!(percentile(&samples, 1.0), 50.0);
        assert!((percentile(&samples, 0.95) - 48.0).abs() < 1e-9);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn bench_result_percentiles_are_ordered() {
        let r = BenchResult {
            name: "x".into(),
            iters_per_batch: 1,
            ns_per_iter: (1..=100).map(f64::from).collect(),
        };
        assert!(r.min_ns() <= r.p50_ns());
        assert!(r.p50_ns() <= r.p95_ns());
        assert!(r.p95_ns() <= r.p99_ns());
        assert_eq!(r.median_ns(), r.p50_ns());
    }

    #[test]
    fn log_histogram_brackets_its_samples() {
        let mut h = LogHistogram::new();
        for _ in 0..95 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..5 {
            h.record(Duration::from_millis(50));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.p50_ns();
        assert!((50_000.0..200_000.0).contains(&p50), "p50 {p50}");
        let p99 = h.p99_ns();
        assert!((25.0e6..100.0e6).contains(&p99), "p99 {p99}");
        assert!(h.p95_ns() <= p99 + 1e-9);
        assert_eq!(h.max_ns(), 50.0e6);
        assert_eq!(LogHistogram::new().p50_ns(), 0.0);
    }

    #[test]
    fn formats_scale_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
