//! A std-only micro-benchmark harness, replacing the former `criterion`
//! dependency.
//!
//! Deliberately simple: warm up, then run a fixed number of timed batches
//! and report min / median / mean batch time per iteration. That is enough
//! to compare design points and catch order-of-magnitude regressions; it
//! does not attempt criterion's statistical machinery.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Target wall-clock time per measurement batch.
    pub batch_target: Duration,
    /// Number of measured batches.
    pub batches: usize,
    /// Warm-up time before measuring.
    pub warmup: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            batch_target: Duration::from_millis(50),
            batches: 20,
            warmup: Duration::from_millis(100),
        }
    }
}

impl BenchConfig {
    /// A fast profile for smoke runs (used when `FORMS_BENCH_FAST` is set).
    pub fn fast() -> Self {
        Self {
            batch_target: Duration::from_millis(5),
            batches: 5,
            warmup: Duration::from_millis(5),
        }
    }

    /// Picks the profile from the environment.
    pub fn from_env() -> Self {
        if std::env::var_os("FORMS_BENCH_FAST").is_some() {
            Self::fast()
        } else {
            Self::default()
        }
    }
}

/// One benchmark's measurements, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations per measured batch.
    pub iters_per_batch: u64,
    /// Per-iteration batch means, sorted ascending.
    pub ns_per_iter: Vec<f64>,
}

impl BenchResult {
    /// Fastest observed batch (ns/iter).
    pub fn min_ns(&self) -> f64 {
        self.ns_per_iter.first().copied().unwrap_or(0.0)
    }

    /// Median batch (ns/iter).
    pub fn median_ns(&self) -> f64 {
        if self.ns_per_iter.is_empty() {
            return 0.0;
        }
        self.ns_per_iter[self.ns_per_iter.len() / 2]
    }

    /// Mean over batches (ns/iter).
    pub fn mean_ns(&self) -> f64 {
        if self.ns_per_iter.is_empty() {
            return 0.0;
        }
        self.ns_per_iter.iter().sum::<f64>() / self.ns_per_iter.len() as f64
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing one configuration.
pub struct Bencher {
    config: BenchConfig,
    results: Vec<BenchResult>,
}

impl Bencher {
    /// Creates a harness with the environment-selected profile.
    pub fn new() -> Self {
        Self::with_config(BenchConfig::from_env())
    }

    /// Creates a harness with an explicit configuration.
    pub fn with_config(config: BenchConfig) -> Self {
        Self {
            config,
            results: Vec::new(),
        }
    }

    /// Times `f`, printing a one-line summary. The closure's return value
    /// is passed through [`black_box`] so the computation cannot be
    /// optimized away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        // Warm up and calibrate the per-batch iteration count.
        let warmup_end = Instant::now() + self.config.warmup;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            warm_iters += 1;
            if Instant::now() >= warmup_end {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_batch =
            ((self.config.batch_target.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);

        let mut ns_per_iter = Vec::with_capacity(self.config.batches);
        for _ in 0..self.config.batches {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            ns_per_iter.push(start.elapsed().as_nanos() as f64 / iters_per_batch as f64);
        }
        ns_per_iter.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            name: name.to_string(),
            iters_per_batch,
            ns_per_iter,
        };
        println!(
            "{:<40} min {:>12}  median {:>12}  mean {:>12}  ({} iters/batch)",
            result.name,
            format_ns(result.min_ns()),
            format_ns(result.median_ns()),
            format_ns(result.mean_ns()),
            result.iters_per_batch
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

impl Default for Bencher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut b = Bencher::with_config(BenchConfig {
            batch_target: Duration::from_micros(200),
            batches: 3,
            warmup: Duration::from_micros(100),
        });
        let r = b.bench("spin", || (0..100u64).sum::<u64>());
        assert!(r.min_ns() > 0.0);
        assert!(r.median_ns() >= r.min_ns());
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn formats_scale_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
