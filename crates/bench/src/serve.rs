//! Serving-layer throughput suite (`BENCH_serve.json`).
//!
//! Gates the `forms-serve` subsystem: drives an open-loop Poisson request
//! stream against a multi-replica service over a Table-V-style lowered
//! layer, sweeping replica count × batch size for the FORMS design and the
//! ISAAC baseline, and records sustained throughput, p50/p99 latency and
//! shed rate per sweep point.
//!
//! Every replica's engine is wrapped in a [`PacedEngine`] modeling one
//! attached
//! accelerator device (fixed per-MVM occupancy), so replica scaling
//! measures the serving layer's queue/replica overlap rather than host
//! core count — on any host, N device-bound replicas should sustain ~N×
//! the single-replica throughput until the offered load is reached.
//!
//! The suite writes `BENCH_serve.json` at the repository root; the
//! `serve` binary re-reads the file, parses it with [`crate::json::parse`]
//! and checks it with [`validate`] — which requires the 1→max-replica
//! scaling to clear a mode-dependent floor — so CI fails on a serving
//! layer that stops scaling.

use std::time::Duration;

use forms_arch::{MappedLayer, MappingConfig};
use forms_baselines::{IsaacConfig, IsaacLayer};
use forms_dnn::{Layer, Network, WeightLayerMut};
use forms_exec::{CrossbarEngine, Executor};
use forms_reram::CellSpec;
use forms_rng::StdRng;
use forms_serve::{
    run_open_loop, serve, OpenLoopSpec, PacedConfig, PacedEngine, ServeConfig, TelemetrySnapshot,
};
use forms_workloads::ActivationModel;

use crate::json::JsonValue;
use crate::mvm::polarized_matrix;
use crate::timing::{percentile, LogHistogram};

/// Shapes, pacing and sweep axes for one suite run.
#[derive(Clone, Debug)]
pub struct ServeBenchSpec {
    /// `"full"` or `"smoke"` — recorded in the JSON document.
    pub mode: &'static str,
    /// Human-readable label of the served layer shape.
    pub layer_label: &'static str,
    /// Lowered weight-matrix rows (request payload length).
    pub rows: usize,
    /// Lowered weight-matrix columns (response length).
    pub cols: usize,
    /// FORMS mapping parameters (ISAAC derives its config from them).
    pub mapping: MappingConfig,
    /// Modeled per-MVM device occupancy.
    pub device_latency: Duration,
    /// Offered open-loop load per sweep point, in requests/s.
    pub rate_rps: f64,
    /// Requests offered per sweep point.
    pub requests: usize,
    /// Replica counts to sweep (ascending; first must be 1).
    pub replicas: Vec<usize>,
    /// Batch-size limits to sweep.
    pub batches: Vec<usize>,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Dynamic-batching straggler window.
    pub max_delay: Duration,
}

impl ServeBenchSpec {
    /// The real measurement point: the Table-V-style VGG conv layer
    /// (1152×128 lowered) at the paper's configuration, paced at a device
    /// latency that keeps four replicas' host compute under one core.
    pub fn full() -> Self {
        Self {
            mode: "full",
            layer_label: "VGG conv 3x3x128->128 (Table-V style, 1152x128 lowered)",
            rows: 1152,
            cols: 128,
            mapping: MappingConfig::paper(8),
            device_latency: Duration::from_millis(60),
            rate_rps: 120.0,
            requests: 240,
            replicas: vec![1, 2, 4],
            batches: vec![1, 4],
            queue_capacity: 32,
            max_delay: Duration::from_millis(5),
        }
    }

    /// A seconds-scale variant for CI: tiny layer, short pacing, same
    /// code paths and JSON schema as [`full`](Self::full).
    pub fn smoke() -> Self {
        Self {
            mode: "smoke",
            layer_label: "smoke conv 3x3x8->8 (72x8 lowered)",
            rows: 72,
            cols: 8,
            mapping: MappingConfig {
                crossbar_dim: 16,
                fragment_size: 4,
                weight_bits: 8,
                cell: CellSpec::paper_2bit(),
                input_bits: 8,
                zero_skipping: true,
            },
            device_latency: Duration::from_millis(3),
            rate_rps: 600.0,
            requests: 90,
            replicas: vec![1, 4],
            batches: vec![1, 4],
            queue_capacity: 16,
            max_delay: Duration::from_millis(1),
        }
    }
}

/// One sweep point's measurements.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// `"FORMS"` or `"ISAAC"`.
    pub design: &'static str,
    /// Replica count of this point.
    pub replicas: usize,
    /// Batch-size limit of this point.
    pub max_batch: usize,
    /// Sustained goodput in requests/s (completed over wall clock).
    pub throughput_rps: f64,
    /// Median end-to-end latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency in milliseconds.
    pub p99_ms: f64,
    /// Mean end-to-end latency in milliseconds.
    pub mean_ms: f64,
    /// Fraction of offered requests shed at admission.
    pub shed_rate: f64,
    /// Requests that completed.
    pub completed: usize,
    /// Requests shed at admission.
    pub shed: usize,
    /// Requests expired in queue.
    pub expired: usize,
    /// Requests failed by a replica.
    pub failed: usize,
    /// The service's own final telemetry for this point, rendered into
    /// the document via [`TelemetrySnapshot::to_json`] as a server-side
    /// cross-check of the client-observed columns.
    pub telemetry: TelemetrySnapshot,
}

/// Everything a suite run produces.
#[derive(Clone, Debug)]
pub struct ServeBenchReport {
    /// The spec the run used.
    pub spec: ServeBenchSpec,
    /// All sweep points, in design → replicas → batch order.
    pub points: Vec<SweepPoint>,
}

impl ServeBenchReport {
    /// Sustained-throughput scaling for a design: best throughput at the
    /// largest swept replica count over best at one replica.
    pub fn scaling(&self, design: &str) -> Option<f64> {
        let max_replicas = self.spec.replicas.iter().copied().max()?;
        let best = |replicas: usize| {
            self.points
                .iter()
                .filter(|p| p.design == design && p.replicas == replicas)
                .map(|p| p.throughput_rps)
                .fold(f64::NAN, f64::max)
        };
        let (one, many) = (best(1), best(max_replicas));
        (one.is_finite() && many.is_finite() && one > 0.0).then(|| many / one)
    }

    /// Renders the report as the `BENCH_serve.json` document.
    pub fn to_json(&self) -> JsonValue {
        let sweep = self
            .points
            .iter()
            .map(|p| {
                JsonValue::object(vec![
                    ("design", JsonValue::String(p.design.into())),
                    ("replicas", JsonValue::Number(p.replicas as f64)),
                    ("max_batch", JsonValue::Number(p.max_batch as f64)),
                    ("throughput_rps", JsonValue::Number(p.throughput_rps)),
                    ("p50_ms", JsonValue::Number(p.p50_ms)),
                    ("p99_ms", JsonValue::Number(p.p99_ms)),
                    ("mean_ms", JsonValue::Number(p.mean_ms)),
                    ("shed_rate", JsonValue::Number(p.shed_rate)),
                    ("completed", JsonValue::Number(p.completed as f64)),
                    ("shed", JsonValue::Number(p.shed as f64)),
                    ("expired", JsonValue::Number(p.expired as f64)),
                    ("failed", JsonValue::Number(p.failed as f64)),
                    ("telemetry", p.telemetry.to_json()),
                ])
            })
            .collect();
        let mut scaling = Vec::new();
        for design in ["FORMS", "ISAAC"] {
            if let Some(s) = self.scaling(design) {
                scaling.push((design, JsonValue::Number(s)));
            }
        }
        JsonValue::object(vec![
            ("bench", JsonValue::String("serve".into())),
            ("mode", JsonValue::String(self.spec.mode.into())),
            (
                "layer",
                JsonValue::object(vec![
                    ("label", JsonValue::String(self.spec.layer_label.into())),
                    ("rows", JsonValue::Number(self.spec.rows as f64)),
                    ("cols", JsonValue::Number(self.spec.cols as f64)),
                ]),
            ),
            (
                "load",
                JsonValue::object(vec![
                    (
                        "device_latency_ms",
                        JsonValue::Number(self.spec.device_latency.as_secs_f64() * 1e3),
                    ),
                    ("offered_rps", JsonValue::Number(self.spec.rate_rps)),
                    (
                        "requests_per_point",
                        JsonValue::Number(self.spec.requests as f64),
                    ),
                    (
                        "queue_capacity",
                        JsonValue::Number(self.spec.queue_capacity as f64),
                    ),
                ]),
            ),
            ("sweep", JsonValue::Array(sweep)),
            (
                "throughput_scaling_1_to_max_replicas",
                JsonValue::object(scaling),
            ),
        ])
    }
}

/// The single-weight-layer network serving requests of `rows` activations:
/// the lowered conv layer as a linear layer, weights fragment-polarized so
/// both FORMS and ISAAC can map it.
fn serve_network(spec: &ServeBenchSpec) -> Network {
    let mut rng = StdRng::seed_from_u64(0x53184);
    let mut net = Network::new(vec![
        Layer::flatten(),
        Layer::linear(&mut rng, spec.rows, spec.cols),
    ]);
    let matrix = polarized_matrix(spec.rows, spec.cols, spec.mapping.fragment_size);
    net.for_each_weight_layer(&mut |wl| {
        if let WeightLayerMut::Linear(l) = wl {
            l.set_weight_matrix(&matrix);
        }
    });
    net
}

/// Sweeps replica count × batch size for one design's executor.
fn sweep_design<E>(
    design: &'static str,
    executor: &Executor<E>,
    spec: &ServeBenchSpec,
) -> Vec<SweepPoint>
where
    E: CrossbarEngine,
    E::Stats: Sync,
{
    let mut points = Vec::new();
    for &replicas in &spec.replicas {
        for &max_batch in &spec.batches {
            let config = ServeConfig {
                replicas,
                queue_capacity: spec.queue_capacity,
                max_batch,
                max_delay: spec.max_delay,
                default_deadline: None,
            };
            let load = OpenLoopSpec {
                rate_rps: spec.rate_rps,
                requests: spec.requests,
                seed: 0x10AD ^ (replicas as u64) << 8 ^ max_batch as u64,
                model: ActivationModel::half_normal(0.4),
                deadline: None,
            };
            let (report, telemetry) = serve(executor, &[spec.rows], &config, |handle| {
                run_open_loop(handle, &load)
            });
            // Live round-trip gate: the snapshot this point embeds must
            // survive its own JSON rendering bit-for-bit.
            let rendered = telemetry.to_json().pretty();
            let reparsed = TelemetrySnapshot::from_json(
                &crate::json::parse(&rendered).expect("telemetry renders valid JSON"),
            )
            .expect("telemetry JSON parses back");
            assert_eq!(reparsed, telemetry, "telemetry JSON round-trip drifted");
            // Exact client-side percentiles from the sorted samples, plus
            // the bucketed mean as a cross-check aggregate.
            let ns: Vec<f64> = report
                .latencies
                .iter()
                .map(|d| d.as_nanos() as f64)
                .collect();
            let mut hist = LogHistogram::new();
            for &v in &ns {
                hist.record_ns(v);
            }
            let point = SweepPoint {
                design,
                replicas,
                max_batch,
                throughput_rps: report.throughput_rps(),
                p50_ms: percentile(&ns, 0.50) / 1e6,
                p99_ms: percentile(&ns, 0.99) / 1e6,
                mean_ms: hist.mean_ns() / 1e6,
                shed_rate: report.shed_rate(),
                completed: report.completed,
                shed: report.shed,
                expired: report.expired,
                failed: report.failed,
                telemetry,
            };
            println!(
                "{:>5} r={} b={}  {:>7.1} req/s  p50 {:>8.1} ms  p99 {:>8.1} ms  shed {:>5.1}%  ({} ok / {} shed)",
                design,
                replicas,
                max_batch,
                point.throughput_rps,
                point.p50_ms,
                point.p99_ms,
                point.shed_rate * 100.0,
                point.completed,
                point.shed,
            );
            assert_eq!(point.telemetry.failed, 0, "bench engines must not fail");
            points.push(point);
        }
    }
    points
}

/// Runs the whole suite for a spec.
///
/// # Panics
///
/// Panics if the benchmark layer cannot be mapped (a bug in the spec).
pub fn run(spec: &ServeBenchSpec) -> ServeBenchReport {
    let net = serve_network(spec);
    let forms_config = PacedConfig {
        inner: spec.mapping,
        latency: spec.device_latency,
    };
    let forms = Executor::<PacedEngine<MappedLayer>>::map_network(
        &net,
        &forms_config,
        spec.mapping.input_bits,
    )
    .expect("bench layer maps on FORMS");
    let isaac_config = PacedConfig {
        inner: IsaacConfig {
            crossbar_dim: spec.mapping.crossbar_dim,
            cell: spec.mapping.cell,
            weight_bits: spec.mapping.weight_bits,
            input_bits: spec.mapping.input_bits,
        },
        latency: spec.device_latency,
    };
    let isaac = Executor::<PacedEngine<IsaacLayer>>::map_network(
        &net,
        &isaac_config,
        spec.mapping.input_bits,
    )
    .expect("bench layer maps on ISAAC");

    let mut points = sweep_design("FORMS", &forms, spec);
    points.extend(sweep_design("ISAAC", &isaac, spec));
    ServeBenchReport {
        spec: spec.clone(),
        points,
    }
}

/// Minimum acceptable 1→max-replica throughput scaling per mode: device-
/// bound replicas should scale near-linearly; the smoke floor is looser
/// because its points are sub-second and noisy.
pub fn scaling_floor(mode: &str) -> f64 {
    if mode == "full" {
        1.5
    } else {
        1.2
    }
}

/// Checks that a parsed `BENCH_serve.json` document has the shape this
/// suite writes: required top-level fields, a complete sweep with sane
/// latency/shed columns, and 1→max-replica throughput scaling at or above
/// the mode's floor for both designs.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate(doc: &JsonValue) -> Result<(), String> {
    if doc.get("bench").and_then(JsonValue::as_str) != Some("serve") {
        return Err("missing or wrong `bench` field".into());
    }
    let mode = match doc.get("mode").and_then(JsonValue::as_str) {
        Some(m @ ("full" | "smoke")) => m,
        _ => return Err("`mode` must be \"full\" or \"smoke\"".into()),
    };
    let layer = doc.get("layer").ok_or("missing `layer` object")?;
    for key in ["rows", "cols"] {
        let v = layer
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric `layer.{key}`"))?;
        if !(v.is_finite() && v >= 1.0) {
            return Err(format!("`layer.{key}` must be a positive count"));
        }
    }
    let sweep = doc
        .get("sweep")
        .and_then(JsonValue::as_array)
        .ok_or("missing `sweep` array")?;
    if sweep.is_empty() {
        return Err("`sweep` must not be empty".into());
    }
    for (i, point) in sweep.iter().enumerate() {
        for design_field in ["design"] {
            match point.get(design_field).and_then(JsonValue::as_str) {
                Some("FORMS" | "ISAAC") => {}
                _ => return Err(format!("sweep[{i}] has no valid `design`")),
            }
        }
        let num = |key: &str| {
            point
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("sweep[{i}] missing numeric `{key}`"))
        };
        let throughput = num("throughput_rps")?;
        if !(throughput.is_finite() && throughput > 0.0) {
            return Err(format!("sweep[{i}] has non-positive throughput"));
        }
        let (p50, p99) = (num("p50_ms")?, num("p99_ms")?);
        if !(p50.is_finite() && p99.is_finite() && 0.0 < p50 && p50 <= p99) {
            return Err(format!("sweep[{i}] latency percentiles out of order"));
        }
        let shed_rate = num("shed_rate")?;
        if !(0.0..=1.0).contains(&shed_rate) {
            return Err(format!("sweep[{i}] shed_rate outside [0, 1]"));
        }
        if num("failed")? != 0.0 {
            return Err(format!("sweep[{i}] recorded engine failures"));
        }
        let snapshot = point
            .get("telemetry")
            .ok_or_else(|| format!("sweep[{i}] missing `telemetry` snapshot"))?;
        let parsed = TelemetrySnapshot::from_json(snapshot)
            .map_err(|e| format!("sweep[{i}].telemetry does not parse as a snapshot: {e}"))?;
        if parsed.completed as f64 != num("completed")? {
            return Err(format!(
                "sweep[{i}].telemetry disagrees with the client-observed completions"
            ));
        }
        validate_stage_breakdown(&parsed).map_err(|e| format!("sweep[{i}].telemetry: {e}"))?;
    }
    let scaling = doc
        .get("throughput_scaling_1_to_max_replicas")
        .ok_or("missing `throughput_scaling_1_to_max_replicas`")?;
    validate_scaling_entries(scaling, mode)?;
    Ok(())
}

/// Checks one embedded snapshot's per-stage breakdown: every stage saw
/// every completion, percentiles are ordered, the per-stage sums
/// telescope to the end-to-end latency sum within 1%, and per-layer
/// attribution is populated whenever work completed.
///
/// # Errors
///
/// Returns a description of the first violated stage invariant.
pub fn validate_stage_breakdown(snapshot: &TelemetrySnapshot) -> Result<(), String> {
    if snapshot.completed == 0 {
        return Ok(());
    }
    let mut stage_sum = 0u64;
    for (stage, name) in snapshot
        .stages
        .in_order()
        .into_iter()
        .zip(forms_serve::STAGE_NAMES)
    {
        if stage.count != snapshot.completed {
            return Err(format!(
                "stage `{name}` saw {} samples but {} requests completed",
                stage.count, snapshot.completed
            ));
        }
        if stage.p50_ns() > stage.p99_ns() + 1e-9 {
            return Err(format!("stage `{name}` percentiles out of order"));
        }
        stage_sum = stage_sum.saturating_add(stage.sum_ns);
    }
    let end_to_end = snapshot.latency.sum_ns;
    let drift = stage_sum.abs_diff(end_to_end) as f64;
    if drift > end_to_end as f64 * 0.01 {
        return Err(format!(
            "stage sums ({stage_sum} ns) do not telescope to the end-to-end \
             latency sum ({end_to_end} ns) within 1%"
        ));
    }
    if !snapshot.layers.iter().any(|l| l.mvms > 0 && l.wall_ns > 0) {
        return Err("per-layer attribution is empty despite completed requests".into());
    }
    Ok(())
}

fn validate_scaling_entries(scaling: &JsonValue, mode: &str) -> Result<(), String> {
    let floor = scaling_floor(mode);
    for design in ["FORMS", "ISAAC"] {
        let s = scaling
            .get(design)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing scaling entry for {design}"))?;
        if !(s.is_finite() && s >= floor) {
            return Err(format!(
                "{design} replica scaling {s:.2}x is below the {floor:.1}x floor"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn smoke_report_round_trips_and_validates() {
        let report = run(&ServeBenchSpec::smoke());
        let doc = report.to_json();
        validate(&doc).unwrap();
        let reparsed = parse(&doc.pretty()).unwrap();
        validate(&reparsed).unwrap();
        assert_eq!(reparsed, doc);
        assert!(report.scaling("FORMS").unwrap() >= scaling_floor("smoke"));
        assert!(report.scaling("ISAAC").unwrap() >= scaling_floor("smoke"));
    }

    #[test]
    fn validate_rejects_broken_documents() {
        let report = run(&ServeBenchSpec::smoke());
        let good = report.to_json();
        validate(&good).unwrap();
        let JsonValue::Object(fields) = &good else {
            panic!("report is an object")
        };
        for missing in [
            "bench",
            "mode",
            "layer",
            "sweep",
            "throughput_scaling_1_to_max_replicas",
        ] {
            let broken = JsonValue::Object(
                fields
                    .iter()
                    .filter(|(k, _)| k.as_str() != missing)
                    .cloned()
                    .collect(),
            );
            assert!(validate(&broken).is_err(), "accepted doc without {missing}");
        }
        // A scaling regression below the floor must fail validation.
        let mut capped = fields.clone();
        for (k, v) in &mut capped {
            if k == "throughput_scaling_1_to_max_replicas" {
                *v = JsonValue::object(vec![
                    ("FORMS", JsonValue::Number(1.01)),
                    ("ISAAC", JsonValue::Number(1.01)),
                ]);
            }
        }
        assert!(validate(&JsonValue::Object(capped)).is_err());
        assert!(validate(&JsonValue::Null).is_err());
    }
}
