//! Regenerates the paper's Fig. 6 (accuracy vs fragment size) — see DESIGN.md §4.

use std::path::Path;

fn main() {
    let e = forms_bench::experiments::fig6::run();
    e.print();
    if let Err(err) = e.save_json(Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results"
    ))) {
        eprintln!("could not save results: {err}");
    }
}
