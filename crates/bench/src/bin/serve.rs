//! Serving-layer throughput suite — writes and validates
//! `BENCH_serve.json`.
//!
//! Usage: `cargo run --release -p forms-bench --bin serve [-- --smoke]`.
//! `--smoke` runs a seconds-scale variant with the same code paths and
//! JSON schema; CI uses it to catch serving-layer and schema regressions.
//! The binary re-reads the file it wrote, parses it with
//! `forms_bench::json::parse` and checks it with
//! `forms_bench::serve::validate` — including the replica-scaling floor —
//! exiting non-zero on any mismatch.

use std::path::Path;
use std::process::ExitCode;

use forms_bench::json::parse;
use forms_bench::serve::{run, validate, ServeBenchSpec};

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spec = if smoke {
        ServeBenchSpec::smoke()
    } else {
        ServeBenchSpec::full()
    };
    eprintln!(
        "serve suite ({} mode): {} at {} req/s offered — this replays timed \
         request traces, so expect it to take a while",
        spec.mode, spec.layer_label, spec.rate_rps
    );
    let report = run(&spec);

    for design in ["FORMS", "ISAAC"] {
        if let Some(s) = report.scaling(design) {
            println!(
                "{design} sustained throughput scaling 1 -> {} replicas: {s:.2}x",
                report.spec.replicas.iter().max().unwrap_or(&1)
            );
        }
    }

    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve.json"
    ));
    let doc = report.to_json();
    if let Err(err) = std::fs::write(path, doc.pretty() + "\n") {
        eprintln!("could not write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }

    // Self-check: read the file back through the parser and validate its
    // schema and scaling floor, so a malformed or regressed
    // BENCH_serve.json fails the run (and CI).
    let written = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("could not re-read {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let reparsed = match parse(&written) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("BENCH_serve.json is not valid JSON: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(err) = validate(&reparsed) {
        eprintln!("BENCH_serve.json is malformed: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} (validated)", path.display());
    ExitCode::SUCCESS
}
