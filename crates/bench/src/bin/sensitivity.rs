//! Per-layer pruning sensitivity sweep (paper §III-A: choosing per-layer
//! pruning ratios). Prints, for each weight layer of a trained LeNet-5
//! stand-in, the accuracy at several one-shot keep fractions and the
//! recommended per-layer keep for a 2% tolerance.

use forms_admm::{recommend_keeps, sensitivity_sweep};
use forms_bench::suite::{train_baseline, DatasetKind, ModelKind};

fn main() {
    let baseline = train_baseline(ModelKind::LeNet5, DatasetKind::Mnist, 3001);
    println!(
        "baseline LeNet-5 accuracy: {:.1}%\n",
        100.0 * baseline.accuracy
    );
    let keeps = [0.25f32, 0.5, 0.75, 1.0];
    let sweep = sensitivity_sweep(&baseline.net, &baseline.test, &keeps, 32);
    print!("layer |");
    for k in keeps {
        print!(" keep {k:4} |");
    }
    println!(" recommended");
    for s in &sweep {
        print!("{:5} |", s.layer);
        for (_, acc) in &s.accuracy_at_keep {
            print!("   {:5.1}%  |", 100.0 * acc);
        }
        println!("   {:.2}", s.smallest_safe_keep(baseline.accuracy, 0.02));
    }
    let rec = recommend_keeps(&sweep, baseline.accuracy, 0.02);
    println!(
        "\nper-layer keeps at 2% tolerance: {rec:?}\n(the paper's crossbar-aware step then \
         rounds each keep to an array boundary — see forms_admm::crossbar_aware_keep)"
    );
}
