//! Regenerates the paper's Table IV (chip-level comparison) — see DESIGN.md §4.

use std::path::Path;

fn main() {
    let e = forms_bench::experiments::table4::run();
    e.print();
    if let Err(err) = e.save_json(Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results"
    ))) {
        eprintln!("could not save results: {err}");
    }
}
