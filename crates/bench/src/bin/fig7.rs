//! Regenerates the paper's Fig. 7 (effective bits / fragment EIC) — see DESIGN.md §4.

use std::path::Path;

fn main() {
    let e = forms_bench::experiments::fig7::run();
    e.print();
    if let Err(err) = e.save_json(Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results"
    ))) {
        eprintln!("could not save results: {err}");
    }
}
