//! MVM hot-path throughput suite — writes and validates `BENCH_mvm.json`.
//!
//! Usage: `cargo run --release -p forms-bench --bin mvm [-- --smoke] [--batch N,M]`.
//! `--smoke` (or `FORMS_BENCH_FAST=1` for the timing batches alone) runs a
//! seconds-scale variant with the same code paths and JSON schema; CI uses
//! it to catch hot-path and schema regressions. `--batch` overrides the
//! batched-matmul kernel sweep with a fixed comma-separated list of batch
//! sizes (each at least 2), so CI runs are reproducible. The binary
//! re-reads the file it wrote and validates it with
//! `forms_bench::json::parse` + `forms_bench::mvm::validate`, exiting
//! non-zero on any mismatch or performance-gate violation.

use std::path::Path;
use std::process::ExitCode;

use forms_bench::json::parse;
use forms_bench::mvm::{run, validate, MvmBenchSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut spec = if smoke {
        MvmBenchSpec::smoke()
    } else {
        MvmBenchSpec::full()
    };
    let mut sweep = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg != "--batch" {
            continue;
        }
        let Some(list) = it.next() else {
            eprintln!("--batch needs a comma-separated list of batch sizes");
            return ExitCode::FAILURE;
        };
        for part in list.split(',') {
            match part.trim().parse::<usize>() {
                Ok(b) if b >= 2 => sweep.push(b),
                _ => {
                    eprintln!("--batch sizes must be integers of at least 2, got {part:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if !sweep.is_empty() {
        sweep.sort_unstable();
        sweep.dedup();
        spec.batch_sweep = sweep;
    }
    eprintln!(
        "mvm suite ({} mode): {} — this measures, so expect it to take a while",
        spec.mode, spec.layer_label
    );
    let report = run(&spec);

    for k in &report.kernels {
        println!(
            "{:>5} {:<9} (batch {:>2}) {:>12.0} MVMs/s ({:.0} ns/MVM)",
            k.design, k.kernel, k.batch, k.mvms_per_s, k.ns_per_mvm
        );
    }
    for design in ["FORMS", "ISAAC"] {
        if let Some(s) = report.speedup(design) {
            println!("{design} packed/reference speedup: {s:.2}x");
        }
        if let Some(s) = report.speedup_batched(design) {
            println!("{design} batched/packed speedup: {s:.2}x");
        }
    }
    for r in &report.images {
        println!(
            "{:>5} {:<8} ({} worker{}) {:>9.1} images/s",
            r.design,
            r.exec,
            r.workers,
            if r.workers == 1 { "" } else { "s" },
            r.images_per_s
        );
    }

    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mvm.json"));
    let doc = report.to_json();
    if let Err(err) = std::fs::write(path, doc.pretty() + "\n") {
        eprintln!("could not write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }

    // Self-check: read the file back through the parser and validate its
    // schema, so a malformed BENCH_mvm.json fails the run (and CI).
    let written = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("could not re-read {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let reparsed = match parse(&written) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("BENCH_mvm.json is not valid JSON: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(err) = validate(&reparsed) {
        eprintln!("BENCH_mvm.json is malformed: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} (validated)", path.display());
    ExitCode::SUCCESS
}
