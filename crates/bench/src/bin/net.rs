//! Network front-end suite — writes and validates `BENCH_net.json`.
//!
//! Usage: `cargo run --release -p forms-bench --bin net [-- --smoke]`.
//! `--smoke` runs a seconds-scale variant with the same code paths and
//! JSON schema; CI uses it to catch front-end and schema regressions over
//! real loopback sockets. The binary re-reads the file it wrote, parses
//! it with `forms_bench::json::parse` and checks it with
//! `forms_bench::net::validate` — including the loopback/in-process
//! throughput floor and the zero-corruption storm gate — exiting
//! non-zero on any mismatch.

use std::path::Path;
use std::process::ExitCode;

use forms_bench::json::parse;
use forms_bench::net::{loopback_floor, run, validate, NetBenchSpec};

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spec = if smoke {
        NetBenchSpec::smoke()
    } else {
        NetBenchSpec::full()
    };
    eprintln!(
        "net suite ({} mode): {} at {} req/s offered over loopback TCP — \
         this replays timed request traces, so expect it to take a while",
        spec.mode, spec.layer_label, spec.rate_rps
    );
    let report = run(&spec);

    println!(
        "worst loopback/in-process goodput ratio across the sweep: {:.2}x (floor {})",
        report.worst_ratio(),
        loopback_floor(spec.mode)
    );

    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json"));
    let doc = report.to_json();
    if let Err(err) = std::fs::write(path, doc.pretty() + "\n") {
        eprintln!("could not write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }

    // Self-check: read the file back through the parser and validate its
    // schema, throughput floor, and storm integrity gates, so a malformed
    // or regressed BENCH_net.json fails the run (and CI).
    let written = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("could not re-read {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let reparsed = match parse(&written) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("BENCH_net.json is not valid JSON: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(err) = validate(&reparsed) {
        eprintln!("BENCH_net.json is malformed: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} (validated)", path.display());
    ExitCode::SUCCESS
}
