//! Fault-tolerance suite — writes and validates `BENCH_faults.json`.
//!
//! Usage: `cargo run --release -p forms-bench --bin faults [-- --smoke]`.
//! `--smoke` runs a seconds-scale variant with the same code paths and
//! JSON schema; CI uses it to catch fault-model and degradation-layer
//! regressions. The binary re-reads the file it wrote, parses it with
//! `forms_bench::json::parse` and checks it with
//! `forms_bench::faults::validate` — including the FORMS-vs-ISAAC
//! degradation comparison and the zero-corrupted-responses storm
//! invariant — exiting non-zero on any mismatch.

use std::path::Path;
use std::process::ExitCode;

use forms_bench::faults::{run, validate, FaultsBenchSpec};
use forms_bench::json::parse;

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spec = if smoke {
        FaultsBenchSpec::smoke()
    } else {
        FaultsBenchSpec::full()
    };
    eprintln!(
        "faults suite ({} mode): {} — stuck-at sweep at rates {:?}, then a \
         poisoned-replica serving storm",
        spec.mode, spec.layer_label, spec.rates
    );
    let report = run(&spec);

    if let Some((forms, isaac)) = report.forms_vs_isaac() {
        println!(
            "mean top-1 agreement across the sweep: FORMS (worst fragment) {forms:.3} \
             vs ISAAC {isaac:.3}"
        );
    }

    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_faults.json"
    ));
    let doc = report.to_json();
    if let Err(err) = std::fs::write(path, doc.pretty() + "\n") {
        eprintln!("could not write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }

    // Self-check: read the file back through the parser and validate the
    // schema, the degradation comparison and the storm invariants, so a
    // malformed or regressed BENCH_faults.json fails the run (and CI).
    let written = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("could not re-read {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let reparsed = match parse(&written) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("BENCH_faults.json is not valid JSON: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(err) = validate(&reparsed) {
        eprintln!("BENCH_faults.json is malformed: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} (validated)", path.display());
    ExitCode::SUCCESS
}
