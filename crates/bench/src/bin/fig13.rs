//! Regenerates the paper's Fig. 13 (fps speedups, CIFAR-10) — see DESIGN.md §4.

use std::path::Path;

fn main() {
    let e = forms_bench::experiments::fig13::run();
    e.print();
    if let Err(err) = e.save_json(Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results"
    ))) {
        eprintln!("could not save results: {err}");
    }
}
