//! Runs every experiment of the evaluation section in order and saves the
//! results under `results/` (DESIGN.md §4 maps each to the paper).

use std::path::Path;

use forms_bench::experiments;
use forms_bench::report::Experiment;

fn main() {
    let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let mut all: Vec<Experiment> = Vec::new();
    println!("FORMS reproduction — full evaluation sweep\n");
    all.push(experiments::fig7::run());
    all.extend(experiments::fig8::run());
    all.push(experiments::fig6::run());
    all.push(experiments::table1::run());
    all.push(experiments::table2::run());
    all.push(experiments::table3::run());
    all.push(experiments::table4::run());
    all.push(experiments::table5::run());
    all.push(experiments::fig13::run());
    all.push(experiments::fig14::run());
    all.push(experiments::table6::run());
    all.push(experiments::noise::run());
    all.push(experiments::energy::run());
    for e in &all {
        e.print();
        if let Err(err) = e.save_json(dir) {
            eprintln!("could not save {}: {err}", e.id);
        }
    }
    println!(
        "{} experiments regenerated; JSON written to {}/",
        all.len(),
        dir.display()
    );
}
