//! Mixed-precision quantization suite — writes and validates
//! `BENCH_quant.json`.
//!
//! Usage: `cargo run --release -p forms-bench --bin quant [-- --smoke]`.
//! `--smoke` (or `FORMS_BENCH_FAST=1` for the timing batches alone) runs a
//! seconds-scale variant with the same code paths and JSON schema; CI uses
//! it to pin the precision-plan payoff (mixed plans must spend strictly
//! fewer input cycles per MVM than uniform on both designs). The binary
//! re-reads the file it wrote and validates it with
//! `forms_bench::json::parse` + `forms_bench::quant::validate`, exiting
//! non-zero on any mismatch.

use std::path::Path;
use std::process::ExitCode;

use forms_bench::json::parse;
use forms_bench::quant::{run, validate, QuantBenchSpec};

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spec = if smoke {
        QuantBenchSpec::smoke()
    } else {
        QuantBenchSpec::full()
    };
    eprintln!(
        "quant suite ({} mode): {} — trains and measures, so expect it to take a while",
        spec.mode, spec.workload_label
    );
    let report = run(&spec);

    println!(
        "baseline accuracy {:.3}, tolerance {:.2}: {}/{} layers tolerant, mixed plan {}",
        report.baseline_accuracy,
        report.tolerance,
        report.tolerant_layers,
        report.weight_layers,
        report.mixed_plan.summary()
    );
    for r in &report.results {
        println!(
            "{:>5} {:<8} {:>12.0} MVMs/s  {:>6.2} cycles/MVM  {:>5.1}% top-1 agreement  {:>8.1} pJ/MVM",
            r.design,
            r.plan,
            r.mvms_per_s,
            r.input_cycles_per_mvm,
            r.top1_agreement * 100.0,
            r.energy_pj_per_mvm
        );
    }
    for design in ["FORMS", "ISAAC"] {
        if let Some(ratio) = report.cycle_ratio(design) {
            println!("{design} mixed/uniform input-cycle ratio: {ratio:.2}");
        }
    }

    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_quant.json"
    ));
    let doc = report.to_json();
    if let Err(err) = std::fs::write(path, doc.pretty() + "\n") {
        eprintln!("could not write {}: {err}", path.display());
        return ExitCode::FAILURE;
    }

    // Self-check: read the file back through the parser and validate its
    // schema, so a malformed BENCH_quant.json fails the run (and CI).
    let written = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(err) => {
            eprintln!("could not re-read {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let reparsed = match parse(&written) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("BENCH_quant.json is not valid JSON: {err}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(err) = validate(&reparsed) {
        eprintln!("BENCH_quant.json is malformed: {err}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} (validated)", path.display());
    ExitCode::SUCCESS
}
