//! Regenerates the paper's Fig. 8 (both panels; see DESIGN.md §4).

use std::path::Path;

fn main() {
    for e in forms_bench::experiments::fig8::run() {
        e.print();
        if let Err(err) = e.save_json(Path::new(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results"
        ))) {
            eprintln!("could not save results: {err}");
        }
    }
}
