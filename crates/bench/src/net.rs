//! Network front-end suite (`BENCH_net.json`).
//!
//! Gates the `forms-net` subsystem end to end: drives the open-loop
//! Poisson generator through *real loopback sockets* — frame encoding,
//! kernel socket buffers, per-connection reader/writer threads, the
//! bounded in-flight window — against the same paced serving core the
//! `serve` suite measures in-process, sweeping connection count ×
//! replica count for the FORMS design and the ISAAC baseline.
//!
//! Every sweep point is paired with an **in-process baseline** at the
//! same replica count (the [`run_open_loop`] path with no sockets), and
//! [`validate`] requires loopback goodput to hold at least the mode's
//! [`loopback_floor`] of that baseline ([`LOOPBACK_FLOOR`] in full mode)
//! — the front-end may tax the serving layer, but it must not become the
//! bottleneck.
//!
//! The suite ends with a **socket fault storm**: a resilient two-replica
//! service, one replica persistently poisoned mid-run with a stuck-high
//! campaign, driven entirely over a TCP connection. The storm proves the
//! degradation contract survives the wire: every completed response is
//! bitwise-identical to the pristine output, refusals surface as
//! `Degraded` *wire statuses* on a live connection (never as dropped
//! sockets), and the poisoned replica quarantines.
//!
//! The suite writes `BENCH_net.json` at the repository root; the `net`
//! binary re-reads the file, parses it with [`crate::json::parse`] and
//! checks it with [`validate`], so CI fails on a front-end that slows
//! down, corrupts, or drops.

use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use forms_arch::{MappedLayer, MappingConfig};
use forms_baselines::{IsaacConfig, IsaacLayer};
use forms_dnn::{Layer, Network, WeightLayerMut};
use forms_exec::{CrossbarEngine, Executor, FaultCampaign};
use forms_net::{serve_net, serve_net_resilient, ClientConfig, NetClient, NetConfig, WireStatus};
use forms_reram::CellSpec;
use forms_rng::StdRng;
use forms_serve::{
    run_open_loop, serve, HealthPolicy, OpenLoopSpec, PacedConfig, PacedEngine, ResilientConfig,
    ServeConfig, TelemetrySnapshot,
};
use forms_tensor::Tensor;
use forms_workloads::{poisson_arrivals, synth_request, ActivationModel};

use crate::json::JsonValue;
use crate::mvm::polarized_matrix;
use crate::timing::percentile;

/// Minimum acceptable loopback goodput as a fraction of the in-process
/// baseline at the same replica count (full-mode gate).
pub const LOOPBACK_FLOOR: f64 = 0.7;

/// Minimum acceptable loopback/in-process goodput ratio per mode. Full
/// mode holds the real [`LOOPBACK_FLOOR`] gate; the smoke floor is looser
/// because its sub-second points run concurrently with the rest of the
/// workspace test suite, and saturation throughput under that contention
/// is noisy on *both* sides of the ratio.
pub fn loopback_floor(mode: &str) -> f64 {
    if mode == "full" {
        LOOPBACK_FLOOR
    } else {
        0.4
    }
}

/// Shapes, pacing and sweep axes for one suite run.
#[derive(Clone, Debug)]
pub struct NetBenchSpec {
    /// `"full"` or `"smoke"` — recorded in the JSON document.
    pub mode: &'static str,
    /// Human-readable label of the served layer shape.
    pub layer_label: &'static str,
    /// Lowered weight-matrix rows (request payload length).
    pub rows: usize,
    /// Lowered weight-matrix columns (response length).
    pub cols: usize,
    /// FORMS mapping parameters (ISAAC derives its config from them).
    pub mapping: MappingConfig,
    /// Modeled per-MVM device occupancy of the sweep replicas.
    pub device_latency: Duration,
    /// Offered open-loop load per sweep point, in requests/s (split
    /// evenly across the point's connections).
    pub rate_rps: f64,
    /// Requests offered per sweep point.
    pub requests: usize,
    /// Replica counts to sweep.
    pub replicas: Vec<usize>,
    /// Concurrent client connections to sweep.
    pub connections: Vec<usize>,
    /// Batch-size limit of every point.
    pub max_batch: usize,
    /// Admission queue bound.
    pub queue_capacity: usize,
    /// Dynamic-batching straggler window.
    pub max_delay: Duration,
    /// Minimum requests offered during the socket fault storm.
    pub storm_requests: usize,
}

impl NetBenchSpec {
    /// The real measurement point: the Table-V-style VGG conv layer at
    /// the paper's configuration behind a 60 ms device, as in the `serve`
    /// suite, now with the socket path in front.
    pub fn full() -> Self {
        Self {
            mode: "full",
            layer_label: "VGG conv 3x3x128->128 (Table-V style, 1152x128 lowered)",
            rows: 1152,
            cols: 128,
            mapping: MappingConfig::paper(8),
            device_latency: Duration::from_millis(60),
            rate_rps: 120.0,
            requests: 240,
            replicas: vec![1, 2, 4],
            connections: vec![1, 4, 8],
            max_batch: 4,
            queue_capacity: 32,
            max_delay: Duration::from_millis(5),
            storm_requests: 24,
        }
    }

    /// A seconds-scale variant for CI: tiny layer, short pacing, same
    /// code paths and JSON schema as [`full`](Self::full).
    pub fn smoke() -> Self {
        Self {
            mode: "smoke",
            layer_label: "smoke conv 3x3x8->8 (72x8 lowered)",
            rows: 72,
            cols: 8,
            mapping: MappingConfig {
                crossbar_dim: 16,
                fragment_size: 4,
                weight_bits: 8,
                cell: CellSpec::paper_2bit(),
                input_bits: 8,
                zero_skipping: true,
            },
            device_latency: Duration::from_millis(3),
            rate_rps: 600.0,
            requests: 90,
            replicas: vec![1, 4],
            connections: vec![1, 4],
            max_batch: 4,
            queue_capacity: 16,
            max_delay: Duration::from_millis(1),
            storm_requests: 12,
        }
    }

    fn serve_config(&self, replicas: usize) -> ServeConfig {
        ServeConfig {
            replicas,
            queue_capacity: self.queue_capacity,
            max_batch: self.max_batch,
            max_delay: self.max_delay,
            default_deadline: None,
        }
    }
}

/// One loopback sweep point's measurements.
#[derive(Clone, Debug)]
pub struct NetPoint {
    /// `"FORMS"` or `"ISAAC"`.
    pub design: &'static str,
    /// Replica count of this point.
    pub replicas: usize,
    /// Concurrent client connections of this point.
    pub connections: usize,
    /// In-process open-loop goodput at the same replica count, in
    /// requests/s.
    pub baseline_rps: f64,
    /// Loopback goodput in requests/s.
    pub throughput_rps: f64,
    /// Median client-observed latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client-observed latency in milliseconds.
    pub p99_ms: f64,
    /// Requests that completed with an output.
    pub completed: usize,
    /// Requests shed at admission (wire status, connection stayed up).
    pub shed: usize,
    /// Requests expired in queue (wire status).
    pub expired: usize,
    /// Requests refused by a degraded replica (wire status).
    pub degraded: usize,
    /// Client-side transport/protocol failures — must be zero.
    pub wire_errors: usize,
    /// Final server-side telemetry of the point, including per-stage
    /// histograms and per-layer attribution, rendered into the document
    /// via [`TelemetrySnapshot::to_json`].
    pub telemetry: TelemetrySnapshot,
}

impl NetPoint {
    /// Loopback goodput over the in-process baseline.
    pub fn ratio(&self) -> f64 {
        if self.baseline_rps > 0.0 {
            self.throughput_rps / self.baseline_rps
        } else {
            0.0
        }
    }
}

/// Outcome of the socket fault storm.
#[derive(Clone, Debug)]
pub struct NetStormResult {
    /// Replicas the resilient service ran.
    pub replicas: usize,
    /// Requests offered over the connection.
    pub requests: usize,
    /// Requests that completed with a response.
    pub completed: u64,
    /// Requests refused with a `Degraded` wire status.
    pub degraded: u64,
    /// Completed responses that did **not** match the pristine output —
    /// must be zero.
    pub corrupted: usize,
    /// Replicas quarantined after exhausting their rebuild budget.
    pub quarantines: u64,
    /// Rebuild-from-pristine recovery attempts.
    pub rebuilds: u64,
    /// Client-side transport/protocol failures — must be zero: every
    /// refusal must arrive as a status on the live connection.
    pub wire_errors: usize,
    /// Final service telemetry, rendered into the document via
    /// [`TelemetrySnapshot::to_json`].
    pub telemetry: TelemetrySnapshot,
}

/// Everything a suite run produces.
#[derive(Clone, Debug)]
pub struct NetBenchReport {
    /// The spec the run used.
    pub spec: NetBenchSpec,
    /// All sweep points, in design → replicas → connections order.
    pub points: Vec<NetPoint>,
    /// The socket fault-storm outcome.
    pub storm: NetStormResult,
}

impl NetBenchReport {
    /// The smallest loopback/baseline ratio across the sweep.
    pub fn worst_ratio(&self) -> f64 {
        self.points
            .iter()
            .map(NetPoint::ratio)
            .fold(f64::INFINITY, f64::min)
    }

    /// Renders the report as the `BENCH_net.json` document.
    pub fn to_json(&self) -> JsonValue {
        let sweep = self
            .points
            .iter()
            .map(|p| {
                JsonValue::object(vec![
                    ("design", JsonValue::String(p.design.into())),
                    ("replicas", JsonValue::Number(p.replicas as f64)),
                    ("connections", JsonValue::Number(p.connections as f64)),
                    ("baseline_rps", JsonValue::Number(p.baseline_rps)),
                    ("throughput_rps", JsonValue::Number(p.throughput_rps)),
                    ("ratio", JsonValue::Number(p.ratio())),
                    ("p50_ms", JsonValue::Number(p.p50_ms)),
                    ("p99_ms", JsonValue::Number(p.p99_ms)),
                    ("completed", JsonValue::Number(p.completed as f64)),
                    ("shed", JsonValue::Number(p.shed as f64)),
                    ("expired", JsonValue::Number(p.expired as f64)),
                    ("degraded", JsonValue::Number(p.degraded as f64)),
                    ("wire_errors", JsonValue::Number(p.wire_errors as f64)),
                    ("telemetry", p.telemetry.to_json()),
                ])
            })
            .collect();
        let storm = &self.storm;
        JsonValue::object(vec![
            ("bench", JsonValue::String("net".into())),
            ("mode", JsonValue::String(self.spec.mode.into())),
            (
                "layer",
                JsonValue::object(vec![
                    ("label", JsonValue::String(self.spec.layer_label.into())),
                    ("rows", JsonValue::Number(self.spec.rows as f64)),
                    ("cols", JsonValue::Number(self.spec.cols as f64)),
                ]),
            ),
            (
                "load",
                JsonValue::object(vec![
                    (
                        "device_latency_ms",
                        JsonValue::Number(self.spec.device_latency.as_secs_f64() * 1e3),
                    ),
                    ("offered_rps", JsonValue::Number(self.spec.rate_rps)),
                    (
                        "requests_per_point",
                        JsonValue::Number(self.spec.requests as f64),
                    ),
                    (
                        "queue_capacity",
                        JsonValue::Number(self.spec.queue_capacity as f64),
                    ),
                ]),
            ),
            (
                "loopback_floor",
                JsonValue::Number(loopback_floor(self.spec.mode)),
            ),
            ("sweep", JsonValue::Array(sweep)),
            (
                "storm",
                JsonValue::object(vec![
                    ("replicas", JsonValue::Number(storm.replicas as f64)),
                    ("requests", JsonValue::Number(storm.requests as f64)),
                    ("completed", JsonValue::Number(storm.completed as f64)),
                    ("degraded", JsonValue::Number(storm.degraded as f64)),
                    ("corrupted", JsonValue::Number(storm.corrupted as f64)),
                    ("quarantines", JsonValue::Number(storm.quarantines as f64)),
                    ("rebuilds", JsonValue::Number(storm.rebuilds as f64)),
                    ("wire_errors", JsonValue::Number(storm.wire_errors as f64)),
                    ("telemetry", storm.telemetry.to_json()),
                ]),
            ),
        ])
    }
}

/// The served network: the lowered conv layer as a linear layer, weights
/// fragment-polarized so both FORMS and ISAAC can map it (identical to
/// the `serve` suite's, so baselines are comparable).
fn net_network(spec: &NetBenchSpec) -> Network {
    let mut rng = StdRng::seed_from_u64(0x53184);
    let mut net = Network::new(vec![
        Layer::flatten(),
        Layer::linear(&mut rng, spec.rows, spec.cols),
    ]);
    let matrix = polarized_matrix(spec.rows, spec.cols, spec.mapping.fragment_size);
    net.for_each_weight_layer(&mut |wl| {
        if let WeightLayerMut::Linear(l) = wl {
            l.set_weight_matrix(&matrix);
        }
    });
    net
}

/// Tally of one connection's share of a loopback point.
#[derive(Default)]
struct ConnOutcome {
    completed: usize,
    shed: usize,
    expired: usize,
    degraded: usize,
    wire_errors: usize,
    latencies_ns: Vec<f64>,
}

/// Drives one connection's share of the offered load: a split
/// sender/receiver pair, the sender replaying its seeded Poisson schedule
/// without ever waiting for replies (open loop), the receiver draining
/// replies in order and timing each against its send instant.
fn drive_connection(
    addr: SocketAddr,
    spec: &NetBenchSpec,
    seed: u64,
    requests: usize,
    rate_rps: f64,
) -> ConnOutcome {
    let client_config = ClientConfig {
        request_timeout: Some(Duration::from_secs(60)),
        ..ClientConfig::default()
    };
    let client = match NetClient::connect(addr, client_config) {
        Ok(c) => c,
        Err(_) => {
            return ConnOutcome {
                wire_errors: requests,
                ..ConnOutcome::default()
            }
        }
    };
    let Ok((mut sender, mut receiver)) = client.split() else {
        return ConnOutcome {
            wire_errors: requests,
            ..ConnOutcome::default()
        };
    };
    let (sent_tx, sent_rx) = mpsc::channel::<Instant>();
    let mut outcome = ConnOutcome::default();
    let send_failures = std::thread::scope(|scope| {
        let sender_thread = scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let arrivals = poisson_arrivals(&mut rng, rate_rps, requests);
            let model = ActivationModel::half_normal(0.4);
            let mut failures = 0usize;
            let start = Instant::now();
            for at in &arrivals {
                let payload = synth_request(&mut rng, model, spec.rows);
                if let Some(gap) = (start + *at).checked_duration_since(Instant::now()) {
                    std::thread::sleep(gap);
                }
                let sent_at = Instant::now();
                if sender.send(&payload, None).is_ok() {
                    let _ = sent_tx.send(sent_at);
                } else {
                    failures += 1;
                }
            }
            sender.finish();
            failures
        });
        for sent_at in sent_rx {
            match receiver.recv() {
                Ok(reply) => match reply.outcome {
                    Ok(_) => {
                        outcome.completed += 1;
                        outcome
                            .latencies_ns
                            .push(sent_at.elapsed().as_nanos() as f64);
                    }
                    Err(WireStatus::Shed | WireStatus::ShuttingDown) => outcome.shed += 1,
                    Err(WireStatus::DeadlineExceeded) => outcome.expired += 1,
                    Err(WireStatus::Degraded) => outcome.degraded += 1,
                    Err(_) => outcome.wire_errors += 1,
                },
                Err(_) => {
                    outcome.wire_errors += 1;
                    break;
                }
            }
        }
        sender_thread.join().unwrap_or(requests)
    });
    outcome.wire_errors += send_failures;
    outcome
}

/// Runs one loopback sweep point: `connections` concurrent clients
/// splitting the offered load evenly over real sockets.
fn loopback_point<E>(
    design: &'static str,
    executor: &Executor<E>,
    spec: &NetBenchSpec,
    replicas: usize,
    connections: usize,
    baseline_rps: f64,
) -> NetPoint
where
    E: CrossbarEngine,
    E::Stats: Sync,
{
    let serve_config = spec.serve_config(replicas);
    let net_config = NetConfig {
        // Roomy in-flight window: the open-loop schedule must never stall
        // on the backpressure bound, or the measurement degenerates into
        // a closed loop.
        max_in_flight: spec.queue_capacity.max(64),
        ..NetConfig::default()
    };
    let base = spec.requests / connections;
    let extra = spec.requests % connections;
    let ((outcomes, elapsed), telemetry) =
        serve_net(executor, &[spec.rows], &serve_config, &net_config, |net| {
            let addr = net.addr();
            let started = Instant::now();
            let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..connections)
                    .map(|c| {
                        let requests = base + usize::from(c < extra);
                        let rate = spec.rate_rps / connections as f64;
                        let seed = 0x11E7 ^ ((replicas as u64) << 16) ^ ((c as u64) << 4);
                        scope.spawn(move || drive_connection(addr, spec, seed, requests, rate))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| ConnOutcome {
                            wire_errors: base + 1,
                            ..ConnOutcome::default()
                        })
                    })
                    .collect()
            });
            (outcomes, started.elapsed())
        })
        .expect("loopback listener binds");
    let mut point = NetPoint {
        design,
        replicas,
        connections,
        baseline_rps,
        throughput_rps: 0.0,
        p50_ms: 0.0,
        p99_ms: 0.0,
        completed: 0,
        shed: 0,
        expired: 0,
        degraded: 0,
        wire_errors: 0,
        telemetry,
    };
    let mut ns: Vec<f64> = Vec::new();
    for o in outcomes {
        point.completed += o.completed;
        point.shed += o.shed;
        point.expired += o.expired;
        point.degraded += o.degraded;
        point.wire_errors += o.wire_errors;
        ns.extend(o.latencies_ns);
    }
    ns.sort_by(f64::total_cmp);
    point.throughput_rps = if elapsed.is_zero() {
        0.0
    } else {
        point.completed as f64 / elapsed.as_secs_f64()
    };
    point.p50_ms = percentile(&ns, 0.50) / 1e6;
    point.p99_ms = percentile(&ns, 0.99) / 1e6;
    println!(
        "{:>5} r={} c={}  {:>7.1} req/s over loopback vs {:>7.1} in-process ({:.2}x)  p99 {:>8.1} ms  {} ok / {} shed / {} wire errors",
        design,
        replicas,
        connections,
        point.throughput_rps,
        baseline_rps,
        point.ratio(),
        point.p99_ms,
        point.completed,
        point.shed,
        point.wire_errors,
    );
    point
}

/// Measures the in-process baseline at one replica count: the same
/// offered trace through [`run_open_loop`], no sockets anywhere.
fn in_process_baseline<E>(executor: &Executor<E>, spec: &NetBenchSpec, replicas: usize) -> f64
where
    E: CrossbarEngine,
    E::Stats: Sync,
{
    let load = OpenLoopSpec {
        rate_rps: spec.rate_rps,
        requests: spec.requests,
        seed: 0x11E7 ^ ((replicas as u64) << 16),
        model: ActivationModel::half_normal(0.4),
        deadline: None,
    };
    let (report, _telemetry) = serve(executor, &[spec.rows], &spec.serve_config(replicas), |h| {
        run_open_loop(h, &load)
    });
    report.throughput_rps()
}

/// Sweeps replicas × connections for one design.
fn sweep_design<E>(
    design: &'static str,
    executor: &Executor<E>,
    spec: &NetBenchSpec,
) -> Vec<NetPoint>
where
    E: CrossbarEngine,
    E::Stats: Sync,
{
    let mut points = Vec::new();
    for &replicas in &spec.replicas {
        let baseline = in_process_baseline(executor, spec, replicas);
        for &connections in &spec.connections {
            points.push(loopback_point(
                design,
                executor,
                spec,
                replicas,
                connections,
                baseline,
            ));
        }
    }
    points
}

/// The storm's *single-polarity* layer (every weight positive), so a
/// stuck-high campaign can only inflate outputs past the pristine
/// ceiling where the sentinels must see it — same reasoning as the
/// `faults` suite's storm.
fn storm_network(spec: &NetBenchSpec) -> Network {
    let mut rng = StdRng::seed_from_u64(0x570_0142);
    let mut net = Network::new(vec![
        Layer::flatten(),
        Layer::linear(&mut rng, spec.rows, spec.cols),
    ]);
    let matrix = Tensor::from_fn(&[spec.rows, spec.cols], |i| {
        0.05 + ((i * 31) % 13) as f32 * 0.07
    });
    net.for_each_weight_layer(&mut |wl| {
        if let WeightLayerMut::Linear(l) = wl {
            l.set_weight_matrix(&matrix);
        }
    });
    net
}

/// Runs the socket fault storm: one TCP client against a two-replica
/// resilient service, replica 0 persistently poisoned after a warmup.
/// Full-scale inputs leave the stuck-high array no quantization headroom,
/// so the output sentinels refuse every corrupted batch as `Degraded` —
/// which must reach the client as wire statuses on the live connection.
fn run_storm(spec: &NetBenchSpec) -> NetStormResult {
    let replicas = 2;
    let pristine = Executor::<MappedLayer>::map_network(
        &storm_network(spec),
        &spec.mapping,
        spec.mapping.input_bits,
    )
    .expect("storm layer maps on FORMS");
    let request = vec![1.0f32; spec.rows];
    let clean = pristine
        .clone()
        .forward(&Tensor::from_vec(request.clone(), &[1, spec.rows]))
        .into_vec();
    let config = ResilientConfig {
        serve: ServeConfig {
            replicas,
            queue_capacity: spec.storm_requests.max(4),
            max_batch: 2,
            max_delay: Duration::from_micros(200),
            default_deadline: None,
        },
        policy: HealthPolicy {
            // Tolerate the raw density so the sentinel path (not the
            // density gate) is what refuses corrupted batches.
            max_fault_density: 1.0,
            max_rebuilds: 1,
            backoff: Duration::from_micros(100),
            backoff_multiplier: 2.0,
        },
    };
    let poison = FaultCampaign::stuck_at(0x570_12A, 0.0, 0.35);
    let warmup = spec.storm_requests / 3;
    let max_waves = 400;
    let ((requests, ok_outputs, degraded, wire_errors), telemetry) = serve_net_resilient(
        &pristine,
        &[spec.rows],
        &config,
        &NetConfig::default(),
        |net, faults| {
            let addr = net.addr();
            let service = net.service().clone();
            let request = &request;
            std::thread::scope(|scope| {
                let worker = scope.spawn(move || {
                    let mut client = NetClient::connect(addr, ClientConfig::default())
                        .expect("storm client connects");
                    let mut ok_outputs: Vec<Vec<f32>> = Vec::new();
                    let mut degraded = 0usize;
                    let mut wire_errors = 0usize;
                    let mut requests = 0usize;
                    let mut drive =
                        |n: usize, ok: &mut Vec<Vec<f32>>, deg: &mut usize, wire: &mut usize| {
                            for _ in 0..n {
                                match client.call(request, None) {
                                    Ok(reply) => match reply.outcome {
                                        Ok(out) => ok.push(out),
                                        Err(WireStatus::Degraded) => *deg += 1,
                                        Err(other) => panic!("unexpected storm status {other}"),
                                    },
                                    Err(_) => *wire += 1,
                                }
                            }
                        };
                    drive(warmup, &mut ok_outputs, &mut degraded, &mut wire_errors);
                    requests += warmup;
                    faults.poison(0, poison);
                    // Recovery is asynchronous: keep offering small waves
                    // until the quarantine shows up in telemetry, capped.
                    let mut waves = 0;
                    while requests < spec.storm_requests
                        || (service.telemetry().quarantines == 0 && waves < max_waves)
                    {
                        drive(2, &mut ok_outputs, &mut degraded, &mut wire_errors);
                        requests += 2;
                        waves += 1;
                    }
                    (requests, ok_outputs, degraded, wire_errors)
                });
                worker.join().expect("storm client thread")
            })
        },
    )
    .expect("storm listener binds");
    let corrupted = ok_outputs.iter().filter(|o| **o != clean).count();
    println!(
        "storm: {} requests over one socket -> {} completed ({} corrupted), {} degraded statuses, {} wire errors, {} quarantined",
        requests, telemetry.completed, corrupted, degraded, wire_errors, telemetry.quarantines,
    );
    assert_eq!(
        degraded as u64, telemetry.degraded,
        "wire-observed and telemetry degraded counts must agree"
    );
    NetStormResult {
        replicas,
        requests,
        completed: telemetry.completed,
        degraded: telemetry.degraded,
        corrupted,
        quarantines: telemetry.quarantines,
        rebuilds: telemetry.rebuilds,
        wire_errors,
        telemetry,
    }
}

/// Runs the whole suite for a spec.
///
/// # Panics
///
/// Panics if the benchmark layer cannot be mapped or the loopback
/// listener cannot bind (a bug in the spec or a broken sandbox).
pub fn run(spec: &NetBenchSpec) -> NetBenchReport {
    let net = net_network(spec);
    let forms_config = PacedConfig {
        inner: spec.mapping,
        latency: spec.device_latency,
    };
    let forms = Executor::<PacedEngine<MappedLayer>>::map_network(
        &net,
        &forms_config,
        spec.mapping.input_bits,
    )
    .expect("bench layer maps on FORMS");
    let isaac_config = PacedConfig {
        inner: IsaacConfig {
            crossbar_dim: spec.mapping.crossbar_dim,
            cell: spec.mapping.cell,
            weight_bits: spec.mapping.weight_bits,
            input_bits: spec.mapping.input_bits,
        },
        latency: spec.device_latency,
    };
    let isaac = Executor::<PacedEngine<IsaacLayer>>::map_network(
        &net,
        &isaac_config,
        spec.mapping.input_bits,
    )
    .expect("bench layer maps on ISAAC");

    let mut points = sweep_design("FORMS", &forms, spec);
    points.extend(sweep_design("ISAAC", &isaac, spec));
    let storm = run_storm(spec);
    NetBenchReport {
        spec: spec.clone(),
        points,
        storm,
    }
}

/// Checks that a parsed `BENCH_net.json` document has the shape this
/// suite writes and proves the front-end's two claims: loopback goodput
/// holds the mode's [`loopback_floor`] of the in-process baseline at
/// every sweep point with zero wire errors, and the socket fault storm
/// completed requests with zero corrupted responses, `Degraded` surfacing
/// as wire statuses, and a quarantine.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate(doc: &JsonValue) -> Result<(), String> {
    if doc.get("bench").and_then(JsonValue::as_str) != Some("net") {
        return Err("missing or wrong `bench` field".into());
    }
    let mode = match doc.get("mode").and_then(JsonValue::as_str) {
        Some(m @ ("full" | "smoke")) => m,
        _ => return Err("`mode` must be \"full\" or \"smoke\"".into()),
    };
    let floor = doc
        .get("loopback_floor")
        .and_then(JsonValue::as_f64)
        .ok_or("missing numeric `loopback_floor`")?;
    if floor != loopback_floor(mode) {
        return Err(format!(
            "`loopback_floor` must be {} in {mode} mode",
            loopback_floor(mode)
        ));
    }
    let sweep = doc
        .get("sweep")
        .and_then(JsonValue::as_array)
        .ok_or("missing `sweep` array")?;
    if sweep.is_empty() {
        return Err("`sweep` must not be empty".into());
    }
    let mut designs_seen = (false, false);
    for (i, point) in sweep.iter().enumerate() {
        match point.get("design").and_then(JsonValue::as_str) {
            Some("FORMS") => designs_seen.0 = true,
            Some("ISAAC") => designs_seen.1 = true,
            _ => return Err(format!("sweep[{i}] has no valid `design`")),
        }
        let num = |key: &str| {
            point
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("sweep[{i}] missing numeric `{key}`"))
        };
        let (baseline, throughput) = (num("baseline_rps")?, num("throughput_rps")?);
        if !(baseline.is_finite() && baseline > 0.0) {
            return Err(format!("sweep[{i}] has a non-positive baseline"));
        }
        if !(throughput.is_finite() && throughput > 0.0) {
            return Err(format!("sweep[{i}] has non-positive loopback throughput"));
        }
        let ratio = num("ratio")?;
        if (ratio - throughput / baseline).abs() > 1e-9 {
            return Err(format!("sweep[{i}] ratio is inconsistent with its rates"));
        }
        if ratio < floor {
            return Err(format!(
                "sweep[{i}] loopback held only {ratio:.2}x of in-process (floor {floor})"
            ));
        }
        let (p50, p99) = (num("p50_ms")?, num("p99_ms")?);
        if !(p50.is_finite() && p99.is_finite() && 0.0 < p50 && p50 <= p99) {
            return Err(format!("sweep[{i}] latency percentiles out of order"));
        }
        if num("completed")? <= 0.0 {
            return Err(format!("sweep[{i}] completed nothing"));
        }
        if num("wire_errors")? != 0.0 {
            return Err(format!("sweep[{i}] recorded wire errors"));
        }
        let snapshot = point
            .get("telemetry")
            .ok_or_else(|| format!("sweep[{i}] missing `telemetry` snapshot"))?;
        let parsed = TelemetrySnapshot::from_json(snapshot)
            .map_err(|e| format!("sweep[{i}].telemetry does not parse as a snapshot: {e}"))?;
        crate::serve::validate_stage_breakdown(&parsed)
            .map_err(|e| format!("sweep[{i}].telemetry: {e}"))?;
    }
    if !(designs_seen.0 && designs_seen.1) {
        return Err("sweep must cover both FORMS and ISAAC".into());
    }
    let storm = doc.get("storm").ok_or("missing `storm` object")?;
    let num = |key: &str| {
        storm
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("missing numeric `storm.{key}`"))
    };
    if num("corrupted")? != 0.0 {
        return Err("storm returned corrupted responses over the wire".into());
    }
    if num("wire_errors")? != 0.0 {
        return Err("storm dropped connections instead of returning statuses".into());
    }
    if num("completed")? <= 0.0 {
        return Err("storm completed no requests — no availability".into());
    }
    if num("degraded")? < 1.0 {
        return Err("storm recorded no Degraded wire statuses".into());
    }
    if num("quarantines")? < 1.0 {
        return Err("storm never quarantined the poisoned replica".into());
    }
    let snapshot = storm
        .get("telemetry")
        .ok_or("missing `storm.telemetry` snapshot")?;
    let parsed = TelemetrySnapshot::from_json(snapshot)
        .map_err(|e| format!("`storm.telemetry` does not parse as a snapshot: {e}"))?;
    if parsed.degraded as f64 != num("degraded")? {
        return Err("`storm.telemetry` disagrees with the storm counters".into());
    }
    crate::serve::validate_stage_breakdown(&parsed).map_err(|e| format!("storm.telemetry: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    // One socket suite run feeds both the round-trip and the rejection
    // checks: a second concurrent run would double the load-dependent
    // noise in every timed point for no extra coverage.
    #[test]
    fn smoke_report_round_trips_validates_and_rejects_mutations() {
        let report = run(&NetBenchSpec::smoke());
        let doc = report.to_json();
        validate(&doc).unwrap();
        let reparsed = parse(&doc.pretty()).unwrap();
        validate(&reparsed).unwrap();
        assert_eq!(reparsed, doc);
        assert!(report.worst_ratio() >= loopback_floor("smoke"));
        assert_eq!(report.storm.corrupted, 0);
        assert_eq!(report.storm.wire_errors, 0);

        let good = doc;
        let JsonValue::Object(fields) = &good else {
            panic!("report is an object")
        };
        for missing in ["bench", "mode", "loopback_floor", "sweep", "storm"] {
            let broken = JsonValue::Object(
                fields
                    .iter()
                    .filter(|(k, _)| k.as_str() != missing)
                    .cloned()
                    .collect(),
            );
            assert!(validate(&broken).is_err(), "accepted doc without {missing}");
        }
        // A loopback slowdown below the floor must fail validation.
        let mut slowed = fields.clone();
        for (k, v) in &mut slowed {
            if k != "sweep" {
                continue;
            }
            if let JsonValue::Array(points) = v {
                if let Some(JsonValue::Object(point)) = points.first_mut() {
                    for (pk, pv) in point.iter_mut() {
                        if pk == "throughput_rps" || pk == "ratio" {
                            *pv = JsonValue::Number(pv.as_f64().unwrap() * 0.1);
                        }
                    }
                }
            }
        }
        assert!(validate(&JsonValue::Object(slowed)).is_err());
        // A corrupted storm response must fail validation.
        let mut poisoned = fields.clone();
        for (k, v) in &mut poisoned {
            if k != "storm" {
                continue;
            }
            if let JsonValue::Object(storm) = v {
                for (sk, sv) in storm.iter_mut() {
                    if sk == "corrupted" {
                        *sv = JsonValue::Number(1.0);
                    }
                }
            }
        }
        assert!(validate(&JsonValue::Object(poisoned)).is_err());
        assert!(validate(&JsonValue::Null).is_err());
    }
}
