//! # forms-bench
//!
//! The experiment-regeneration harness for the FORMS (ISCA 2021)
//! reproduction: one binary per table and figure of the paper's evaluation
//! (see `DESIGN.md` §4 for the index), plus std-only timing benches over
//! the simulator kernels and the paper's design-choice ablations (run them
//! with `cargo bench -p forms-bench --features bench`).
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p forms-bench --bin repro
//! ```
//!
//! or a single experiment, e.g. `cargo run --release -p forms-bench --bin
//! table5`. Each experiment prints the paper's rows next to the measured
//! values and appends machine-readable results to `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod faults;
pub mod mvm;
pub mod net;
pub mod quant;
pub mod report;
pub mod serve;
pub mod suite;
pub mod timing;

pub use forms_serve::json;
