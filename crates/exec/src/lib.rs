//! # forms-exec
//!
//! The shared crossbar execution core of the FORMS reproduction.
//!
//! The paper's headline results are *comparative* — FORMS vs. ISAAC on the
//! same networks — so both executors must be apples-to-apples. This crate
//! owns the single generic inference engine they share:
//!
//! - [`CrossbarEngine`] — what a per-layer analog backend must provide:
//!   mapping a weight matrix onto crossbars, executing one MVM on
//!   quantized input codes, and reporting its cost record.
//! - [`Executor`] — the whole-network engine: recursive layer walk,
//!   im2col/conv geometry, activation quantization, optional row
//!   permutations, per-layer statistics registry, serial and
//!   scoped-thread parallel batch execution, dataset evaluation.
//! - [`InferenceSession`] — a per-worker serving handle: borrows an
//!   executor immutably and keeps its network clone and scratch buffers
//!   warm across independent batches (`forward_batch_into`), so replica
//!   workers in `forms-serve` allocate nothing per request.
//! - [`PrecisionPlan`] / [`LayerPrecision`] — per-layer mixed-precision
//!   quantization plans: the executor specializes its engine configuration
//!   and activation quantization per weight layer from the plan, with
//!   uniform plans bitwise identical to the global-bit-width path.
//! - [`ExecError`] — the workspace-level mapping/execution error type.
//!
//! `forms_arch::Accelerator` (polarized FORMS engine) and
//! `forms_baselines::IsaacAccelerator` (offset-encoded ISAAC engine) are
//! thin wrappers over `Executor<MappedLayer>` / `Executor<IsaacLayer>`.
//!
//! # Example
//!
//! A backend only implements the per-layer encoding; everything
//! network-level comes from the executor:
//!
//! ```
//! use forms_exec::{CrossbarEngine, ExecError, Merge};
//! use forms_tensor::Tensor;
//!
//! #[derive(Clone, Copy, Debug, Default)]
//! struct Count(u64);
//! impl Merge for Count {
//!     fn merge(&mut self, other: Self) {
//!         self.0 += other.0;
//!     }
//! }
//!
//! #[derive(Clone, Debug)]
//! struct Digital(Tensor);
//! impl CrossbarEngine for Digital {
//!     type Config = u32;
//!     type Stats = Count;
//!     // Reusable per-MVM buffer for the dequantized inputs.
//!     type Scratch = Vec<f32>;
//!     fn map_matrix(m: &Tensor, _: &u32) -> Result<Self, ExecError> {
//!         Ok(Self(m.clone()))
//!     }
//!     fn output_len(&self) -> usize {
//!         self.0.dims()[1]
//!     }
//!     fn matvec_into(
//!         &self,
//!         codes: &[u32],
//!         scale: f32,
//!         scratch: &mut Vec<f32>,
//!         out: &mut [f32],
//!     ) -> Count {
//!         scratch.clear();
//!         scratch.extend(codes.iter().map(|&c| c as f32 * scale));
//!         out.copy_from_slice(&self.0.transpose().matvec(scratch));
//!         Count(1)
//!     }
//!     fn crossbar_count(&self) -> usize {
//!         1
//!     }
//!     fn mean_input_cycles(_: &Count) -> Option<f64> {
//!         None
//!     }
//!     fn max_input_cycles(bits: &u32) -> f64 {
//!         f64::from(*bits)
//!     }
//!     fn precision_of(bits: &u32) -> forms_exec::LayerPrecision {
//!         forms_exec::LayerPrecision::new(32, *bits)
//!     }
//!     fn with_precision(_: &u32, p: forms_exec::LayerPrecision) -> u32 {
//!         p.input_bits
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod error;
mod executor;
mod precision;

pub use engine::{CrossbarEngine, EngineHealth, FaultableEngine, LayerPerf, Merge};
pub use error::ExecError;
pub use executor::{Executor, InferenceSession};
pub use precision::{LayerPrecision, PrecisionPlan};
// Fault-campaign types are part of the engine API surface
// (`FaultableEngine`); re-export them so downstream crates (serve, bench)
// need not depend on `forms-reram` directly.
pub use forms_reram::{FaultCampaign, FaultReport};
