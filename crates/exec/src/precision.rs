//! Per-layer precision plans for mixed-precision quantization.
//!
//! FORMS' bit-serial input loop and fragment-sized ADCs make input cycles,
//! ADC conversions and dynamic energy proportional to the per-layer bit
//! widths, so the natural optimization knob is *per-layer*: keep
//! quantization-sensitive layers at the paper's 8-bit-weight /
//! 16-bit-input point and drop tolerant layers to narrower widths. A
//! [`PrecisionPlan`] carries one [`LayerPrecision`] per weight layer; the
//! [`Executor`](crate::Executor) specializes its engine configuration per
//! layer from it (see [`CrossbarEngine::with_precision`]
//! (crate::CrossbarEngine::with_precision)) and quantizes each layer's
//! activations at that layer's input width.
//!
//! A [`uniform`](PrecisionPlan::uniform) plan reproduces the pre-plan
//! behaviour exactly: every layer maps and quantizes at the same widths,
//! bitwise identical to the global-bit-width path.

use std::fmt;

/// Quantization widths of one weight layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerPrecision {
    /// Weight magnitude bits stored on the crossbar cells.
    pub weight_bits: u32,
    /// Activation (input) bits fed bit-serially through the DACs.
    pub input_bits: u32,
}

impl LayerPrecision {
    /// Creates a per-layer precision.
    ///
    /// # Panics
    ///
    /// Panics if `weight_bits` is outside `1..=32` or `input_bits` outside
    /// `1..=31` (the activation fixed-point format holds codes in a `u32`
    /// with a sign-free interpretation, see `forms_tensor::FixedSpec`).
    pub fn new(weight_bits: u32, input_bits: u32) -> Self {
        assert!(
            (1..=32).contains(&weight_bits),
            "weight bits must be in 1..=32, got {weight_bits}"
        );
        assert!(
            (1..=31).contains(&input_bits),
            "input bits must be in 1..=31, got {input_bits}"
        );
        Self {
            weight_bits,
            input_bits,
        }
    }
}

impl fmt::Display for LayerPrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}/a{}", self.weight_bits, self.input_bits)
    }
}

/// The precision assignment of a whole network: one [`LayerPrecision`] per
/// weight layer (visit order), or a single precision broadcast to every
/// layer.
///
/// A uniform plan matches any weight-layer count; a per-layer plan must
/// have exactly one entry per weight layer and is checked at mapping time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrecisionPlan {
    kind: PlanKind,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum PlanKind {
    Uniform(LayerPrecision),
    PerLayer(Vec<LayerPrecision>),
}

impl PrecisionPlan {
    /// A plan that applies the same widths to every layer — today's
    /// global-bit-width behaviour, bitwise identical to mapping with those
    /// widths in the engine configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range widths (see [`LayerPrecision::new`]).
    pub fn uniform(weight_bits: u32, input_bits: u32) -> Self {
        Self {
            kind: PlanKind::Uniform(LayerPrecision::new(weight_bits, input_bits)),
        }
    }

    /// A plan with an explicit precision per weight layer (visit order).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn per_layer(layers: Vec<LayerPrecision>) -> Self {
        assert!(
            !layers.is_empty(),
            "a per-layer plan needs at least one layer"
        );
        Self {
            kind: PlanKind::PerLayer(layers),
        }
    }

    /// The precision of weight layer `idx` (visit order). Uniform plans
    /// broadcast to any index.
    ///
    /// # Panics
    ///
    /// Panics if a per-layer plan is indexed past its last layer.
    pub fn layer(&self, idx: usize) -> LayerPrecision {
        match &self.kind {
            PlanKind::Uniform(p) => *p,
            PlanKind::PerLayer(layers) => layers[idx],
        }
    }

    /// Whether every layer shares one precision.
    pub fn is_uniform(&self) -> bool {
        match &self.kind {
            PlanKind::Uniform(_) => true,
            PlanKind::PerLayer(layers) => layers.iter().all(|p| *p == layers[0]),
        }
    }

    /// The number of layers of a per-layer plan (`None` for uniform).
    pub fn len(&self) -> Option<usize> {
        match &self.kind {
            PlanKind::Uniform(_) => None,
            PlanKind::PerLayer(layers) => Some(layers.len()),
        }
    }

    /// Whether the plan covers no layers (never true: uniform plans cover
    /// every layer and per-layer plans are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// Checks that the plan can cover `count` weight layers.
    ///
    /// # Panics
    ///
    /// Panics if a per-layer plan's length differs from `count`.
    pub fn assert_covers(&self, count: usize) {
        if let Some(len) = self.len() {
            assert_eq!(
                len, count,
                "precision plan covers {len} layers but the network has {count} weight layers"
            );
        }
    }

    /// The widest input width any layer uses — an upper bound on input
    /// cycles per fragment activation across the network.
    pub fn max_input_bits(&self) -> u32 {
        match &self.kind {
            PlanKind::Uniform(p) => p.input_bits,
            PlanKind::PerLayer(layers) => layers.iter().map(|p| p.input_bits).max().unwrap_or(0),
        }
    }

    /// A compact human-readable tag, e.g. `"uniform w8/a16"` or
    /// `"mixed w4-8/a8-16 (5 layers)"` — used by serving telemetry to tag
    /// which plan a deployment runs.
    pub fn summary(&self) -> String {
        match &self.kind {
            PlanKind::Uniform(p) => format!("uniform {p}"),
            PlanKind::PerLayer(layers) if self.is_uniform() => {
                format!("uniform {} ({} layers)", layers[0], layers.len())
            }
            PlanKind::PerLayer(layers) => {
                let (mut wlo, mut whi, mut ilo, mut ihi) = (u32::MAX, 0, u32::MAX, 0);
                for p in layers {
                    wlo = wlo.min(p.weight_bits);
                    whi = whi.max(p.weight_bits);
                    ilo = ilo.min(p.input_bits);
                    ihi = ihi.max(p.input_bits);
                }
                format!("mixed w{wlo}-{whi}/a{ilo}-{ihi} ({} layers)", layers.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_broadcasts_to_any_layer() {
        let plan = PrecisionPlan::uniform(8, 16);
        for idx in [0, 3, 100] {
            assert_eq!(plan.layer(idx), LayerPrecision::new(8, 16));
        }
        assert!(plan.is_uniform());
        assert_eq!(plan.len(), None);
        plan.assert_covers(7); // any count is fine
        assert_eq!(plan.max_input_bits(), 16);
        assert_eq!(plan.summary(), "uniform w8/a16");
    }

    #[test]
    fn per_layer_indexes_in_visit_order() {
        let plan =
            PrecisionPlan::per_layer(vec![LayerPrecision::new(8, 16), LayerPrecision::new(4, 8)]);
        assert_eq!(plan.layer(0), LayerPrecision::new(8, 16));
        assert_eq!(plan.layer(1), LayerPrecision::new(4, 8));
        assert!(!plan.is_uniform());
        assert_eq!(plan.len(), Some(2));
        assert_eq!(plan.max_input_bits(), 16);
        assert_eq!(plan.summary(), "mixed w4-8/a8-16 (2 layers)");
    }

    #[test]
    fn constant_per_layer_plan_reports_uniform() {
        let plan = PrecisionPlan::per_layer(vec![LayerPrecision::new(6, 12); 3]);
        assert!(plan.is_uniform());
        assert_eq!(plan.summary(), "uniform w6/a12 (3 layers)");
    }

    #[test]
    #[should_panic(expected = "5 weight layers")]
    fn per_layer_plan_must_match_layer_count() {
        PrecisionPlan::per_layer(vec![LayerPrecision::new(8, 16); 3]).assert_covers(5);
    }

    #[test]
    #[should_panic(expected = "weight bits")]
    fn zero_weight_bits_rejected() {
        LayerPrecision::new(0, 16);
    }

    #[test]
    #[should_panic(expected = "input bits")]
    fn oversized_input_bits_rejected() {
        LayerPrecision::new(8, 32);
    }
}
