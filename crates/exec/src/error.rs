//! The workspace-level mapping/execution error type.

use std::fmt;

/// Why a weight matrix could not be mapped onto a crossbar engine.
///
/// Absorbs the old `forms_arch::MapError` and replaces the panic-based
/// ISAAC mapping API, so every engine's mapping path reports failures the
/// same way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The matrix violates fragment polarization; mapping magnitude-only
    /// weights would silently change signs. Carries the violation count.
    NotPolarized {
        /// Number of weights whose sign disagrees with their fragment.
        violations: usize,
    },
    /// The matrix has no non-zero weights at all.
    AllZero,
    /// The weight tensor is not a rank-2 `[rows, cols]` matrix.
    NotMatrix {
        /// The offending tensor's rank.
        rank: usize,
    },
    /// The engine configuration cannot express this mapping.
    UnsupportedConfig {
        /// Human-readable description of the constraint that failed.
        reason: &'static str,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NotPolarized { violations } => write!(
                f,
                "matrix is not fragment-polarized ({violations} sign violations); \
                 run ADMM polarization first"
            ),
            ExecError::AllZero => write!(f, "matrix has no non-zero weights"),
            ExecError::NotMatrix { rank } => {
                write!(f, "expected a rank-2 [rows, cols] matrix, got rank {rank}")
            }
            ExecError::UnsupportedConfig { reason } => {
                write!(f, "unsupported engine configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_cause() {
        let cases = [
            (
                ExecError::NotPolarized { violations: 3 },
                "3 sign violations",
            ),
            (ExecError::AllZero, "no non-zero"),
            (ExecError::NotMatrix { rank: 3 }, "rank 3"),
            (
                ExecError::UnsupportedConfig {
                    reason: "need at least 2 weight bits",
                },
                "2 weight bits",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn error_trait_is_object_safe() {
        let err: Box<dyn std::error::Error> = Box::new(ExecError::AllZero);
        assert!(err.to_string().contains("non-zero"));
    }
}
