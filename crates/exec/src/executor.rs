//! The generic whole-network inference engine.
//!
//! One `Executor` owns everything that is identical between the FORMS
//! accelerator and the crossbar baselines: the recursive network walk over
//! conv/linear/residual/digital layers, im2col and conv geometry,
//! activation quantization, optional per-layer row permutations, the
//! per-sample MVM loop, the per-layer statistics registry and the
//! scoped-thread parallel batch path. The encoding-specific work — mapping
//! a matrix to conductances and executing one MVM — is delegated to a
//! [`CrossbarEngine`].
//!
//! Inference runs through a per-worker [`InferenceCtx`]: a bundle of the
//! *shared* read-only engines plus all *private* reusable buffers (engine
//! scratch, gathered codes, MVM output, sample staging). The parallel batch
//! path hands every worker thread the same `&[E]` engine slice — mapped
//! crossbar storage is never cloned per worker; only the lightweight
//! digital network is — and each worker's context keeps the per-MVM hot
//! path allocation-free.

use forms_dnn::{Layer, Network, WeightLayerMut};
use forms_reram::{FaultCampaign, FaultReport};
use forms_tensor::{im2col, Conv2dGeometry, FixedSpec, QuantizedTensor, Tensor};

use crate::engine::{CrossbarEngine, EngineHealth, FaultableEngine, LayerPerf, Merge};
use crate::error::ExecError;
use crate::precision::PrecisionPlan;

/// Multiplicative slack on the output-range sentinel bound: the ceiling is
/// exact in f64 while engine outputs round through f32, so a hair of
/// headroom keeps clean silicon from ever tripping the sentinel.
const SENTINEL_SLACK: f64 = 1.0 + 1e-4;

/// Largest sample range one [`forward_parallel`](Executor::forward_parallel)
/// worker steals at a time. Small enough to balance ragged batches across
/// workers, large enough that each stolen range fills the engines' batch
/// tiles (`forms_arch::MATMUL_TILE`).
const STEAL_TILE_MAX: usize = 32;

/// Sentinel hits in one MVM output vector: values that are non-finite or
/// exceed the layer's pristine ceiling at this input scale.
fn sentinel_hits(ceiling: Option<f64>, input_scale: f32, out: &[f32]) -> u64 {
    let Some(ceiling) = ceiling else {
        return 0;
    };
    let bound = ceiling * f64::from(input_scale) * SENTINEL_SLACK;
    out.iter()
        .filter(|v| !v.is_finite() || f64::from(**v).abs() > bound)
        .count() as u64
}

/// A DNN mapped onto crossbar engines and executed through the
/// mixed-signal path.
///
/// Holds a copy of the network (for the digital layers and layer shapes)
/// plus one engine per weight layer, and runs inference while accumulating
/// whole-network and per-layer cost statistics.
#[derive(Clone, Debug)]
pub struct Executor<E: CrossbarEngine> {
    net: Network,
    engines: Vec<E>,
    perms: Vec<Option<Vec<usize>>>,
    config: E::Config,
    /// The per-layer precision assignment every layer was mapped under.
    plan: PrecisionPlan,
    /// The engine configuration each layer was actually mapped with —
    /// `config` specialized by the plan (or a verbatim copy on the legacy
    /// global-bit-width path).
    layer_configs: Vec<E::Config>,
    /// Activation quantization width per weight layer.
    layer_input_bits: Vec<u32>,
    stats: E::Stats,
    layer_stats: Vec<E::Stats>,
    /// Matrix-vector activations per weight layer since the last reset.
    layer_mvms: Vec<u64>,
    /// Wall-clock nanoseconds spent inside each weight layer's analog
    /// lowering since the last reset (host-measured, not modeled).
    layer_wall_ns: Vec<u64>,
    /// Output-range sentinel violations since the last reset.
    sentinels: u64,
    /// Sentinel violations per weight layer since the last reset.
    layer_sentinels: Vec<u64>,
}

/// One worker's inference state: the shared read-only engines plus every
/// reusable mutable buffer, so the per-sample MVM loop allocates nothing
/// once warm. Statistics accumulate locally and are merged back into the
/// owning [`Executor`] when the walk finishes.
#[derive(Debug)]
struct InferenceCtx<'a, E: CrossbarEngine> {
    engines: &'a [E],
    perms: &'a [Option<Vec<usize>>],
    /// Activation quantization width per weight layer (plan-derived).
    layer_input_bits: &'a [u32],
    /// Engine-specific per-MVM working memory, reused across every MVM.
    scratch: E::Scratch,
    /// Gathered (and possibly permuted) input codes for one MVM.
    codes: Vec<u32>,
    /// Staging buffer for applying a row permutation to `codes`.
    permuted: Vec<u32>,
    /// Engine output buffer, resized to the current layer's output length.
    mvm_out: Vec<f32>,
    /// Per-sample staging buffer (im2col input / linear row), recycled
    /// through `Tensor::from_vec` / `Tensor::into_vec`.
    sample: Vec<f32>,
    /// Whether weight layers lower whole batches through
    /// [`CrossbarEngine::matmul_into`] (bitwise identical to the
    /// per-sample path; see [`conv_forward_batched`](Self::conv_forward_batched)).
    use_matmul: bool,
    /// Batched path: concatenated post-permutation input-code vectors of
    /// every MVM column of the current layer, sample-major.
    batch_codes: Vec<u32>,
    /// Batched path: per-column quantization scales (each sample's scale
    /// repeated once per output position).
    batch_scales: Vec<f32>,
    /// Batched path: concatenated engine outputs of the current layer.
    batch_out: Vec<f32>,
    stats: E::Stats,
    layer_stats: Vec<E::Stats>,
    layer_mvms: Vec<u64>,
    /// Wall-clock nanoseconds this context spent inside each weight
    /// layer's analog lowering (conv/linear dispatch, including
    /// quantization and code gathering).
    layer_wall_ns: Vec<u64>,
    /// Per-layer pristine output ceilings (in code×step units, before the
    /// input scale), cached once at context construction.
    ceilings: Vec<Option<f64>>,
    /// Output-range sentinel violations observed by this context.
    sentinels: u64,
    /// Sentinel violations per weight layer.
    layer_sentinels: Vec<u64>,
}

impl<'a, E: CrossbarEngine> InferenceCtx<'a, E> {
    fn new(engines: &'a [E], perms: &'a [Option<Vec<usize>>], layer_input_bits: &'a [u32]) -> Self {
        Self {
            engines,
            perms,
            layer_input_bits,
            scratch: E::Scratch::default(),
            codes: Vec::new(),
            permuted: Vec::new(),
            mvm_out: Vec::new(),
            sample: Vec::new(),
            use_matmul: false,
            batch_codes: Vec::new(),
            batch_scales: Vec::new(),
            batch_out: Vec::new(),
            stats: E::Stats::default(),
            layer_stats: vec![E::Stats::default(); engines.len()],
            layer_mvms: vec![0; engines.len()],
            layer_wall_ns: vec![0; engines.len()],
            ceilings: engines.iter().map(E::output_ceiling).collect(),
            sentinels: 0,
            layer_sentinels: vec![0; engines.len()],
        }
    }

    /// A context whose weight layers lower whole batches through
    /// [`CrossbarEngine::matmul_into`] — the batched hot path used by
    /// sessions, `forward_batched` and the parallel workers.
    fn new_batched(
        engines: &'a [E],
        perms: &'a [Option<Vec<usize>>],
        layer_input_bits: &'a [u32],
    ) -> Self {
        let mut ctx = Self::new(engines, perms, layer_input_bits);
        ctx.use_matmul = true;
        ctx
    }

    /// Runs the full layer stack on a `[N, ...]` batch.
    fn run(&mut self, layers: &mut [Layer], x: &Tensor) -> Tensor {
        let mut widx = 0;
        let mut y = x.clone();
        for layer in layers {
            y = self.forward_layer(layer, &y, &mut widx);
        }
        y
    }

    fn forward_layer(&mut self, layer: &mut Layer, x: &Tensor, widx: &mut usize) -> Tensor {
        match layer {
            Layer::Conv2d(conv) => {
                let idx = *widx;
                *widx += 1;
                let geom = Conv2dGeometry::new(
                    conv.in_channels(),
                    x.dims()[2],
                    x.dims()[3],
                    conv.kernel(),
                    conv.kernel(),
                    conv.stride(),
                    conv.padding(),
                );
                let bias = conv.bias().value.clone();
                self.timed(idx, |ctx| ctx.conv_forward(idx, x, &geom, &bias))
            }
            Layer::Linear(lin) => {
                let idx = *widx;
                *widx += 1;
                let bias = lin.bias().value.clone();
                self.timed(idx, |ctx| ctx.linear_forward(idx, x, &bias))
            }
            Layer::Residual(block) => {
                let mut y = x.clone();
                for l in block.body_mut() {
                    y = self.forward_layer(l, &y, widx);
                }
                let shortcut = match block.projection_mut() {
                    Some(p) => self.forward_layer(p, x, widx),
                    None => x.clone(),
                };
                // Digital add + ReLU.
                y.zip(&shortcut, |a, b| (a + b).max(0.0))
            }
            other => other.forward(x, false),
        }
    }

    /// Runs one weight layer's lowering under a wall-clock stopwatch,
    /// attributing the elapsed nanoseconds to layer `idx`. Wall time is
    /// host-measured and non-deterministic, so it lives outside
    /// `E::Stats` and is never part of bitwise-equality contracts.
    fn timed(&mut self, idx: usize, f: impl FnOnce(&mut Self) -> Tensor) -> Tensor {
        let t0 = std::time::Instant::now();
        let y = f(self);
        self.layer_wall_ns[idx] += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        y
    }

    /// Quantizes an activation tensor at weight layer `idx`'s input width
    /// with a shared per-call scale. A non-finite activation maximum (NaN
    /// or infinity leaking out of a faulted engine) yields a degenerate
    /// zero-scale spec, so every code — and the layer's output — collapses
    /// to zero instead of propagating garbage.
    fn quantize_activations(&self, idx: usize, t: &Tensor) -> QuantizedTensor {
        let spec = FixedSpec::for_max_value(self.layer_input_bits[idx], t.max());
        QuantizedTensor::quantize_with(t, spec)
    }

    fn record(&mut self, idx: usize, stats: E::Stats) {
        self.stats.merge(stats);
        self.layer_stats[idx].merge(stats);
        self.layer_mvms[idx] += 1;
    }

    /// [`record`](Self::record) for one batched `matmul_into` call
    /// covering `mvms` matrix-vector activations.
    fn record_batch(&mut self, idx: usize, stats: E::Stats, mvms: u64) {
        self.stats.merge(stats);
        self.layer_stats[idx].merge(stats);
        self.layer_mvms[idx] += mvms;
    }

    /// Output-range sentinel: counts MVM outputs whose magnitude exceeds
    /// what the layer's pristine mapping can nominally produce at this
    /// input scale. Clean silicon never trips it; stuck-high cells and
    /// offset/sign corruption can.
    fn check_sentinels(&mut self, idx: usize, input_scale: f32) {
        let hits = sentinel_hits(self.ceilings[idx], input_scale, &self.mvm_out);
        if hits > 0 {
            self.sentinels += hits;
            self.layer_sentinels[idx] += hits;
        }
    }

    /// Applies the layer's row permutation (if any) to `self.codes`.
    fn permute_codes(&mut self, idx: usize) {
        if let Some(perm) = &self.perms[idx] {
            self.permuted.clear();
            self.permuted
                .extend(perm.iter().map(|&src| self.codes[src]));
            std::mem::swap(&mut self.codes, &mut self.permuted);
        }
    }

    fn conv_forward(
        &mut self,
        idx: usize,
        x: &Tensor,
        geom: &Conv2dGeometry,
        bias: &Tensor,
    ) -> Tensor {
        if self.use_matmul {
            return self.conv_forward_batched(idx, x, geom, bias);
        }
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let f = bias.len();
        let chw = c * h * w;
        let positions = geom.out_positions();
        let patch = geom.patch_len();
        let mut out = Tensor::zeros(&[n, f, geom.out_h, geom.out_w]);
        let engines = self.engines;
        let engine = &engines[idx];
        self.mvm_out.resize(engine.output_len(), 0.0);
        for s in 0..n {
            // Stage the sample through the recycled buffer instead of a
            // fresh `to_vec` per window.
            let mut buf = std::mem::take(&mut self.sample);
            buf.clear();
            buf.extend_from_slice(&x.data()[s * chw..(s + 1) * chw]);
            let sample = Tensor::from_vec(buf, &[c, h, w]);
            let cols = im2col(&sample, geom);
            self.sample = sample.into_vec();
            let q = self.quantize_activations(idx, &cols);
            let scale = q.spec().scale();
            for p in 0..positions {
                self.codes.clear();
                self.codes
                    .extend((0..patch).map(|r| q.codes()[r * positions + p]));
                self.permute_codes(idx);
                let stats =
                    engine.matvec_into(&self.codes, scale, &mut self.scratch, &mut self.mvm_out);
                self.record(idx, stats);
                self.check_sentinels(idx, scale);
                for (fi, &v) in self.mvm_out.iter().enumerate() {
                    out.data_mut()[(s * f + fi) * positions + p] = v + bias.data()[fi];
                }
            }
        }
        out
    }

    /// Batched conv lowering: the whole `[N, ...]` batch is im2col'd and
    /// quantized per sample (each sample keeps its own activation scale,
    /// exactly as the per-sample path), every output position's code
    /// column is gathered and permuted, and the layer executes as *one*
    /// [`CrossbarEngine::matmul_into`] call over `N × positions` columns.
    /// Outputs, merged statistics and per-column sentinel checks are
    /// bitwise identical to the per-sample path.
    fn conv_forward_batched(
        &mut self,
        idx: usize,
        x: &Tensor,
        geom: &Conv2dGeometry,
        bias: &Tensor,
    ) -> Tensor {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let f = bias.len();
        let chw = c * h * w;
        let positions = geom.out_positions();
        let patch = geom.patch_len();
        let mut out = Tensor::zeros(&[n, f, geom.out_h, geom.out_w]);
        let engine = &self.engines[idx];
        let out_len = engine.output_len();
        let ncols = n * positions;
        self.batch_codes.clear();
        self.batch_scales.clear();
        for s in 0..n {
            let mut buf = std::mem::take(&mut self.sample);
            buf.clear();
            buf.extend_from_slice(&x.data()[s * chw..(s + 1) * chw]);
            let sample = Tensor::from_vec(buf, &[c, h, w]);
            let cols = im2col(&sample, geom);
            self.sample = sample.into_vec();
            let q = self.quantize_activations(idx, &cols);
            let scale = q.spec().scale();
            for p in 0..positions {
                self.codes.clear();
                self.codes
                    .extend((0..patch).map(|r| q.codes()[r * positions + p]));
                self.permute_codes(idx);
                self.batch_codes.extend_from_slice(&self.codes);
                self.batch_scales.push(scale);
            }
        }
        self.batch_out.clear();
        self.batch_out.resize(ncols * out_len, 0.0);
        let stats = engine.matmul_into(
            &self.batch_codes,
            &self.batch_scales,
            &mut self.scratch,
            &mut self.batch_out,
        );
        self.record_batch(idx, stats, ncols as u64);
        let ceiling = self.ceilings[idx];
        let mut hits = 0u64;
        for (col, out_col) in self.batch_out.chunks_exact(out_len).enumerate() {
            hits += sentinel_hits(ceiling, self.batch_scales[col], out_col);
            let (s, p) = (col / positions, col % positions);
            for (fi, &v) in out_col.iter().enumerate() {
                out.data_mut()[(s * f + fi) * positions + p] = v + bias.data()[fi];
            }
        }
        if hits > 0 {
            self.sentinels += hits;
            self.layer_sentinels[idx] += hits;
        }
        out
    }

    fn linear_forward(&mut self, idx: usize, x: &Tensor, bias: &Tensor) -> Tensor {
        if self.use_matmul {
            return self.linear_forward_batched(idx, x, bias);
        }
        let (n, in_features) = (x.dims()[0], x.dims()[1]);
        let o = bias.len();
        let mut out = Tensor::zeros(&[n, o]);
        let engines = self.engines;
        let engine = &engines[idx];
        self.mvm_out.resize(engine.output_len(), 0.0);
        for s in 0..n {
            let mut buf = std::mem::take(&mut self.sample);
            buf.clear();
            buf.extend_from_slice(&x.data()[s * in_features..(s + 1) * in_features]);
            let row = Tensor::from_vec(buf, &[in_features]);
            let q = self.quantize_activations(idx, &row);
            self.sample = row.into_vec();
            let scale = q.spec().scale();
            self.codes.clear();
            self.codes.extend_from_slice(q.codes());
            self.permute_codes(idx);
            let stats =
                engine.matvec_into(&self.codes, scale, &mut self.scratch, &mut self.mvm_out);
            self.record(idx, stats);
            self.check_sentinels(idx, scale);
            for (j, &v) in self.mvm_out.iter().enumerate() {
                out.data_mut()[s * o + j] = v + bias.data()[j];
            }
        }
        out
    }

    /// Batched linear lowering: one
    /// [`CrossbarEngine::matmul_into`] call over all `N` rows, with
    /// per-sample quantization scales. Bitwise identical to the
    /// per-sample path (see
    /// [`conv_forward_batched`](Self::conv_forward_batched)).
    fn linear_forward_batched(&mut self, idx: usize, x: &Tensor, bias: &Tensor) -> Tensor {
        let (n, in_features) = (x.dims()[0], x.dims()[1]);
        let o = bias.len();
        let mut out = Tensor::zeros(&[n, o]);
        let engine = &self.engines[idx];
        let out_len = engine.output_len();
        self.batch_codes.clear();
        self.batch_scales.clear();
        for s in 0..n {
            let mut buf = std::mem::take(&mut self.sample);
            buf.clear();
            buf.extend_from_slice(&x.data()[s * in_features..(s + 1) * in_features]);
            let row = Tensor::from_vec(buf, &[in_features]);
            let q = self.quantize_activations(idx, &row);
            self.sample = row.into_vec();
            self.codes.clear();
            self.codes.extend_from_slice(q.codes());
            self.permute_codes(idx);
            self.batch_codes.extend_from_slice(&self.codes);
            self.batch_scales.push(q.spec().scale());
        }
        self.batch_out.clear();
        self.batch_out.resize(n * out_len, 0.0);
        let stats = engine.matmul_into(
            &self.batch_codes,
            &self.batch_scales,
            &mut self.scratch,
            &mut self.batch_out,
        );
        self.record_batch(idx, stats, n as u64);
        let ceiling = self.ceilings[idx];
        let mut hits = 0u64;
        for (s, out_col) in self.batch_out.chunks_exact(out_len).enumerate() {
            hits += sentinel_hits(ceiling, self.batch_scales[s], out_col);
            for (j, &v) in out_col.iter().enumerate() {
                out.data_mut()[s * o + j] = v + bias.data()[j];
            }
        }
        if hits > 0 {
            self.sentinels += hits;
            self.layer_sentinels[idx] += hits;
        }
        out
    }
}

/// A long-lived per-worker inference handle borrowing an [`Executor`]
/// immutably: one cloned digital network plus one inference context worth
/// of reusable buffers (im2col/patch/code scratch), kept warm *across*
/// independent forward calls.
///
/// This is the serving entry point: a replica worker creates one session up
/// front and then runs every batch the service hands it through
/// [`forward_batch_into`](Self::forward_batch_into) without re-cloning the
/// network or re-allocating scratch per request. Because the session only
/// borrows the executor (`&Executor`), any number of sessions can run
/// concurrently against the same mapped engines.
///
/// Statistics accumulate inside the session; fold them back with
/// [`Executor::merge_stats`] once the session is done (the session must be
/// dropped first to release the borrow).
#[derive(Debug)]
pub struct InferenceSession<'a, E: CrossbarEngine> {
    layers: Vec<Layer>,
    /// The owning executor's precision plan — sessions carry it so the
    /// serving layer can tag telemetry with the deployed plan.
    plan: &'a PrecisionPlan,
    ctx: InferenceCtx<'a, E>,
}

impl<E: CrossbarEngine> InferenceSession<'_, E> {
    /// Runs one `[N, ...]` batch through the mixed-signal path, writing the
    /// flattened output into `out` (cleared first) and returning the output
    /// dimensions. Results are bitwise identical to
    /// [`Executor::forward`] on the same input.
    pub fn forward_batch_into(&mut self, x: &Tensor, out: &mut Vec<f32>) -> Vec<usize> {
        let y = self.ctx.run(&mut self.layers, x);
        out.clear();
        out.extend_from_slice(y.data());
        y.dims().to_vec()
    }

    /// Runs one `[N, ...]` batch and returns the output tensor.
    pub fn forward_batch(&mut self, x: &Tensor) -> Tensor {
        self.ctx.run(&mut self.layers, x)
    }

    /// The precision plan of the executor this session runs against.
    pub fn plan(&self) -> &PrecisionPlan {
        self.plan
    }

    /// Statistics accumulated by this session since its creation.
    pub fn stats(&self) -> E::Stats {
        self.ctx.stats
    }

    /// Per-weight-layer statistics accumulated by this session.
    pub fn layer_stats(&self) -> &[E::Stats] {
        &self.ctx.layer_stats
    }

    /// Matrix-vector activations per weight layer in this session.
    pub fn layer_mvms(&self) -> &[u64] {
        &self.ctx.layer_mvms
    }

    /// Wall-clock nanoseconds this session spent inside each weight
    /// layer's analog lowering — the profiling hook the serving layer's
    /// per-layer attribution reads between batches. Host-measured, so it
    /// is *not* part of any bitwise-equality contract.
    pub fn layer_wall_ns(&self) -> &[u64] {
        &self.ctx.layer_wall_ns
    }

    /// Output-range sentinel violations observed by this session.
    pub fn sentinel_violations(&self) -> u64 {
        self.ctx.sentinels
    }

    /// Sentinel violations per weight layer in this session.
    pub fn layer_sentinel_violations(&self) -> &[u64] {
        &self.ctx.layer_sentinels
    }
}

impl<E: CrossbarEngine> Executor<E> {
    /// Maps a network with identity row order.
    ///
    /// `activation_bits` is the quantization width applied to every
    /// activation tensor entering the analog path (with a shared per-call
    /// scale).
    ///
    /// # Errors
    ///
    /// Returns the first failing layer's [`ExecError`].
    pub fn map_network(
        net: &Network,
        config: &E::Config,
        activation_bits: u32,
    ) -> Result<Self, ExecError> {
        let count = net.weight_layer_count();
        Self::with_permutations(net, config, activation_bits, vec![None; count])
    }

    /// Maps a network whose weight layers were trained under per-layer row
    /// permutations. `perms[i]` must be the policy permutation of weight
    /// layer `i` in visit order (`None` = identity): the matrix rows are
    /// reordered before mapping and the matching input codes are reordered
    /// on every MVM, so results are permutation-invariant.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if a layer cannot be mapped.
    ///
    /// # Panics
    ///
    /// Panics if `perms.len()` differs from the weight-layer count.
    pub fn with_permutations(
        net: &Network,
        config: &E::Config,
        activation_bits: u32,
        perms: Vec<Option<Vec<usize>>>,
    ) -> Result<Self, ExecError> {
        // The legacy global-bit-width path: every layer maps with `config`
        // verbatim (never re-specialized, so behaviour is bit-identical to
        // the pre-plan executor even when `activation_bits` differs from
        // the width baked into `config`) and quantizes activations at
        // `activation_bits`.
        let plan = PrecisionPlan::uniform(E::precision_of(config).weight_bits, activation_bits);
        Self::construct(net, config, plan, perms, false)
    }

    /// Maps a network under a per-layer [`PrecisionPlan`]: weight layer
    /// `i` is mapped with `config` specialized to `plan.layer(i)` (see
    /// [`CrossbarEngine::with_precision`]) and its activations are
    /// quantized at `plan.layer(i).input_bits`. A
    /// [`uniform`](PrecisionPlan::uniform) plan at the configuration's own
    /// widths is bitwise identical to
    /// [`map_network`](Self::map_network).
    ///
    /// # Errors
    ///
    /// Returns the first failing layer's [`ExecError`].
    ///
    /// # Panics
    ///
    /// Panics if a per-layer plan's length differs from the weight-layer
    /// count.
    pub fn with_plan(
        net: &Network,
        config: &E::Config,
        plan: PrecisionPlan,
    ) -> Result<Self, ExecError> {
        let count = net.weight_layer_count();
        Self::with_plan_and_permutations(net, config, plan, vec![None; count])
    }

    /// [`with_plan`](Self::with_plan) with per-layer row permutations
    /// (see [`with_permutations`](Self::with_permutations)).
    ///
    /// # Errors
    ///
    /// Returns the first failing layer's [`ExecError`].
    ///
    /// # Panics
    ///
    /// Panics if `perms.len()` or a per-layer plan's length differs from
    /// the weight-layer count.
    pub fn with_plan_and_permutations(
        net: &Network,
        config: &E::Config,
        plan: PrecisionPlan,
        perms: Vec<Option<Vec<usize>>>,
    ) -> Result<Self, ExecError> {
        Self::construct(net, config, plan, perms, true)
    }

    /// Shared constructor: maps every weight layer, specializing `config`
    /// per layer from `plan` when `specialize` is set (the legacy
    /// global-bit-width path keeps `config` verbatim instead).
    fn construct(
        net: &Network,
        config: &E::Config,
        plan: PrecisionPlan,
        perms: Vec<Option<Vec<usize>>>,
        specialize: bool,
    ) -> Result<Self, ExecError> {
        let mut net = net.clone();
        let mut matrices = Vec::new();
        net.for_each_weight_layer(&mut |wl| {
            matrices.push(match wl {
                WeightLayerMut::Conv(c) => c.weight_matrix(),
                WeightLayerMut::Linear(l) => l.weight_matrix(),
            });
        });
        assert_eq!(
            matrices.len(),
            perms.len(),
            "need one permutation slot per weight layer"
        );
        plan.assert_covers(matrices.len());
        let layer_configs: Vec<E::Config> = (0..matrices.len())
            .map(|i| {
                if specialize {
                    E::with_precision(config, plan.layer(i))
                } else {
                    config.clone()
                }
            })
            .collect();
        let layer_input_bits: Vec<u32> = (0..matrices.len())
            .map(|i| plan.layer(i).input_bits)
            .collect();
        let mut engines = Vec::with_capacity(matrices.len());
        for ((m, perm), layer_config) in matrices.iter().zip(&perms).zip(&layer_configs) {
            let policy_m = match perm {
                Some(p) => permute_rows(m, p),
                None => m.clone(),
            };
            engines.push(E::map_matrix(&policy_m, layer_config)?);
        }
        let count = engines.len();
        Ok(Self {
            net,
            engines,
            perms,
            config: config.clone(),
            plan,
            layer_configs,
            layer_input_bits,
            stats: E::Stats::default(),
            layer_stats: vec![E::Stats::default(); count],
            layer_mvms: vec![0; count],
            layer_wall_ns: vec![0; count],
            sentinels: 0,
            layer_sentinels: vec![0; count],
        })
    }

    /// The base engine configuration the network was mapped from (before
    /// any per-layer precision specialization).
    pub fn engine_config(&self) -> &E::Config {
        &self.config
    }

    /// The precision plan every layer was mapped and quantized under.
    pub fn plan(&self) -> &PrecisionPlan {
        &self.plan
    }

    /// The engine configuration each weight layer was actually mapped
    /// with: the base configuration specialized by the plan (or verbatim
    /// copies on the legacy global-bit-width path).
    pub fn layer_configs(&self) -> &[E::Config] {
        &self.layer_configs
    }

    /// Activation quantization bits per weight layer.
    pub fn layer_input_bits(&self) -> &[u32] {
        &self.layer_input_bits
    }

    /// The mapped weight-layer engines, in visit order.
    pub fn engines(&self) -> &[E] {
        &self.engines
    }

    /// Mutable access to the engines (variation/fault injection).
    pub fn engines_mut(&mut self) -> &mut [E] {
        &mut self.engines
    }

    /// Total physical crossbars used by the whole network.
    pub fn total_crossbars(&self) -> usize {
        self.engines.iter().map(E::crossbar_count).sum()
    }

    /// Accumulated statistics since the last reset.
    pub fn stats(&self) -> E::Stats {
        self.stats
    }

    /// Accumulated statistics per weight layer (visit order) since the
    /// last reset.
    pub fn layer_stats(&self) -> &[E::Stats] {
        &self.layer_stats
    }

    /// Matrix-vector activations per weight layer since the last reset.
    pub fn layer_mvms(&self) -> &[u64] {
        &self.layer_mvms
    }

    /// Wall-clock nanoseconds spent inside each weight layer's analog
    /// lowering since the last reset. Host-measured profiling data — it
    /// accumulates alongside the stats registry but is never part of a
    /// bitwise-equality contract.
    pub fn layer_wall_ns(&self) -> &[u64] {
        &self.layer_wall_ns
    }

    /// Output-range sentinel violations since the last reset: MVM outputs
    /// whose magnitude exceeded the pristine mapping's nominal ceiling
    /// (see [`CrossbarEngine::output_ceiling`]).
    pub fn sentinel_violations(&self) -> u64 {
        self.sentinels
    }

    /// Sentinel violations per weight layer since the last reset.
    pub fn layer_sentinel_violations(&self) -> &[u64] {
        &self.layer_sentinels
    }

    /// Aggregate device health over every mapped engine.
    pub fn health(&self) -> EngineHealth {
        let mut total = EngineHealth::default();
        for engine in &self.engines {
            total.merge(&engine.health());
        }
        total
    }

    /// Clears accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = E::Stats::default();
        self.layer_stats = vec![E::Stats::default(); self.engines.len()];
        self.layer_mvms = vec![0; self.engines.len()];
        self.layer_wall_ns = vec![0; self.engines.len()];
        self.sentinels = 0;
        self.layer_sentinels = vec![0; self.engines.len()];
    }

    /// Builds the per-layer inputs of the frame-rate model from the
    /// statistics of the inferences run so far: each layer's measured mean
    /// input cycles, its crossbar footprint and its matrix-vector
    /// activations per image.
    ///
    /// # Panics
    ///
    /// Panics if no inference has been run since the last reset or
    /// `images` is zero.
    pub fn layer_perfs(&self, images: usize) -> Vec<LayerPerf> {
        assert!(images > 0, "images must be positive");
        assert!(
            self.layer_mvms.iter().any(|&m| m > 0),
            "run at least one inference before extracting layer perfs"
        );
        self.engines
            .iter()
            .zip(&self.layer_stats)
            .zip(self.layer_mvms.iter().zip(&self.layer_configs))
            .map(|((engine, stats), (&mvms, layer_config))| LayerPerf {
                positions: (mvms as usize / images).max(1),
                crossbars: engine.crossbar_count(),
                // Plan-aware fallback: a layer that measured nothing is
                // bounded by *its own* input width, not a global one.
                input_cycles: E::mean_input_cycles(stats)
                    .unwrap_or_else(|| E::max_input_cycles(layer_config))
                    .max(1.0),
            })
            .collect()
    }

    /// Measured mean input cycles per fragment/row-block activation for
    /// each weight layer (`None` where nothing has been recorded) — the
    /// per-layer cycle view of the stats registry that mixed-precision
    /// sweeps compare across plans.
    pub fn layer_mean_input_cycles(&self) -> Vec<Option<f64>> {
        self.layer_stats.iter().map(E::mean_input_cycles).collect()
    }

    /// Opens an inference session: a per-worker handle with its own cloned
    /// digital network and reusable buffers, sharing this executor's mapped
    /// engines immutably. See [`InferenceSession`].
    /// Sessions lower weight layers through the batched
    /// [`CrossbarEngine::matmul_into`] hot path (bitwise identical to the
    /// per-sample path).
    pub fn session(&self) -> InferenceSession<'_, E> {
        InferenceSession {
            layers: self.net.clone().into_layers(),
            plan: &self.plan,
            ctx: InferenceCtx::new_batched(&self.engines, &self.perms, &self.layer_input_bits),
        }
    }

    /// Folds statistics carried out of a finished [`InferenceSession`] (or
    /// any external worker) into this executor's registry, including the
    /// session's sentinel-violation counts.
    ///
    /// # Panics
    ///
    /// Panics if `layer_stats`, `layer_mvms`, `layer_wall_ns` or
    /// `layer_sentinels` length differs from the weight-layer count.
    pub fn merge_stats(
        &mut self,
        stats: E::Stats,
        layer_stats: &[E::Stats],
        layer_mvms: &[u64],
        layer_wall_ns: &[u64],
        sentinels: u64,
        layer_sentinels: &[u64],
    ) {
        assert_eq!(layer_stats.len(), self.engines.len(), "layer stats length");
        assert_eq!(layer_mvms.len(), self.engines.len(), "layer mvms length");
        assert_eq!(
            layer_wall_ns.len(),
            self.engines.len(),
            "layer wall-time length"
        );
        assert_eq!(
            layer_sentinels.len(),
            self.engines.len(),
            "layer sentinels length"
        );
        self.merge_worker(
            stats,
            layer_stats,
            layer_mvms,
            layer_wall_ns,
            sentinels,
            layer_sentinels,
        );
    }

    /// Folds one finished worker context's statistics into the registry.
    fn merge_worker(
        &mut self,
        stats: E::Stats,
        layer_stats: &[E::Stats],
        layer_mvms: &[u64],
        layer_wall_ns: &[u64],
        sentinels: u64,
        layer_sentinels: &[u64],
    ) {
        self.stats.merge(stats);
        for (acc, st) in self.layer_stats.iter_mut().zip(layer_stats) {
            acc.merge(*st);
        }
        for (acc, &m) in self.layer_mvms.iter_mut().zip(layer_mvms) {
            *acc += m;
        }
        for (acc, &w) in self.layer_wall_ns.iter_mut().zip(layer_wall_ns) {
            *acc = acc.saturating_add(w);
        }
        self.sentinels += sentinels;
        for (acc, &s) in self.layer_sentinels.iter_mut().zip(layer_sentinels) {
            *acc += s;
        }
    }

    /// Runs inference on a `[N, ...]` batch through the mixed-signal path.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut layers = std::mem::take(&mut self.net).into_layers();
        let (y, stats, layer_stats, layer_mvms, layer_wall_ns, sentinels, layer_sentinels) = {
            let mut ctx = InferenceCtx::new(&self.engines, &self.perms, &self.layer_input_bits);
            let y = ctx.run(&mut layers, x);
            (
                y,
                ctx.stats,
                ctx.layer_stats,
                ctx.layer_mvms,
                ctx.layer_wall_ns,
                ctx.sentinels,
                ctx.layer_sentinels,
            )
        };
        self.net = Network::new(layers);
        self.merge_worker(
            stats,
            &layer_stats,
            &layer_mvms,
            &layer_wall_ns,
            sentinels,
            &layer_sentinels,
        );
        y
    }

    /// [`forward`](Self::forward) through the batched hot path: every
    /// weight layer lowers the whole batch and executes as one
    /// [`CrossbarEngine::matmul_into`] call. Outputs and statistics are
    /// bitwise identical to [`forward`](Self::forward).
    pub fn forward_batched(&mut self, x: &Tensor) -> Tensor {
        let mut layers = std::mem::take(&mut self.net).into_layers();
        let (y, stats, layer_stats, layer_mvms, layer_wall_ns, sentinels, layer_sentinels) = {
            let mut ctx =
                InferenceCtx::new_batched(&self.engines, &self.perms, &self.layer_input_bits);
            let y = ctx.run(&mut layers, x);
            (
                y,
                ctx.stats,
                ctx.layer_stats,
                ctx.layer_mvms,
                ctx.layer_wall_ns,
                ctx.sentinels,
                ctx.layer_sentinels,
            )
        };
        self.net = Network::new(layers);
        self.merge_worker(
            stats,
            &layer_stats,
            &layer_mvms,
            &layer_wall_ns,
            sentinels,
            &layer_sentinels,
        );
        y
    }

    /// Runs inference on a `[N, ...]` batch with samples distributed over
    /// worker threads through an atomic work-stealing cursor: workers
    /// repeatedly claim the next unprocessed sample range (at most
    /// `STEAL_TILE_MAX` samples) instead of being assigned one static
    /// chunk up front, so a worker that lands easy samples keeps pulling
    /// work while a slow one never stalls the batch. Every worker shares
    /// the same mapped engines immutably (crossbar storage is *not*
    /// cloned per worker), clones only the digital network for its layer
    /// walk, and lowers each stolen range through the batched
    /// [`CrossbarEngine::matmul_into`] hot path, so results are bitwise
    /// identical to [`forward`](Self::forward) regardless of worker count
    /// or steal order. Statistics from all workers are merged (every
    /// counter is additive, so the merge is order-independent).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn forward_parallel(&mut self, x: &Tensor, workers: usize) -> Tensor {
        assert!(workers > 0, "need at least one worker");
        let n = x.dims()[0];
        if n == 0 || workers == 1 {
            return self.forward_batched(x);
        }
        let workers = workers.min(n);
        let sample_len = x.len() / n;
        let sample_dims = &x.dims()[1..];
        // Steal granularity: ~4 steals per worker to balance ragged
        // batches, capped so each stolen range still fills an engine tile.
        let tile = n.div_ceil(workers * 4).clamp(1, STEAL_TILE_MAX);
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        type WorkerResult<S> = (S, Vec<S>, Vec<u64>, Vec<u64>, u64, Vec<u64>);
        let pieces: std::sync::Mutex<Vec<(usize, Tensor)>> = std::sync::Mutex::new(Vec::new());
        let worker_stats: std::sync::Mutex<Vec<WorkerResult<E::Stats>>> =
            std::sync::Mutex::new(Vec::new());
        let (net, engines, perms) = (&self.net, &self.engines, &self.perms);
        let layer_input_bits = &self.layer_input_bits;
        let (cursor_ref, pieces_ref, stats_ref) = (&cursor, &pieces, &worker_stats);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || {
                    let mut layers = net.clone().into_layers();
                    let mut ctx = InferenceCtx::new_batched(engines, perms, layer_input_bits);
                    loop {
                        let lo = cursor_ref.fetch_add(tile, std::sync::atomic::Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + tile).min(n);
                        let mut dims = vec![hi - lo];
                        dims.extend_from_slice(sample_dims);
                        let part = Tensor::from_vec(
                            x.data()[lo * sample_len..hi * sample_len].to_vec(),
                            &dims,
                        );
                        let y = ctx.run(&mut layers, &part);
                        pieces_ref.lock().unwrap().push((lo, y));
                    }
                    stats_ref.lock().unwrap().push((
                        ctx.stats,
                        ctx.layer_stats,
                        ctx.layer_mvms,
                        ctx.layer_wall_ns,
                        ctx.sentinels,
                        ctx.layer_sentinels,
                    ));
                });
            }
        });
        for (stats, layer_stats, layer_mvms, layer_wall_ns, sentinels, layer_sentinels) in
            worker_stats.into_inner().unwrap()
        {
            self.merge_worker(
                stats,
                &layer_stats,
                &layer_mvms,
                &layer_wall_ns,
                sentinels,
                &layer_sentinels,
            );
        }
        // Stitch stolen ranges back into sample order.
        let mut pieces = pieces.into_inner().unwrap();
        pieces.sort_unstable_by_key(|(lo, _)| *lo);
        let mut out_data = Vec::new();
        let mut out_dims: Option<Vec<usize>> = None;
        for (_, y) in pieces {
            if out_dims.is_none() {
                out_dims = Some(y.dims().to_vec());
            }
            out_data.extend_from_slice(y.data());
        }
        let mut dims = out_dims.expect("at least one range ran");
        dims[0] = n;
        Tensor::from_vec(out_data, &dims)
    }

    /// Classification accuracy of the mapped model on a dataset.
    pub fn evaluate(&mut self, data: &forms_dnn::data::Dataset, batch_size: usize) -> f32 {
        self.evaluate_parallel(data, batch_size, 1)
    }

    /// [`evaluate`](Self::evaluate) with each batch distributed over
    /// `workers` threads via [`forward_parallel`](Self::forward_parallel);
    /// the accuracy is bitwise identical to the serial run. The serial
    /// case (`workers == 1`) keeps one warm batched inference context
    /// alive across *all* batches, so the lowering buffers (im2col
    /// staging, gathered codes, batch outputs) are allocated once per
    /// evaluation instead of once per batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` or `workers` is zero.
    pub fn evaluate_parallel(
        &mut self,
        data: &forms_dnn::data::Dataset,
        batch_size: usize,
        workers: usize,
    ) -> f32 {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(workers > 0, "need at least one worker");
        if data.is_empty() {
            return 0.0;
        }
        let mut correct = 0.0;
        if workers == 1 {
            // One warm context for the whole evaluation.
            let mut layers = std::mem::take(&mut self.net).into_layers();
            let (stats, layer_stats, layer_mvms, layer_wall_ns, sentinels, layer_sentinels) = {
                let mut ctx =
                    InferenceCtx::new_batched(&self.engines, &self.perms, &self.layer_input_bits);
                for (x, labels) in data.batches(batch_size) {
                    let logits = ctx.run(&mut layers, &x);
                    correct += forms_dnn::accuracy(&logits, labels) * labels.len() as f32;
                }
                (
                    ctx.stats,
                    ctx.layer_stats,
                    ctx.layer_mvms,
                    ctx.layer_wall_ns,
                    ctx.sentinels,
                    ctx.layer_sentinels,
                )
            };
            self.net = Network::new(layers);
            self.merge_worker(
                stats,
                &layer_stats,
                &layer_mvms,
                &layer_wall_ns,
                sentinels,
                &layer_sentinels,
            );
        } else {
            for (x, labels) in data.batches(batch_size) {
                let logits = self.forward_parallel(&x, workers);
                correct += forms_dnn::accuracy(&logits, labels) * labels.len() as f32;
            }
        }
        correct / data.len() as f32
    }
}

impl<E: FaultableEngine> Executor<E> {
    /// Applies a seeded fault campaign to every mapped layer, each with a
    /// layer-distinct salt derived from `salt`, and returns the merged
    /// report. The faults are immediately visible to every inference path
    /// (the engines re-commit their packed tables) and to
    /// [`health`](Self::health).
    pub fn inject_faults(&mut self, campaign: &FaultCampaign, salt: u64) -> FaultReport {
        let mut total = FaultReport::default();
        for (i, engine) in self.engines.iter_mut().enumerate() {
            let layer_salt = salt ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407);
            total.merge(&engine.inject_faults(campaign, layer_salt));
        }
        total
    }
}

/// Permutes matrix rows: `out[i] = in[perm[i]]`.
fn permute_rows(m: &Tensor, perm: &[usize]) -> Tensor {
    let (rows, cols) = (m.dims()[0], m.dims()[1]);
    assert_eq!(perm.len(), rows, "permutation length mismatch");
    let mut out = Tensor::zeros(&[rows, cols]);
    for (i, &src) in perm.iter().enumerate() {
        out.data_mut()[i * cols..(i + 1) * cols]
            .copy_from_slice(&m.data()[src * cols..(src + 1) * cols]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_rng::StdRng;

    /// A digital mock engine: exact f32 matvec, one cycle per MVM. Tests
    /// the executor's network walk, quantization and stats plumbing in
    /// isolation from any analog model.
    #[derive(Clone, Debug)]
    struct DigitalEngine {
        weights: Tensor,
    }

    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    struct DigitalStats {
        mvms: u64,
        cycles: u64,
    }

    impl Merge for DigitalStats {
        fn merge(&mut self, other: Self) {
            self.mvms += other.mvms;
            self.cycles += other.cycles;
        }
    }

    /// Reused input staging for the digital mock's dequantized activations.
    #[derive(Debug, Default)]
    struct DigitalScratch {
        x: Vec<f32>,
    }

    impl CrossbarEngine for DigitalEngine {
        type Config = u32; // input bits
        type Stats = DigitalStats;
        type Scratch = DigitalScratch;

        fn map_matrix(matrix: &Tensor, _config: &u32) -> Result<Self, ExecError> {
            if matrix.shape().rank() != 2 {
                return Err(ExecError::NotMatrix {
                    rank: matrix.shape().rank(),
                });
            }
            if matrix.data().iter().all(|&v| v == 0.0) {
                return Err(ExecError::AllZero);
            }
            Ok(Self {
                weights: matrix.clone(),
            })
        }

        fn output_len(&self) -> usize {
            self.weights.dims()[1]
        }

        fn matvec_into(
            &self,
            input_codes: &[u32],
            input_scale: f32,
            scratch: &mut DigitalScratch,
            out: &mut [f32],
        ) -> DigitalStats {
            scratch.x.clear();
            scratch
                .x
                .extend(input_codes.iter().map(|&c| c as f32 * input_scale));
            let y = self.weights.transpose().matvec(&scratch.x);
            out.copy_from_slice(&y);
            DigitalStats { mvms: 1, cycles: 1 }
        }

        fn crossbar_count(&self) -> usize {
            1
        }

        fn mean_input_cycles(stats: &DigitalStats) -> Option<f64> {
            (stats.mvms > 0).then(|| stats.cycles as f64 / stats.mvms as f64)
        }

        fn max_input_cycles(config: &u32) -> f64 {
            f64::from(*config)
        }

        fn precision_of(config: &u32) -> crate::LayerPrecision {
            // The digital mock has no weight quantization; report the
            // widest width so uniform plans rebuilt from a config stay
            // faithful to its input bits.
            crate::LayerPrecision::new(32, *config)
        }

        fn with_precision(_config: &u32, precision: crate::LayerPrecision) -> u32 {
            precision.input_bits
        }
    }

    fn small_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            Layer::conv2d(&mut rng, 1, 4, 3, 1, 1),
            Layer::relu(),
            Layer::max_pool(2),
            Layer::flatten(),
            Layer::linear(&mut rng, 4 * 4 * 4, 3),
        ])
    }

    #[test]
    fn digital_engine_tracks_network_reference() {
        let net = small_net(1);
        let mut exec = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        let x = Tensor::from_fn(&[2, 1, 8, 8], |i| (i % 7) as f32 / 8.0);
        let digital = net.clone().forward(&x);
        let out = exec.forward(&x);
        assert_eq!(out.dims(), digital.dims());
        let err = out.max_abs_diff(&digital) / digital.abs_max().max(1e-6);
        assert!(err < 0.01, "relative error {err}");
    }

    #[test]
    fn matvec_wrapper_matches_matvec_into() {
        let net = small_net(7);
        let exec = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        let engine = &exec.engines()[1];
        let codes: Vec<u32> = (0..64).map(|i| (i * 7) % 17).collect();
        let (wrapped, ws) = engine.matvec(&codes, 0.25);
        let mut scratch = DigitalScratch::default();
        let mut out = vec![0.0f32; engine.output_len()];
        let is = engine.matvec_into(&codes, 0.25, &mut scratch, &mut out);
        assert_eq!(wrapped, out);
        assert_eq!(ws, is);
    }

    #[test]
    fn parallel_matches_serial_and_merges_stats() {
        let net = small_net(2);
        let mut serial = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        let mut parallel = serial.clone();
        let x = Tensor::from_fn(&[5, 1, 8, 8], |i| (i % 9) as f32 / 9.0);
        let ys = serial.forward(&x);
        let yp = parallel.forward_parallel(&x, 3);
        assert_eq!(ys, yp);
        assert_eq!(serial.stats(), parallel.stats());
        assert_eq!(serial.layer_stats(), parallel.layer_stats());
        assert_eq!(serial.layer_mvms(), parallel.layer_mvms());
    }

    #[test]
    fn default_matmul_into_matches_per_sample_matvec_into() {
        // The trait's default `matmul_into` must be bitwise identical to
        // looping `matvec_into` — third-party engines that never override
        // it inherit the batched API contract for free.
        let net = small_net(21);
        let exec = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        let engine = &exec.engines()[1];
        let rows = 64;
        let nsamples = 5;
        let codes: Vec<u32> = (0..rows * nsamples)
            .map(|i| ((i * 13) % 31) as u32)
            .collect();
        let scales: Vec<f32> = (0..nsamples).map(|s| 0.1 + 0.02 * s as f32).collect();
        let out_len = engine.output_len();
        let mut scratch = DigitalScratch::default();
        let mut batched = vec![0.0f32; nsamples * out_len];
        let bstats = engine.matmul_into(&codes, &scales, &mut scratch, &mut batched);
        let mut expected = vec![0.0f32; nsamples * out_len];
        let mut estats = DigitalStats::default();
        for s in 0..nsamples {
            estats.merge(engine.matvec_into(
                &codes[s * rows..(s + 1) * rows],
                scales[s],
                &mut scratch,
                &mut expected[s * out_len..(s + 1) * out_len],
            ));
        }
        assert_eq!(batched, expected);
        assert_eq!(bstats, estats);
        // Empty batch: no columns, no stats.
        let empty = engine.matmul_into(&[], &[], &mut scratch, &mut []);
        assert_eq!(empty, DigitalStats::default());
    }

    #[test]
    fn forward_batched_matches_forward_bitwise() {
        let net = small_net(22);
        let mut per_sample = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        let mut batched = per_sample.clone();
        for n in [1usize, 3, 8] {
            let x = Tensor::from_fn(&[n, 1, 8, 8], |i| ((i * 3 + n) % 13) as f32 / 13.0);
            let ys = per_sample.forward(&x);
            let yb = batched.forward_batched(&x);
            assert_eq!(ys, yb, "batch {n}");
        }
        assert_eq!(per_sample.stats(), batched.stats());
        assert_eq!(per_sample.layer_stats(), batched.layer_stats());
        assert_eq!(per_sample.layer_mvms(), batched.layer_mvms());
        assert_eq!(
            per_sample.sentinel_violations(),
            batched.sentinel_violations()
        );
    }

    #[test]
    fn work_stealing_parallel_is_bitwise_stable_across_worker_counts() {
        let net = small_net(23);
        let serial = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        // Odd batch sizes exercise ragged steal tails.
        for n in [1usize, 5, 9] {
            let x = Tensor::from_fn(&[n, 1, 8, 8], |i| ((i * 7 + n) % 11) as f32 / 11.0);
            let mut reference = serial.clone();
            let ys = reference.forward(&x);
            for workers in [1usize, 2, 4] {
                let mut exec = serial.clone();
                let yp = exec.forward_parallel(&x, workers);
                assert_eq!(ys, yp, "n={n} workers={workers}");
                assert_eq!(reference.stats(), exec.stats(), "n={n} workers={workers}");
                assert_eq!(reference.layer_stats(), exec.layer_stats());
                assert_eq!(reference.layer_mvms(), exec.layer_mvms());
            }
        }
    }

    #[test]
    fn layer_wall_time_accumulates_and_resets() {
        let net = small_net(31);
        let mut exec = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        assert_eq!(exec.layer_wall_ns(), &[0, 0]);
        let x = Tensor::from_fn(&[2, 1, 8, 8], |i| (i % 5) as f32 / 8.0);
        exec.forward(&x);
        // Every weight layer ran, so every layer attributed some wall time
        // (Instant is monotone and the lowering does real work; even a
        // coarse clock advances across a conv's 64 positions — accept any
        // non-decreasing attribution but require the registry shape).
        assert_eq!(exec.layer_wall_ns().len(), 2);
        let after_forward = exec.layer_wall_ns().to_vec();
        // Sessions profile independently and merge additively.
        let mut session = exec.session();
        let mut out = Vec::new();
        session.forward_batch_into(&x, &mut out);
        assert_eq!(session.layer_wall_ns().len(), 2);
        let session_wall = session.layer_wall_ns().to_vec();
        let (stats, layer_stats, layer_mvms) = (
            session.stats(),
            session.layer_stats().to_vec(),
            session.layer_mvms().to_vec(),
        );
        let (sentinels, layer_sentinels) = (
            session.sentinel_violations(),
            session.layer_sentinel_violations().to_vec(),
        );
        drop(session);
        exec.merge_stats(
            stats,
            &layer_stats,
            &layer_mvms,
            &session_wall,
            sentinels,
            &layer_sentinels,
        );
        for ((&total, &before), &from_session) in exec
            .layer_wall_ns()
            .iter()
            .zip(&after_forward)
            .zip(&session_wall)
        {
            assert_eq!(total, before + from_session);
        }
        exec.reset_stats();
        assert_eq!(exec.layer_wall_ns(), &[0, 0]);
    }

    #[test]
    fn layer_registry_counts_mvms_per_layer() {
        let net = small_net(3);
        let mut exec = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        let x = Tensor::from_fn(&[2, 1, 8, 8], |i| (i % 5) as f32 / 8.0);
        exec.forward(&x);
        // Conv: 64 positions per image; linear: 1 — both over 2 images.
        assert_eq!(exec.layer_mvms(), &[128, 2]);
        let perfs = exec.layer_perfs(2);
        assert_eq!(perfs.len(), 2);
        assert_eq!(perfs[0].positions, 64);
        assert_eq!(perfs[1].positions, 1);
        exec.reset_stats();
        assert_eq!(exec.stats(), DigitalStats::default());
        assert_eq!(exec.layer_mvms(), &[0, 0]);
    }

    #[test]
    fn session_matches_forward_and_reuses_buffers() {
        let net = small_net(8);
        let mut exec = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        let mut session = exec.session();
        let mut out = Vec::new();
        // Several independent requests through one warm session.
        let mut all_dims = Vec::new();
        let mut all_out = Vec::new();
        for seed in 0..3 {
            let x = Tensor::from_fn(&[2, 1, 8, 8], |i| ((i + seed) % 7) as f32 / 8.0);
            let dims = session.forward_batch_into(&x, &mut out);
            all_dims.push(dims);
            all_out.push(out.clone());
        }
        let (stats, layer_stats, layer_mvms, layer_wall_ns) = (
            session.stats(),
            session.layer_stats().to_vec(),
            session.layer_mvms().to_vec(),
            session.layer_wall_ns().to_vec(),
        );
        let (sentinels, layer_sentinels) = (
            session.sentinel_violations(),
            session.layer_sentinel_violations().to_vec(),
        );
        drop(session);
        exec.merge_stats(
            stats,
            &layer_stats,
            &layer_mvms,
            &layer_wall_ns,
            sentinels,
            &layer_sentinels,
        );
        // The same requests through the plain forward path.
        let mut reference = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        for seed in 0..3 {
            let x = Tensor::from_fn(&[2, 1, 8, 8], |i| ((i + seed) % 7) as f32 / 8.0);
            let y = reference.forward(&x);
            assert_eq!(all_dims[seed], y.dims().to_vec());
            assert_eq!(all_out[seed], y.data().to_vec());
        }
        assert_eq!(exec.stats(), reference.stats());
        assert_eq!(exec.layer_mvms(), reference.layer_mvms());
    }

    #[test]
    fn concurrent_sessions_share_one_executor() {
        let net = small_net(9);
        let exec = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 5) as f32 / 5.0);
        let mut expected = Vec::new();
        exec.session().forward_batch_into(&x, &mut expected);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let (exec, x, expected) = (&exec, &x, &expected);
                scope.spawn(move || {
                    let mut session = exec.session();
                    let mut out = Vec::new();
                    session.forward_batch_into(x, &mut out);
                    assert_eq!(&out, expected);
                });
            }
        });
    }

    #[test]
    fn uniform_plan_matches_legacy_map_network_bitwise() {
        let net = small_net(11);
        let mut legacy = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        let mut planned =
            Executor::<DigitalEngine>::with_plan(&net, &16, PrecisionPlan::uniform(32, 16))
                .unwrap();
        let x = Tensor::from_fn(&[3, 1, 8, 8], |i| (i % 11) as f32 / 11.0);
        assert_eq!(legacy.forward(&x), planned.forward(&x));
        assert_eq!(legacy.stats(), planned.stats());
        assert_eq!(legacy.layer_input_bits(), planned.layer_input_bits());
    }

    #[test]
    fn per_layer_plan_specializes_each_config() {
        let net = small_net(12);
        let plan = PrecisionPlan::per_layer(vec![
            crate::LayerPrecision::new(8, 12),
            crate::LayerPrecision::new(4, 6),
        ]);
        let exec = Executor::<DigitalEngine>::with_plan(&net, &16, plan.clone()).unwrap();
        assert_eq!(exec.plan(), &plan);
        assert_eq!(exec.layer_configs(), &[12, 6]);
        assert_eq!(exec.layer_input_bits(), &[12, 6]);
        assert!(!exec.plan().is_uniform());
        // The layer-perf fallback is plan-aware: max cycles come from the
        // per-layer config, not a global width.
        let mut exec = exec;
        let x = Tensor::from_fn(&[1, 1, 8, 8], |i| (i % 7) as f32 / 7.0);
        exec.forward(&x);
        let cycles = exec.layer_mean_input_cycles();
        assert!(cycles.iter().all(Option::is_some));
    }

    #[test]
    #[should_panic(expected = "weight layers")]
    fn mismatched_per_layer_plan_panics() {
        let net = small_net(13);
        let plan = PrecisionPlan::per_layer(vec![crate::LayerPrecision::new(8, 8); 5]);
        let _ = Executor::<DigitalEngine>::with_plan(&net, &16, plan);
    }

    #[test]
    fn non_finite_activations_collapse_to_zero_codes() {
        // A NaN/inf batch entering the analog path must not produce
        // garbage codes: the degenerate zero-scale spec zeroes the layer
        // inputs, so outputs stay finite (biases only).
        let net = small_net(14);
        let mut exec = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        for poison in [f32::NAN, f32::INFINITY] {
            let x = Tensor::from_fn(&[1, 1, 8, 8], |i| if i == 3 { poison } else { 0.5 });
            let y = exec.forward(&x);
            assert!(
                y.data().iter().all(|v| v.is_finite()),
                "non-finite output for poison {poison}"
            );
        }
    }

    #[test]
    fn session_carries_the_plan() {
        let net = small_net(15);
        let plan = PrecisionPlan::per_layer(vec![
            crate::LayerPrecision::new(8, 16),
            crate::LayerPrecision::new(4, 8),
        ]);
        let exec = Executor::<DigitalEngine>::with_plan(&net, &16, plan.clone()).unwrap();
        let session = exec.session();
        assert_eq!(session.plan(), &plan);
        assert_eq!(session.plan().summary(), "mixed w4-8/a8-16 (2 layers)");
    }

    #[test]
    fn mapping_errors_propagate() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Network::new(vec![Layer::flatten(), Layer::linear(&mut rng, 4, 2)]);
        net.for_each_weight_layer(&mut |wl| {
            if let WeightLayerMut::Linear(l) = wl {
                l.set_weight_matrix(&Tensor::zeros(&[4, 2]));
            }
        });
        let err = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap_err();
        assert_eq!(err, ExecError::AllZero);
    }

    #[test]
    fn evaluate_parallel_matches_serial_evaluate() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = forms_dnn::data::SyntheticSpec {
            classes: 3,
            channels: 1,
            height: 8,
            width: 8,
            train_per_class: 2,
            test_per_class: 4,
            noise: 0.1,
        };
        let (_, test) = spec.generate(&mut rng);
        let net = small_net(6);
        let mut a = Executor::<DigitalEngine>::map_network(&net, &16, 16).unwrap();
        let mut b = a.clone();
        let serial = a.evaluate(&test, 4);
        let parallel = b.evaluate_parallel(&test, 4, 3);
        assert_eq!(serial, parallel);
        assert_eq!(a.stats(), b.stats());
    }
}
