//! The crossbar engine abstraction: what a per-layer analog MVM backend
//! must provide for the generic [`Executor`](crate::Executor) to drive it.

use std::fmt;

use forms_reram::{FaultCampaign, FaultReport};
use forms_tensor::Tensor;

use crate::error::ExecError;
use crate::precision::LayerPrecision;

/// Accumulation of per-MVM statistics records.
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// Aggregate device-health counters an engine reports about its mapped
/// crossbars: how many cells are known-faulted or drifted out of how many
/// total. The serving layer's quarantine policy thresholds on
/// [`fault_density`](Self::fault_density).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineHealth {
    /// Cells known stuck at a conductance rail.
    pub faulted_cells: u64,
    /// Cells whose conductance drifted off its programmed value.
    pub drifted_cells: u64,
    /// Total mapped cells (0 when the engine does not track health).
    pub total_cells: u64,
}

impl EngineHealth {
    /// Fraction of mapped cells known stuck (0 when untracked).
    pub fn fault_density(&self) -> f64 {
        if self.total_cells == 0 {
            0.0
        } else {
            self.faulted_cells as f64 / self.total_cells as f64
        }
    }

    /// Folds another engine's counters into this one.
    pub fn merge(&mut self, other: &EngineHealth) {
        self.faulted_cells += other.faulted_cells;
        self.drifted_cells += other.drifted_cells;
        self.total_cells += other.total_cells;
    }
}

/// One weight layer mapped onto physical crossbars by some encoding scheme
/// (FORMS polarized magnitudes, ISAAC offset encoding, …).
///
/// The engine owns everything encoding-specific — how a matrix becomes
/// conductances, how an input bit stream becomes column currents and
/// digital codes, and what per-MVM costs to count. Everything
/// *network-level* (layer walk, im2col, activation quantization, batching,
/// stats registry) lives in the shared [`Executor`](crate::Executor).
///
/// Engines are immutable during inference (`matvec_into` takes `&self`),
/// which is what lets the executor's parallel batch path share one mapped
/// engine across worker threads instead of deep-cloning crossbar storage —
/// hence the `Sync` bound. All mutable per-MVM state lives in the engine's
/// [`Scratch`](Self::Scratch) buffer, owned by the caller and reused
/// across MVMs so the hot path allocates nothing.
pub trait CrossbarEngine: Clone + Send + Sync + fmt::Debug + Sized {
    /// Mapping-time configuration (crossbar dimension, cell spec, bit
    /// widths, …).
    type Config: Clone + Send + Sync + fmt::Debug;
    /// Per-MVM cost record.
    type Stats: Default + Copy + Merge + Send + fmt::Debug;
    /// Reusable per-MVM working memory (gathered codes, packed bit planes,
    /// raw currents, accumulators). `Default` must produce an empty scratch
    /// that any `matvec_into` call can grow to fit.
    type Scratch: Default + Send + fmt::Debug;

    /// Maps a `[rows, cols]` weight matrix onto crossbars.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] when the matrix cannot be represented
    /// under this engine's encoding (wrong rank, all zero, polarization
    /// violated, unsupported configuration).
    fn map_matrix(matrix: &Tensor, config: &Self::Config) -> Result<Self, ExecError>;

    /// Length of this layer's output vector (= original weight columns).
    fn output_len(&self) -> usize;

    /// Executes one matrix-vector product on quantized input codes
    /// (length = original rows) into a caller-owned output buffer of
    /// [`output_len`](Self::output_len) elements (overwritten), using
    /// caller-owned scratch. The allocation-free hot path: with a warm
    /// scratch, implementations must not allocate.
    fn matvec_into(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        scratch: &mut Self::Scratch,
        out: &mut [f32],
    ) -> Self::Stats;

    /// Executes one matrix-vector product on quantized input codes
    /// (length = original rows), returning real-valued outputs (length =
    /// original columns) and the cost record of this MVM.
    ///
    /// A convenience wrapper over [`matvec_into`](Self::matvec_into) with
    /// one-shot scratch; batch loops should hold a scratch and call
    /// `matvec_into` directly.
    fn matvec(&self, input_codes: &[u32], input_scale: f32) -> (Vec<f32>, Self::Stats) {
        let mut scratch = Self::Scratch::default();
        let mut out = vec![0.0f32; self.output_len()];
        let stats = self.matvec_into(input_codes, input_scale, &mut scratch, &mut out);
        (out, stats)
    }

    /// Executes a *batch* of matrix-vector products: `batch_codes` holds
    /// `scales.len()` consecutive input-code vectors (sample-major, each of
    /// the layer's original row count), `scales[i]` is the quantization
    /// scale of vector `i`, and `outs` receives the concatenated outputs
    /// (`scales.len() × output_len`, overwritten). Returns the merged
    /// statistics of the whole batch.
    ///
    /// The contract is *bitwise* equivalence to calling
    /// [`matvec_into`](Self::matvec_into) once per vector in order:
    /// identical outputs and identical merged stats. The default
    /// implementation does exactly that, so third-party engines keep
    /// working; weight-stationary engines override it with a blocked
    /// kernel that sweeps each weight bit-plane/dequant window once per
    /// tile of inputs instead of once per sample.
    fn matmul_into(
        &self,
        batch_codes: &[u32],
        scales: &[f32],
        scratch: &mut Self::Scratch,
        outs: &mut [f32],
    ) -> Self::Stats {
        let mut stats = Self::Stats::default();
        if scales.is_empty() {
            assert!(batch_codes.is_empty(), "codes without scales");
            assert!(outs.is_empty(), "outputs without scales");
            return stats;
        }
        assert!(
            batch_codes.len().is_multiple_of(scales.len()),
            "batch codes must hold one whole vector per scale"
        );
        let rows = batch_codes.len() / scales.len();
        let out_len = self.output_len();
        assert_eq!(
            outs.len(),
            scales.len() * out_len,
            "need output_len slots per batched vector"
        );
        for ((codes, out), &scale) in batch_codes
            .chunks_exact(rows)
            .zip(outs.chunks_exact_mut(out_len))
            .zip(scales)
        {
            stats.merge(self.matvec_into(codes, scale, scratch, out));
        }
        stats
    }

    /// Physical crossbars this layer occupies.
    fn crossbar_count(&self) -> usize;

    /// Mean input cycles per fragment/row-block activation recorded in
    /// `stats`, or `None` when the record holds no activations.
    fn mean_input_cycles(stats: &Self::Stats) -> Option<f64>;

    /// Input cycles per activation when nothing was measured — the input
    /// bit width (a design with zero-skipping never exceeds it).
    fn max_input_cycles(config: &Self::Config) -> f64;

    /// The quantization widths baked into a configuration.
    fn precision_of(config: &Self::Config) -> LayerPrecision;

    /// A copy of `config` with its bit widths replaced by `precision` —
    /// how the executor specializes one base configuration per layer under
    /// a [`PrecisionPlan`](crate::PrecisionPlan). Everything except the
    /// widths (crossbar dimension, cell spec, fragment size, …) must be
    /// preserved, and `with_precision(c, precision_of(c))` must be
    /// equivalent to `c` so a uniform plan stays bitwise identical to the
    /// global-bit-width path.
    fn with_precision(config: &Self::Config, precision: LayerPrecision) -> Self::Config;

    /// Device-health counters for this layer's mapped crossbars. The
    /// default reports nothing (all-zero); engines that track fault
    /// injection override it.
    fn health(&self) -> EngineHealth {
        EngineHealth::default()
    }

    /// Nominal upper bound on `|output| / input_scale` of a *pristine*
    /// mapping — the largest magnitude any clean MVM can produce, before
    /// scaling by the activation quantization step. The executor uses it
    /// as an output-range sentinel: a faulted array (stuck-high cells,
    /// sign corruption) can push outputs past this bound, which clean
    /// silicon never does. `None` disables the sentinel.
    fn output_ceiling(&self) -> Option<f64> {
        None
    }
}

/// A [`CrossbarEngine`] whose mapped crossbars accept post-map fault
/// injection through a seeded [`FaultCampaign`], with the injected state
/// visible to `matvec_into` (the packed read tables are re-committed) and
/// reflected in [`health`](CrossbarEngine::health).
pub trait FaultableEngine: CrossbarEngine {
    /// Applies `campaign` to every crossbar of this layer. `salt`
    /// decorrelates layers and replicas; the same `(campaign, salt)`
    /// always injects the same faults.
    fn inject_faults(&mut self, campaign: &FaultCampaign, salt: u64) -> FaultReport;
}

/// Per-layer inputs to the frame-rate model (`forms_arch::FpsModel`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerPerf {
    /// Matrix-vector activations per image (conv: `out_h × out_w`;
    /// linear: 1).
    pub positions: usize,
    /// Physical crossbars the layer's weights occupy.
    pub crossbars: usize,
    /// Average input cycles per fragment activation (16 without
    /// zero-skipping; the measured mean EIC with it).
    pub input_cycles: f64,
}
