//! The crossbar engine abstraction: what a per-layer analog MVM backend
//! must provide for the generic [`Executor`](crate::Executor) to drive it.

use std::fmt;

use forms_tensor::Tensor;

use crate::error::ExecError;

/// Accumulation of per-MVM statistics records.
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// One weight layer mapped onto physical crossbars by some encoding scheme
/// (FORMS polarized magnitudes, ISAAC offset encoding, …).
///
/// The engine owns everything encoding-specific — how a matrix becomes
/// conductances, how an input bit stream becomes column currents and
/// digital codes, and what per-MVM costs to count. Everything
/// *network-level* (layer walk, im2col, activation quantization, batching,
/// stats registry) lives in the shared [`Executor`](crate::Executor).
///
/// Engines are immutable during inference (`matvec_into` takes `&self`),
/// which is what lets the executor's parallel batch path share one mapped
/// engine across worker threads instead of deep-cloning crossbar storage —
/// hence the `Sync` bound. All mutable per-MVM state lives in the engine's
/// [`Scratch`](Self::Scratch) buffer, owned by the caller and reused
/// across MVMs so the hot path allocates nothing.
pub trait CrossbarEngine: Clone + Send + Sync + fmt::Debug + Sized {
    /// Mapping-time configuration (crossbar dimension, cell spec, bit
    /// widths, …).
    type Config: Clone + Send + Sync + fmt::Debug;
    /// Per-MVM cost record.
    type Stats: Default + Copy + Merge + Send + fmt::Debug;
    /// Reusable per-MVM working memory (gathered codes, packed bit planes,
    /// raw currents, accumulators). `Default` must produce an empty scratch
    /// that any `matvec_into` call can grow to fit.
    type Scratch: Default + Send + fmt::Debug;

    /// Maps a `[rows, cols]` weight matrix onto crossbars.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] when the matrix cannot be represented
    /// under this engine's encoding (wrong rank, all zero, polarization
    /// violated, unsupported configuration).
    fn map_matrix(matrix: &Tensor, config: &Self::Config) -> Result<Self, ExecError>;

    /// Length of this layer's output vector (= original weight columns).
    fn output_len(&self) -> usize;

    /// Executes one matrix-vector product on quantized input codes
    /// (length = original rows) into a caller-owned output buffer of
    /// [`output_len`](Self::output_len) elements (overwritten), using
    /// caller-owned scratch. The allocation-free hot path: with a warm
    /// scratch, implementations must not allocate.
    fn matvec_into(
        &self,
        input_codes: &[u32],
        input_scale: f32,
        scratch: &mut Self::Scratch,
        out: &mut [f32],
    ) -> Self::Stats;

    /// Executes one matrix-vector product on quantized input codes
    /// (length = original rows), returning real-valued outputs (length =
    /// original columns) and the cost record of this MVM.
    ///
    /// A convenience wrapper over [`matvec_into`](Self::matvec_into) with
    /// one-shot scratch; batch loops should hold a scratch and call
    /// `matvec_into` directly.
    fn matvec(&self, input_codes: &[u32], input_scale: f32) -> (Vec<f32>, Self::Stats) {
        let mut scratch = Self::Scratch::default();
        let mut out = vec![0.0f32; self.output_len()];
        let stats = self.matvec_into(input_codes, input_scale, &mut scratch, &mut out);
        (out, stats)
    }

    /// Physical crossbars this layer occupies.
    fn crossbar_count(&self) -> usize;

    /// Mean input cycles per fragment/row-block activation recorded in
    /// `stats`, or `None` when the record holds no activations.
    fn mean_input_cycles(stats: &Self::Stats) -> Option<f64>;

    /// Input cycles per activation when nothing was measured — the input
    /// bit width (a design with zero-skipping never exceeds it).
    fn max_input_cycles(config: &Self::Config) -> f64;
}

/// Per-layer inputs to the frame-rate model (`forms_arch::FpsModel`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerPerf {
    /// Matrix-vector activations per image (conv: `out_h × out_w`;
    /// linear: 1).
    pub positions: usize,
    /// Physical crossbars the layer's weights occupy.
    pub crossbars: usize,
    /// Average input cycles per fragment activation (16 without
    /// zero-skipping; the measured mean EIC with it).
    pub input_cycles: f64,
}
