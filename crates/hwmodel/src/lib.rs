//! # forms-hwmodel
//!
//! Component-level area / power / timing models for the FORMS (ISCA 2021)
//! reproduction.
//!
//! The paper derives its architecture results from CACTI 7.0, NVSIM and a
//! Synopsys-synthesized skipping logic. None of those tools exist here, so
//! this crate implements *parametric analytical models anchored to the
//! component numbers the paper itself publishes* (Table III) together with
//! the paper's stated scaling rules (ADC cost grows ~exponentially with
//! resolution bits and linearly with sampling rate; sample-&-hold cost
//! scales with output levels; and so on). Everything downstream — the MCU,
//! tile and chip roll-ups of Tables III/IV and the throughput comparisons
//! of Table V — is arithmetic over these models.
//!
//! # Example
//!
//! ```
//! use forms_hwmodel::{AdcModel, McuConfig};
//!
//! let adc = AdcModel::default();
//! // An 8-bit ADC costs ~4x a 4-bit ADC at equal rate (paper §IV-C).
//! let ratio = adc.power_mw(8, 1.2) / adc.power_mw(4, 1.2);
//! assert!(ratio > 3.0 && ratio < 8.0);
//!
//! let forms = McuConfig::forms(8);
//! let isaac = McuConfig::isaac();
//! let (f, i) = (forms.cost(), isaac.cost());
//! // Iso-area design point: within ~10% of each other.
//! assert!((f.area_mm2 / i.area_mm2 - 1.0).abs() < 0.10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chip;
mod components;
mod edram;
mod energy;
mod mcu;
mod throughput;

pub use chip::{ChipCost, DadiannaoModel, TileCost, CHIP_TILES, MCUS_PER_TILE};
pub use components::{
    AdcModel, ComponentCost, CrossbarModel, DacModel, DigitalUnitModel, HyperTransportModel,
    RegistersModel, SampleHoldModel, ShiftAddModel, SignIndicatorModel, SkippingLogicModel,
};
pub use edram::{required_edram_kb, BufferRequirement};
pub use energy::{per_layer_energy_pj, Activity, DynamicActivity, EnergyModel};
pub use mcu::{McuConfig, McuCost};
pub use throughput::{
    published_comparators, ArchitectureThroughput, PublishedComparator, ThroughputModel,
};
