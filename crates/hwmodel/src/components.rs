//! Analytical cost models for the mixed-signal components.
//!
//! Each model is anchored to the two published design points of paper
//! Table III (the FORMS fragment-8 MCU and the ISAAC MCU) and interpolates
//! with the scaling law the paper states for that component. Power is in
//! milliwatts, area in mm² (32 nm, as in the paper).

/// Power and area of one component (or group of components).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct ComponentCost {
    /// Power in milliwatts.
    pub power_mw: f64,
    /// Area in mm².
    pub area_mm2: f64,
}

impl ComponentCost {
    /// Creates a cost.
    pub fn new(power_mw: f64, area_mm2: f64) -> Self {
        Self { power_mw, area_mm2 }
    }

    /// Component-wise sum.
    pub fn plus(self, other: ComponentCost) -> ComponentCost {
        ComponentCost {
            power_mw: self.power_mw + other.power_mw,
            area_mm2: self.area_mm2 + other.area_mm2,
        }
    }

    /// Scales both power and area by `n` instances.
    pub fn times(self, n: f64) -> ComponentCost {
        ComponentCost {
            power_mw: self.power_mw * n,
            area_mm2: self.area_mm2 * n,
        }
    }
}

/// Solves the 2×2 system `[a1 b1; a2 b2]·[x y]ᵀ = [c1 c2]ᵀ`, used to fit
/// two-parameter scaling laws through the paper's two published design
/// points.
fn solve2(a1: f64, b1: f64, c1: f64, a2: f64, b2: f64, c2: f64) -> (f64, f64) {
    let det = a1 * b2 - a2 * b1;
    assert!(det.abs() > 1e-12, "singular calibration system");
    ((c1 * b2 - c2 * b1) / det, (a1 * c2 - a2 * c1) / det)
}

/// SAR ADC cost model.
///
/// The paper scales "the memory, clock and vref buffer linearly and the
/// capacitive DAC exponentially" with resolution, and power linearly with
/// sampling rate. We therefore model per-ADC cost as
/// `(linear·bits + exp·2^bits) · f_GHz` for power and
/// `(linear·bits + exp·2^bits)` for area, calibrated so that the ISAAC
/// point (8-bit, 1.2 GHz: 2.0 mW, 1.2e-3 mm² each) and the FORMS point
/// (4-bit, 2.1 GHz: 0.475 mW, 2.84e-4 mm² each) from Table III are hit
/// exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdcModel {
    power_linear: f64,
    power_exp: f64,
    area_linear: f64,
    area_exp: f64,
}

impl Default for AdcModel {
    fn default() -> Self {
        // Table III anchors, per ADC: ISAAC has 8 ADCs totalling 16 mW /
        // 0.0096 mm²; FORMS has 32 totalling 15.2 mW / 0.0091 mm².
        let isaac_power = 16.0 / 8.0; // mW at 8-bit, 1.2 GHz
        let forms_power = 15.2 / 32.0; // mW at 4-bit, 2.1 GHz
        let (pl, pe) = solve2(8.0, 256.0, isaac_power / 1.2, 4.0, 16.0, forms_power / 2.1);
        let isaac_area = 0.0096 / 8.0;
        let forms_area = 0.0091 / 32.0;
        let (al, ae) = solve2(8.0, 256.0, isaac_area, 4.0, 16.0, forms_area);
        Self {
            power_linear: pl,
            power_exp: pe,
            area_linear: al,
            area_exp: ae,
        }
    }
}

impl AdcModel {
    /// Power of one ADC in mW at the given resolution and sampling rate.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or `freq_ghz` is not positive.
    pub fn power_mw(&self, bits: u32, freq_ghz: f64) -> f64 {
        assert!(bits > 0, "ADC resolution must be positive");
        assert!(freq_ghz > 0.0, "ADC frequency must be positive");
        (self.power_linear * bits as f64 + self.power_exp * (1u64 << bits) as f64) * freq_ghz
    }

    /// Area of one ADC in mm² at the given resolution.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn area_mm2(&self, bits: u32) -> f64 {
        assert!(bits > 0, "ADC resolution must be positive");
        self.area_linear * bits as f64 + self.area_exp * (1u64 << bits) as f64
    }

    /// Cost of `count` ADCs.
    pub fn cost(&self, bits: u32, freq_ghz: f64, count: usize) -> ComponentCost {
        ComponentCost::new(self.power_mw(bits, freq_ghz), self.area_mm2(bits)).times(count as f64)
    }
}

/// 1-bit DAC (an inverter driving the word line, ref. \[60\] in the paper):
/// constant per-unit cost from Table III (1024 DACs → 4 mW, 1.7e-4 mm²).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DacModel {
    per_unit: ComponentCost,
}

impl Default for DacModel {
    fn default() -> Self {
        Self {
            per_unit: ComponentCost::new(4.0 / 1024.0, 0.00017 / 1024.0),
        }
    }
}

impl DacModel {
    /// Cost of `count` 1-bit DACs.
    pub fn cost(&self, count: usize) -> ComponentCost {
        self.per_unit.times(count as f64)
    }
}

/// Sample-&-hold cost model: the paper notes the FORMS S&H is "almost 2×
/// smaller" because its ADC resolves 16 levels instead of 256, so cost
/// scales linearly with the *bits* of resolved levels. Calibrated to Table
/// III: 1024 units at 8-bit → 0.01 mW / 4.0e-5 mm²; at 4-bit → 0.0055 mW /
/// 2.3e-5 mm².
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SampleHoldModel {
    power_base: f64,
    power_per_bit: f64,
    area_base: f64,
    area_per_bit: f64,
}

impl Default for SampleHoldModel {
    fn default() -> Self {
        let (pb, pp) = solve2(1.0, 8.0, 0.01, 1.0, 4.0, 0.0055);
        let (ab, ap) = solve2(1.0, 8.0, 4.0e-5, 1.0, 4.0, 2.3e-5);
        Self {
            power_base: pb,
            power_per_bit: pp,
            area_base: ab,
            area_per_bit: ap,
        }
    }
}

impl SampleHoldModel {
    /// Cost of a group of `count` S&H circuits resolving `level_bits` bits,
    /// where the Table III anchors describe the whole 1024-unit group.
    ///
    /// # Panics
    ///
    /// Panics if `level_bits` is zero.
    pub fn cost(&self, level_bits: u32, count: usize) -> ComponentCost {
        assert!(level_bits > 0, "level bits must be positive");
        let b = level_bits as f64;
        ComponentCost::new(
            self.power_base + self.power_per_bit * b,
            self.area_base + self.area_per_bit * b,
        )
        .times(count as f64 / 1024.0)
    }
}

/// ReRAM crossbar array cost: per-cell constants from Table III
/// (8 × 128×128 arrays → 2.43 mW / 2.3e-4 mm² for ISAAC).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrossbarModel {
    power_per_cell: f64,
    area_per_cell: f64,
}

impl Default for CrossbarModel {
    fn default() -> Self {
        let cells = 8.0 * 128.0 * 128.0;
        Self {
            power_per_cell: 2.43 / cells,
            area_per_cell: 0.00023 / cells,
        }
    }
}

impl CrossbarModel {
    /// Cost of `count` crossbar arrays of `rows`×`cols` cells.
    pub fn cost(&self, rows: usize, cols: usize, count: usize) -> ComponentCost {
        let cells = (rows * cols * count) as f64;
        ComponentCost::new(self.power_per_cell * cells, self.area_per_cell * cells)
    }
}

/// Shift-&-add units: constants from Table III (4 units → 0.2 mW /
/// 2.4e-5 mm²).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShiftAddModel {
    per_unit: ComponentCost,
}

impl Default for ShiftAddModel {
    fn default() -> Self {
        Self {
            per_unit: ComponentCost::new(0.2 / 4.0, 0.000024 / 4.0),
        }
    }
}

impl ShiftAddModel {
    /// Cost of `count` shift-&-add units.
    pub fn cost(&self, count: usize) -> ComponentCost {
        self.per_unit.times(count as f64)
    }
}

/// The FORMS zero-skipping logic (NOR trees over the input shift registers
/// plus the fragment AND): synthesized cost from Table III, 0.01 mW /
/// 1e-7 mm² per MCU.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SkippingLogicModel {
    per_mcu: ComponentCost,
}

impl Default for SkippingLogicModel {
    fn default() -> Self {
        Self {
            per_mcu: ComponentCost::new(0.01, 0.0000001),
        }
    }
}

impl SkippingLogicModel {
    /// Cost per MCU.
    pub fn cost(&self) -> ComponentCost {
        self.per_mcu
    }
}

/// The FORMS 1R sign-indicator array storing one sign bit per fragment:
/// Table III, 0.012 mW / 3.1e-6 mm² per MCU at fragment size 8. Cost scales
/// with the number of fragments (halving the fragment size doubles the sign
/// bits).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SignIndicatorModel {
    per_mcu_frag8: ComponentCost,
}

impl Default for SignIndicatorModel {
    fn default() -> Self {
        Self {
            per_mcu_frag8: ComponentCost::new(0.012, 0.0000031),
        }
    }
}

impl SignIndicatorModel {
    /// Cost per MCU for a given fragment size.
    ///
    /// # Panics
    ///
    /// Panics if `fragment_size` is zero.
    pub fn cost(&self, fragment_size: usize) -> ComponentCost {
        assert!(fragment_size > 0, "fragment size must be positive");
        self.per_mcu_frag8.times(8.0 / fragment_size as f64)
    }
}

/// Per-MCU output registers and ADC-to-fragment interconnect. Table III
/// itemizes the converters and arrays only; the per-MCU totals implied by
/// Table IV (288.96 mW / 12 MCUs for ISAAC) include this extra ~1.45 mW /
/// 0.003 mm² of registers and routing, which we carry as a constant for
/// both designs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegistersModel {
    per_mcu: ComponentCost,
}

impl Default for RegistersModel {
    fn default() -> Self {
        Self {
            per_mcu: ComponentCost::new(1.45, 0.0030),
        }
    }
}

impl RegistersModel {
    /// Cost per MCU.
    pub fn cost(&self) -> ComponentCost {
        self.per_mcu
    }
}

/// The per-tile digital unit (shift-and-add tree, activation function,
/// output registers and eDRAM): Table IV anchors — FORMS 53.05 mW /
/// 0.25 mm² (128 KB eDRAM, 512-bit bus), ISAAC 40.85 mW / 0.213 mm²
/// (64 KB eDRAM, 256-bit bus).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DigitalUnitModel {
    base: ComponentCost,
    per_kb_edram: ComponentCost,
}

impl Default for DigitalUnitModel {
    fn default() -> Self {
        // Fit base + per-KB·edram_kb through the two anchors.
        let (pb, pk) = solve2(1.0, 64.0, 40.85, 1.0, 128.0, 53.05);
        let (ab, ak) = solve2(1.0, 64.0, 0.213, 1.0, 128.0, 0.25);
        Self {
            base: ComponentCost::new(pb, ab),
            per_kb_edram: ComponentCost::new(pk, ak),
        }
    }
}

impl DigitalUnitModel {
    /// Cost of one tile's digital unit with `edram_kb` of eDRAM.
    pub fn cost(&self, edram_kb: usize) -> ComponentCost {
        self.base.plus(self.per_kb_edram.times(edram_kb as f64))
    }
}

/// The off-chip HyperTransport serial link (shared by FORMS, ISAAC and
/// DaDianNao): Table IV, 10 400 mW / 22.88 mm² per chip.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HyperTransportModel {
    per_chip: ComponentCost,
}

impl Default for HyperTransportModel {
    fn default() -> Self {
        Self {
            per_chip: ComponentCost::new(10_400.0, 22.88),
        }
    }
}

impl HyperTransportModel {
    /// Cost per chip.
    pub fn cost(&self) -> ComponentCost {
        self.per_chip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_hits_published_anchors() {
        let adc = AdcModel::default();
        assert!((adc.cost(8, 1.2, 8).power_mw - 16.0).abs() < 1e-6);
        assert!((adc.cost(8, 1.2, 8).area_mm2 - 0.0096).abs() < 1e-9);
        assert!((adc.cost(4, 2.1, 32).power_mw - 15.2).abs() < 1e-6);
        assert!((adc.cost(4, 2.1, 32).area_mm2 - 0.0091).abs() < 1e-9);
    }

    #[test]
    fn adc_cost_grows_superlinearly_with_bits() {
        let adc = AdcModel::default();
        let p4 = adc.power_mw(4, 1.0);
        let p8 = adc.power_mw(8, 1.0);
        let p10 = adc.power_mw(10, 1.0);
        assert!(p8 / p4 > 2.0, "8-bit should cost >2× a 4-bit");
        assert!(
            p10 / p8 > 2.0,
            "exponential term should dominate at high bits"
        );
    }

    #[test]
    fn adc_power_linear_in_frequency() {
        let adc = AdcModel::default();
        let r = adc.power_mw(6, 2.0) / adc.power_mw(6, 1.0);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sample_hold_hits_anchors() {
        let sh = SampleHoldModel::default();
        let isaac = sh.cost(8, 1024);
        assert!((isaac.power_mw - 0.01).abs() < 1e-9);
        assert!((isaac.area_mm2 - 4.0e-5).abs() < 1e-12);
        let forms = sh.cost(4, 1024);
        assert!((forms.power_mw - 0.0055).abs() < 1e-9);
        assert!((forms.area_mm2 - 2.3e-5).abs() < 1e-12);
    }

    #[test]
    fn crossbar_cost_scales_with_cells() {
        let xb = CrossbarModel::default();
        let one = xb.cost(128, 128, 1);
        let eight = xb.cost(128, 128, 8);
        assert!((eight.power_mw / one.power_mw - 8.0).abs() < 1e-9);
        assert!((eight.power_mw - 2.43).abs() < 1e-9);
    }

    #[test]
    fn sign_indicator_scales_inverse_with_fragment_size() {
        let si = SignIndicatorModel::default();
        let f8 = si.cost(8);
        let f4 = si.cost(4);
        assert!((f4.power_mw / f8.power_mw - 2.0).abs() < 1e-9);
        assert!((f8.power_mw - 0.012).abs() < 1e-9);
    }

    #[test]
    fn digital_unit_hits_anchors() {
        let du = DigitalUnitModel::default();
        let isaac = du.cost(64);
        let forms = du.cost(128);
        assert!((isaac.power_mw - 40.85).abs() < 1e-6);
        assert!((forms.power_mw - 53.05).abs() < 1e-6);
        assert!((isaac.area_mm2 - 0.213).abs() < 1e-9);
        assert!((forms.area_mm2 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn component_cost_arithmetic() {
        let a = ComponentCost::new(1.0, 2.0);
        let b = ComponentCost::new(3.0, 4.0);
        let c = a.plus(b).times(2.0);
        assert_eq!(c, ComponentCost::new(8.0, 12.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn adc_rejects_zero_bits() {
        AdcModel::default().power_mw(0, 1.0);
    }
}
