//! MCU (in-situ multiply-accumulate unit) configuration and cost roll-up —
//! paper Table III and Fig. 11.

use crate::components::{
    AdcModel, ComponentCost, CrossbarModel, DacModel, RegistersModel, SampleHoldModel,
    ShiftAddModel, SignIndicatorModel, SkippingLogicModel,
};

/// Configuration of one MCU: eight crossbars plus converters and the FORMS
/// additions (zero-skipping logic, sign indicator).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McuConfig {
    /// Crossbar arrays per MCU (8 in both FORMS and ISAAC).
    pub crossbars: usize,
    /// Crossbar rows (= columns), 128.
    pub crossbar_dim: usize,
    /// Bits per ReRAM cell (2 in the paper's chosen design point).
    pub cell_bits: u32,
    /// ADC resolution in bits.
    pub adc_bits: u32,
    /// ADC sampling rate in GHz.
    pub adc_freq_ghz: f64,
    /// ADCs per crossbar (1 in ISAAC, 4 in FORMS).
    pub adcs_per_crossbar: usize,
    /// Crossbar sub-array rows (fragment size); `crossbar_dim` means
    /// coarse-grained whole-column operation (ISAAC).
    pub fragment_size: usize,
    /// Whether the MCU carries the FORMS zero-skipping logic.
    pub zero_skipping: bool,
    /// Whether the MCU carries the FORMS 1R sign-indicator array.
    pub sign_indicator: bool,
}

impl McuConfig {
    /// The FORMS MCU at a given fragment size. Per paper §IV-C the ADC
    /// resolution follows the fragment size: 3-bit for fragments of 4,
    /// 4-bit for 8, 5-bit for 16.
    ///
    /// # Panics
    ///
    /// Panics if `fragment_size` is not a positive divisor of 128.
    pub fn forms(fragment_size: usize) -> Self {
        assert!(
            fragment_size > 0 && 128 % fragment_size == 0,
            "fragment size must divide the crossbar dimension"
        );
        // ADC must resolve fragment_size rows × (2^cell_bits - 1) levels:
        // ceil(log2(fragment_size)) + cell_bits − 1 bits ≈ the paper's
        // 3/4/5-bit ladder for fragments of 4/8/16.
        let adc_bits = (usize::BITS - (fragment_size - 1).leading_zeros()) + 1;
        // Iso-area frequency ladder through the two published SAR points
        // (8-bit @ 1.2 GHz, 4-bit @ 2.1 GHz): smaller ADCs run faster.
        let adc_freq_ghz = 3.0 - 0.225 * adc_bits as f64;
        Self {
            crossbars: 8,
            crossbar_dim: 128,
            cell_bits: 2,
            adc_bits,
            adc_freq_ghz,
            adcs_per_crossbar: 4,
            fragment_size,
            zero_skipping: true,
            sign_indicator: true,
        }
    }

    /// The ISAAC MCU (paper Table III right half): one shared 8-bit
    /// 1.2 GHz ADC per crossbar, coarse-grained 128-row operation.
    pub fn isaac() -> Self {
        Self {
            crossbars: 8,
            crossbar_dim: 128,
            cell_bits: 2,
            adc_bits: 8,
            adc_freq_ghz: 1.2,
            adcs_per_crossbar: 1,
            fragment_size: 128,
            zero_skipping: false,
            sign_indicator: false,
        }
    }

    /// The same MCU with the ADC resolution overridden — the per-layer
    /// knob of a mixed-precision plan. The sampling frequency follows the
    /// iso-area SAR ladder (smaller ADCs run faster), matching how
    /// [`forms`](Self::forms) sizes its converters.
    ///
    /// # Panics
    ///
    /// Panics if `adc_bits` is outside `1..=12` (past 12 bits the linear
    /// frequency ladder would go non-positive; no design point in the
    /// paper comes close).
    pub fn with_adc_bits(self, adc_bits: u32) -> Self {
        assert!(
            (1..=12).contains(&adc_bits),
            "ADC resolution must be in 1..=12 bits, got {adc_bits}"
        );
        Self {
            adc_bits,
            adc_freq_ghz: 3.0 - 0.225 * f64::from(adc_bits),
            ..self
        }
    }

    /// Total ADCs in the MCU.
    pub fn adc_count(&self) -> usize {
        self.crossbars * self.adcs_per_crossbar
    }

    /// Total 1-bit DACs (one per crossbar row).
    pub fn dac_count(&self) -> usize {
        self.crossbars * self.crossbar_dim
    }

    /// Time for the ADCs of one crossbar to convert all of its columns once
    /// (the architecture's cycle time), in nanoseconds — paper §IV-C:
    /// ISAAC 128 / 1.2 GHz ≈ 106.6 ns; FORMS (128/4) / 2.1 GHz ≈ 15 ns.
    pub fn conversion_cycle_ns(&self) -> f64 {
        let cols_per_adc = self.crossbar_dim as f64 / self.adcs_per_crossbar as f64;
        cols_per_adc / self.adc_freq_ghz
    }

    /// Cost of one MCU with this configuration, including the itemized
    /// breakdown of Table III.
    pub fn cost(&self) -> McuCost {
        let adc = AdcModel::default();
        let dac = DacModel::default();
        let sh = SampleHoldModel::default();
        let xbar = CrossbarModel::default();
        let sa = ShiftAddModel::default();
        let skip = SkippingLogicModel::default();
        let sign = SignIndicatorModel::default();

        let mut items = vec![
            (
                "ADC",
                adc.cost(self.adc_bits, self.adc_freq_ghz, self.adc_count()),
            ),
            ("DAC", dac.cost(self.dac_count())),
            ("S&H", sh.cost(self.adc_bits, self.dac_count())),
            (
                "crossbar array",
                xbar.cost(self.crossbar_dim, self.crossbar_dim, self.crossbars),
            ),
            ("S+A", sa.cost(4)),
            ("registers & routing", RegistersModel::default().cost()),
        ];
        if self.zero_skipping {
            items.push(("skipping logic", skip.cost()));
        }
        if self.sign_indicator {
            items.push(("sign indicator", sign.cost(self.fragment_size)));
        }
        let total = items
            .iter()
            .fold(ComponentCost::default(), |acc, (_, c)| acc.plus(*c));
        McuCost {
            breakdown: items,
            power_mw: total.power_mw,
            area_mm2: total.area_mm2,
        }
    }
}

/// Itemized cost of one MCU.
#[derive(Clone, Debug, PartialEq)]
pub struct McuCost {
    /// `(component name, cost)` in Table III order.
    pub breakdown: Vec<(&'static str, ComponentCost)>,
    /// Total power in mW.
    pub power_mw: f64,
    /// Total area in mm².
    pub area_mm2: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forms_adc_ladder_matches_paper() {
        // §IV-C: fragments of 16, 8, 4 use 5-, 4-, 3-bit ADCs.
        assert_eq!(McuConfig::forms(4).adc_bits, 3);
        assert_eq!(McuConfig::forms(8).adc_bits, 4);
        assert_eq!(McuConfig::forms(16).adc_bits, 5);
    }

    #[test]
    fn cycle_times_match_paper() {
        assert!((McuConfig::isaac().conversion_cycle_ns() - 106.6).abs() < 0.1);
        assert!((McuConfig::forms(8).conversion_cycle_ns() - 15.24).abs() < 0.1);
    }

    #[test]
    fn forms_mcu_near_isaac_cost() {
        // Table III/IV: FORMS MCU is within a few percent of ISAAC
        // (iso-area design).
        let f = McuConfig::forms(8).cost();
        let i = McuConfig::isaac().cost();
        assert!(
            (f.power_mw / i.power_mw - 1.0).abs() < 0.05,
            "power {} vs {}",
            f.power_mw,
            i.power_mw
        );
        assert!(
            (f.area_mm2 / i.area_mm2 - 1.0).abs() < 0.10,
            "area {} vs {}",
            f.area_mm2,
            i.area_mm2
        );
    }

    #[test]
    fn isaac_mcu_matches_table_iii_total() {
        // Table IV implies 288.96 mW / 12 = 24.08 mW per ISAAC MCU.
        let i = McuConfig::isaac().cost();
        assert!((i.power_mw - 24.08).abs() < 0.1, "power {}", i.power_mw);
    }

    #[test]
    fn forms_extras_present_only_in_forms() {
        let f = McuConfig::forms(8).cost();
        let i = McuConfig::isaac().cost();
        let names = |c: &McuCost| c.breakdown.iter().map(|(n, _)| *n).collect::<Vec<_>>();
        assert!(names(&f).contains(&"skipping logic"));
        assert!(names(&f).contains(&"sign indicator"));
        assert!(!names(&i).contains(&"skipping logic"));
        assert!(!names(&i).contains(&"sign indicator"));
    }

    #[test]
    fn adc_dominates_isaac_mcu_power() {
        // The paper's motivation: ADCs are the major power contributor.
        let i = McuConfig::isaac().cost();
        let adc = i
            .breakdown
            .iter()
            .find(|(n, _)| *n == "ADC")
            .unwrap()
            .1
            .power_mw;
        assert!(adc / i.power_mw > 0.5);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn forms_rejects_non_divisor_fragment() {
        McuConfig::forms(3);
    }
}
