//! Activity-based energy accounting.
//!
//! The power numbers of Tables III/IV are *peak* figures; what zero-skipping
//! actually saves is *dynamic energy* — every skipped input cycle is a DAC
//! drive, a crossbar read and an ADC conversion that never happen. This
//! model converts the calibrated component powers into per-event energies
//! (energy = power / event rate) and charges them against an activity
//! record, so the simulator's cycle statistics translate directly into
//! joules.

use crate::components::{AdcModel, CrossbarModel, DacModel, SampleHoldModel, ShiftAddModel};
use crate::mcu::McuConfig;

/// Dynamic activity of a workload, in simulator-countable events.
///
/// `forms-arch`'s `MvmStats` converts into this (cycles → DAC drives and
/// crossbar row activations; conversions → ADC events).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Activity {
    /// Input shift cycles (each drives the fragment's DACs and activates
    /// its crossbar rows once).
    pub shift_cycles: u64,
    /// ADC conversions.
    pub adc_conversions: u64,
    /// Rows active per shift cycle (the fragment size).
    pub rows_per_cycle: u64,
    /// Columns read per conversion group (cells per weight × columns).
    pub cells_per_conversion: u64,
    /// Shift-&-add operations (≈ one per conversion).
    pub shift_add_ops: u64,
}

/// Per-event energies in picojoules, derived from a [`McuConfig`]'s
/// calibrated component powers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    adc_pj_per_conversion: f64,
    dac_pj_per_drive: f64,
    cell_pj_per_read: f64,
    sh_pj_per_sample: f64,
    sa_pj_per_op: f64,
}

impl EnergyModel {
    /// Derives per-event energies from an MCU configuration: each
    /// component's power divided by its event rate at full activity.
    pub fn from_mcu(config: &McuConfig) -> Self {
        let adc = AdcModel::default();
        // One conversion per ADC clock.
        let adc_pj_per_conversion =
            adc.power_mw(config.adc_bits, config.adc_freq_ghz) / config.adc_freq_ghz;
        // DACs toggle once per conversion cycle.
        let cycle_ns = config.conversion_cycle_ns();
        let dac_group = DacModel::default().cost(1024);
        let dac_pj_per_drive = dac_group.power_mw / 1024.0 * cycle_ns;
        // Crossbar read power is per cell; a cell is read for one cycle.
        let xbar = CrossbarModel::default().cost(1, 1, 1);
        let cell_pj_per_read = xbar.power_mw * cycle_ns;
        let sh_group = SampleHoldModel::default().cost(config.adc_bits, 1024);
        let sh_pj_per_sample = sh_group.power_mw / 1024.0 * cycle_ns;
        let sa = ShiftAddModel::default().cost(1);
        let sa_pj_per_op = sa.power_mw * cycle_ns;
        Self {
            adc_pj_per_conversion,
            dac_pj_per_drive,
            cell_pj_per_read,
            sh_pj_per_sample,
            sa_pj_per_op,
        }
    }

    /// Energy per ADC conversion in pJ.
    pub fn adc_pj_per_conversion(&self) -> f64 {
        self.adc_pj_per_conversion
    }

    /// Total dynamic energy of an activity record, in picojoules.
    pub fn energy_pj(&self, activity: &Activity) -> f64 {
        let dac =
            activity.shift_cycles as f64 * activity.rows_per_cycle as f64 * self.dac_pj_per_drive;
        let cells = activity.shift_cycles as f64
            * activity.rows_per_cycle as f64
            * activity.cells_per_conversion as f64
            * self.cell_pj_per_read;
        let adc =
            activity.adc_conversions as f64 * (self.adc_pj_per_conversion + self.sh_pj_per_sample);
        let sa = activity.shift_add_ops as f64 * self.sa_pj_per_op;
        dac + cells + adc + sa
    }

    /// Energy in microjoules.
    pub fn energy_uj(&self, activity: &Activity) -> f64 {
        self.energy_pj(activity) * 1e-6
    }
}

/// Anything whose recorded work converts into an [`Activity`] record — the
/// single seam through which every crossbar engine's statistics (FORMS
/// `MvmStats`, ISAAC `IsaacStats`, …) reach the energy model, so the
/// comparative experiments charge both designs through the same formula.
pub trait DynamicActivity {
    /// The dynamic activity this record represents.
    fn activity(&self) -> Activity;

    /// Dynamic energy on an MCU configuration, in picojoules.
    fn energy_pj(&self, mcu: &McuConfig) -> f64 {
        EnergyModel::from_mcu(mcu).energy_pj(&self.activity())
    }

    /// Dynamic energy on an MCU configuration, in microjoules.
    fn energy_uj(&self, mcu: &McuConfig) -> f64 {
        self.energy_pj(mcu) * 1e-6
    }
}

/// Dynamic energy of each layer of a mixed-precision deployment, in
/// picojoules: layer `i`'s activity record is charged against its *own*
/// MCU configuration (its per-layer ADC resolution from the precision
/// plan), instead of one network-wide converter size.
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn per_layer_energy_pj<A: DynamicActivity>(layers: &[A], mcus: &[McuConfig]) -> Vec<f64> {
    assert_eq!(
        layers.len(),
        mcus.len(),
        "need one MCU configuration per layer activity record"
    );
    layers
        .iter()
        .zip(mcus)
        .map(|(layer, mcu)| EnergyModel::from_mcu(mcu).energy_pj(&layer.activity()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity(cycles: u64, conversions: u64) -> Activity {
        Activity {
            shift_cycles: cycles,
            adc_conversions: conversions,
            rows_per_cycle: 8,
            cells_per_conversion: 4,
            shift_add_ops: conversions,
        }
    }

    #[test]
    fn energy_scales_linearly_with_activity() {
        let m = EnergyModel::from_mcu(&McuConfig::forms(8));
        let e1 = m.energy_pj(&activity(100, 400));
        let e2 = m.energy_pj(&activity(200, 800));
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_activity_is_free() {
        let m = EnergyModel::from_mcu(&McuConfig::forms(8));
        assert_eq!(m.energy_pj(&Activity::default()), 0.0);
    }

    #[test]
    fn skipped_cycles_save_energy() {
        // Zero-skipping at mean EIC 10.7/16 must save roughly the same
        // fraction of the cycle-proportional energy.
        let m = EnergyModel::from_mcu(&McuConfig::forms(8));
        let full = m.energy_pj(&activity(1600, 6400));
        let skipped = m.energy_pj(&activity(1070, 4280));
        let ratio = skipped / full;
        assert!((ratio - 10.7 / 16.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn forms_adc_event_cheaper_than_isaac() {
        // 4-bit conversions cost less energy than 8-bit ones — the
        // iso-area argument in energy form.
        let forms = EnergyModel::from_mcu(&McuConfig::forms(8));
        let isaac = EnergyModel::from_mcu(&McuConfig::isaac());
        assert!(forms.adc_pj_per_conversion() < isaac.adc_pj_per_conversion());
    }

    #[test]
    fn dynamic_activity_trait_matches_direct_model() {
        struct Fixed(Activity);
        impl DynamicActivity for Fixed {
            fn activity(&self) -> Activity {
                self.0
            }
        }
        let mcu = McuConfig::forms(8);
        let record = Fixed(activity(100, 400));
        let direct = EnergyModel::from_mcu(&mcu).energy_pj(&activity(100, 400));
        assert_eq!(record.energy_pj(&mcu), direct);
        assert_eq!(record.energy_uj(&mcu), direct * 1e-6);
    }

    #[test]
    fn per_layer_energy_charges_each_layer_its_own_adc() {
        struct Fixed(Activity);
        impl DynamicActivity for Fixed {
            fn activity(&self) -> Activity {
                self.0
            }
        }
        let base = McuConfig::forms(8);
        // Same activity in both layers, but layer 1's plan narrowed its
        // ADC: its conversions must come out cheaper.
        let layers = [Fixed(activity(100, 400)), Fixed(activity(100, 400))];
        let mcus = [base, base.with_adc_bits(2)];
        let e = per_layer_energy_pj(&layers, &mcus);
        assert_eq!(e.len(), 2);
        assert!(e[1] < e[0], "narrower ADC must cost less: {e:?}");
        // And each entry matches a direct single-layer evaluation.
        assert_eq!(e[0], layers[0].energy_pj(&base));
    }

    #[test]
    #[should_panic(expected = "one MCU configuration per layer")]
    fn per_layer_energy_rejects_mismatched_lengths() {
        struct Fixed;
        impl DynamicActivity for Fixed {
            fn activity(&self) -> Activity {
                Activity::default()
            }
        }
        per_layer_energy_pj(&[Fixed], &[]);
    }

    #[test]
    fn adc_dominates_per_conversion_costs() {
        // Consistent with the paper's power breakdown: the ADC is the
        // dominant per-event consumer.
        let m = EnergyModel::from_mcu(&McuConfig::isaac());
        let adc_only = m.energy_pj(&Activity {
            adc_conversions: 1,
            ..Default::default()
        });
        let one_cycle = m.energy_pj(&Activity {
            shift_cycles: 1,
            rows_per_cycle: 1,
            cells_per_conversion: 1,
            ..Default::default()
        });
        assert!(adc_only > one_cycle);
    }
}
