//! eDRAM buffer sizing (paper §V-B: FORMS uses 128 KB of eDRAM and a
//! 512-bit bus against ISAAC's 64 KB / 256-bit, because it finishes more
//! results per unit time; §IV-C: "due to the small fragment size, the
//! buffer size required for storing intermediate results between layers is
//! decreased").
//!
//! The model computes the working set a tile must buffer — the input rows a
//! layer still needs plus the partial output rows it has produced — and
//! checks it against a capacity, reproducing the sizing arithmetic behind
//! the paper's 64/128 KB choices.

/// One layer's buffering requirement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferRequirement {
    /// Bytes of input activations that must stay resident (the sliding
    /// window of rows the convolution still reads).
    pub input_bytes: usize,
    /// Bytes of output activations buffered before the next layer consumes
    /// them.
    pub output_bytes: usize,
}

impl BufferRequirement {
    /// Working set for a conv layer on `width × width` feature maps with
    /// `in_channels`/`out_channels`, `kernel` rows of input lookahead and
    /// `bytes_per_value` activations.
    ///
    /// The input side needs `kernel` rows of every input channel (the rows
    /// the next output row reads); the output side buffers one row of every
    /// output channel until the next layer's stride consumes it.
    pub fn conv(
        width: usize,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        bytes_per_value: usize,
    ) -> Self {
        Self {
            input_bytes: kernel * width * in_channels * bytes_per_value,
            output_bytes: width * out_channels * bytes_per_value,
        }
    }

    /// Total bytes.
    pub fn total(&self) -> usize {
        self.input_bytes + self.output_bytes
    }

    /// Whether the requirement fits a capacity in KB.
    pub fn fits_kb(&self, kb: usize) -> bool {
        self.total() <= kb * 1024
    }
}

/// Sizes the per-tile eDRAM for a set of layer requirements: the maximum
/// working set, rounded up to the next power-of-two KB (how memories are
/// actually provisioned).
pub fn required_edram_kb(requirements: &[BufferRequirement]) -> usize {
    let worst = requirements
        .iter()
        .map(BufferRequirement::total)
        .max()
        .unwrap_or(0);
    let kb = worst.div_ceil(1024).max(1);
    kb.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_requirement_arithmetic() {
        // 32-wide maps, 64→128 channels, 3×3 kernel, 2-byte activations:
        // input 3·32·64·2 = 12288 B, output 32·128·2 = 8192 B.
        let r = BufferRequirement::conv(32, 64, 128, 3, 2);
        assert_eq!(r.input_bytes, 12_288);
        assert_eq!(r.output_bytes, 8_192);
        assert_eq!(r.total(), 20_480);
        assert!(r.fits_kb(64));
        assert!(!r.fits_kb(16));
    }

    #[test]
    fn sizing_rounds_to_power_of_two() {
        let reqs = [
            BufferRequirement::conv(32, 64, 128, 3, 2),
            BufferRequirement::conv(16, 128, 256, 3, 2),
        ];
        let kb = required_edram_kb(&reqs);
        assert!(kb.is_power_of_two());
        assert!(kb * 1024 >= reqs.iter().map(BufferRequirement::total).max().unwrap());
    }

    #[test]
    fn isaac_class_layers_fit_the_paper_capacities() {
        // A heavy CIFAR VGG stage (conv4: 512→512 at 4×4) fits 64 KB; the
        // doubled-throughput FORMS tile budget of 128 KB covers twice the
        // in-flight rows.
        let isaac = BufferRequirement::conv(4, 512, 512, 3, 2);
        assert!(isaac.fits_kb(64));
        let forms_double = BufferRequirement {
            input_bytes: isaac.input_bytes * 2,
            output_bytes: isaac.output_bytes * 2,
        };
        assert!(forms_double.fits_kb(128));
    }

    #[test]
    fn empty_requirements_need_minimal_memory() {
        assert_eq!(required_edram_kb(&[]), 1);
    }
}
