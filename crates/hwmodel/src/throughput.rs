//! Peak-throughput and efficiency models — paper Table V.
//!
//! The model follows the paper's own arithmetic (§IV-C): a crossbar
//! matrix-vector multiply activates `crossbar_dim / fragment_size` row
//! groups sequentially, feeds `input_cycles` input bits per group (16
//! without zero-skipping, the measured average EIC with it), and each bit
//! takes one ADC conversion cycle. Model-level optimizations (pruning and
//! quantization) multiply *effective* throughput by the crossbar-reduction
//! factor, exactly as the paper's "Pruned/Quantized-ISAAC" rows do.

use crate::chip::ChipCost;
use crate::mcu::McuConfig;
use crate::{CHIP_TILES, MCUS_PER_TILE};

/// Throughput model for one architecture configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputModel {
    /// The MCU configuration (fragment size, ADC ladder, cycle time).
    pub mcu: McuConfig,
    /// Average input cycles per row-group activation: 16 for 16-bit inputs
    /// without zero-skipping, the measured mean EIC with it.
    pub input_cycles: f64,
    /// Weight precision in bits (16 for the uncompressed models, 8 after
    /// FORMS quantization).
    pub weight_bits: u32,
    /// Model-compression factor from pruning/quantization/polarization
    /// (crossbar reduction); 1.0 for uncompressed models.
    pub model_compression: f64,
}

impl ThroughputModel {
    /// An uncompressed model on the given MCU with full 16-bit input feeds.
    pub fn baseline(mcu: McuConfig) -> Self {
        Self {
            mcu,
            input_cycles: 16.0,
            weight_bits: 16,
            model_compression: 1.0,
        }
    }

    /// ReRAM cells per weight.
    fn cells_per_weight(&self) -> usize {
        self.weight_bits.div_ceil(self.mcu.cell_bits) as usize
    }

    /// Weights stored along one crossbar row.
    pub fn weights_per_row(&self) -> usize {
        self.mcu.crossbar_dim / self.cells_per_weight()
    }

    /// Nanoseconds for one full-crossbar matrix-vector multiply: row groups
    /// × input cycles × conversion cycle.
    pub fn mvm_time_ns(&self) -> f64 {
        let groups = (self.mcu.crossbar_dim / self.mcu.fragment_size) as f64;
        groups * self.input_cycles * self.mcu.conversion_cycle_ns()
    }

    /// Operations (multiply + add = 2 ops) performed by one full-crossbar
    /// MVM.
    pub fn mvm_ops(&self) -> f64 {
        (self.mcu.crossbar_dim * self.weights_per_row() * 2) as f64
    }

    /// Peak chip throughput in GOPS (ops are counted at the stored weight
    /// precision).
    pub fn peak_gops(&self) -> f64 {
        let crossbars = (self.mcu.crossbars * MCUS_PER_TILE * CHIP_TILES) as f64;
        crossbars * self.mvm_ops() / self.mvm_time_ns()
    }

    /// Effective throughput including model compression: a pruned/quantized
    /// model finishes `model_compression×` more *model* operations per
    /// stored operation.
    pub fn effective_gops(&self) -> f64 {
        self.peak_gops() * self.model_compression
    }

    /// Effective throughput metrics for this configuration's chip.
    pub fn throughput(&self) -> ArchitectureThroughput {
        let chip = ChipCost::for_mcu(&self.mcu).total;
        let gops = self.effective_gops();
        ArchitectureThroughput {
            gops,
            gops_per_mm2: gops / chip.area_mm2,
            gops_per_watt: gops / (chip.power_mw / 1000.0),
        }
    }
}

/// Absolute throughput/efficiency numbers for one architecture.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArchitectureThroughput {
    /// Effective GOPS.
    pub gops: f64,
    /// GOPs per second per mm².
    pub gops_per_mm2: f64,
    /// GOPs per watt.
    pub gops_per_watt: f64,
}

impl ArchitectureThroughput {
    /// Both efficiency metrics normalized to a reference architecture
    /// (Table V normalizes to ISAAC). Returns `(area_eff, power_eff)`.
    pub fn normalized_to(&self, reference: &ArchitectureThroughput) -> (f64, f64) {
        (
            self.gops_per_mm2 / reference.gops_per_mm2,
            self.gops_per_watt / reference.gops_per_watt,
        )
    }
}

/// A comparator whose efficiency the paper carries as a published constant
/// (normalized to ISAAC): DaDianNao, PUMA, TPU, WAX, SIMBA.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PublishedComparator {
    /// Architecture name.
    pub name: &'static str,
    /// GOPs/s·mm² relative to ISAAC.
    pub area_efficiency: f64,
    /// GOPs/W relative to ISAAC (midpoint for SIMBA's published range).
    pub power_efficiency: f64,
}

/// The published comparator rows of Table V.
pub fn published_comparators() -> Vec<PublishedComparator> {
    vec![
        PublishedComparator {
            name: "DaDianNao",
            area_efficiency: 0.13,
            power_efficiency: 0.45,
        },
        PublishedComparator {
            name: "PUMA",
            area_efficiency: 0.70,
            power_efficiency: 0.79,
        },
        PublishedComparator {
            name: "TPU",
            area_efficiency: 0.08,
            power_efficiency: 0.48,
        },
        PublishedComparator {
            name: "WAX",
            area_efficiency: 0.33,
            power_efficiency: 2.3,
        },
        PublishedComparator {
            name: "SIMBA",
            area_efficiency: 0.34,
            power_efficiency: 1.29, // midpoint of the published 0.08–2.5
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isaac() -> ThroughputModel {
        ThroughputModel::baseline(McuConfig::isaac())
    }

    fn forms(fragment: usize) -> ThroughputModel {
        ThroughputModel::baseline(McuConfig::forms(fragment))
    }

    #[test]
    fn isaac_mvm_time_matches_paper_arithmetic() {
        // 1 group × 16 bits × 106.6 ns ≈ 1.7 µs.
        let t = isaac().mvm_time_ns();
        assert!((t - 1706.6).abs() < 2.0, "mvm time {t}");
    }

    #[test]
    fn polarization_only_forms_is_slower_than_isaac() {
        // Table V: FORMS (polarization only) at fragment 8 ≈ 0.54× ISAAC,
        // fragment 16 ≈ 0.77× — fine-grained operation costs raw
        // throughput; zero-skipping and compression win it back.
        let i = isaac().throughput();
        let f8 = forms(8).throughput();
        let f16 = forms(16).throughput();
        let (a8, _) = f8.normalized_to(&i);
        let (a16, _) = f16.normalized_to(&i);
        assert!(a8 < 1.0, "fragment 8 should lose raw throughput ({a8})");
        assert!(a16 < 1.0, "fragment 16 should lose raw throughput ({a16})");
        assert!(
            a16 > a8,
            "larger fragments should be faster ({a8} vs {a16})"
        );
        assert!(a8 > 0.25 && a8 < 0.85, "fragment 8 out of band: {a8}");
    }

    #[test]
    fn zero_skipping_scales_throughput_inversely_with_eic() {
        let full = forms(8);
        let skipped = ThroughputModel {
            input_cycles: 10.7, // paper Fig. 8(b) average for fragment 4-8
            ..full
        };
        let speedup = skipped.throughput().gops / full.throughput().gops;
        assert!((speedup - 16.0 / 10.7).abs() < 1e-6);
    }

    #[test]
    fn compression_multiplies_effective_throughput() {
        let base = isaac();
        let compressed = ThroughputModel {
            model_compression: 26.4,
            ..base
        };
        let r = compressed.effective_gops() / base.effective_gops();
        assert!((r - 26.4).abs() < 1e-9);
    }

    #[test]
    fn quantized_weights_double_weights_per_row() {
        let base = forms(8);
        let quant = ThroughputModel {
            weight_bits: 8,
            ..base
        };
        assert_eq!(base.weights_per_row(), 16);
        assert_eq!(quant.weights_per_row(), 32);
    }

    #[test]
    fn full_forms_beats_pruned_isaac() {
        // Table V ordering: FORMS (full optimization) > Pruned/Quantized
        // ISAAC > ISAAC.
        let i = isaac().throughput();
        let pruned_isaac = ThroughputModel {
            model_compression: 13.2, // prune×quant reduction
            weight_bits: 8,
            ..isaac()
        }
        .throughput();
        let full_forms = ThroughputModel {
            input_cycles: 10.7,
            weight_bits: 8,
            model_compression: 26.4, // prune×quant×polarization
            ..forms(8)
        }
        .throughput();
        let (pi, _) = pruned_isaac.normalized_to(&i);
        let (ff, _) = full_forms.normalized_to(&i);
        assert!(pi > 1.0);
        assert!(ff > pi, "FORMS full opt {ff} should beat pruned ISAAC {pi}");
    }

    #[test]
    fn published_comparators_are_ordered_as_in_table_v() {
        let c = published_comparators();
        let get = |n: &str| c.iter().find(|p| p.name == n).unwrap();
        assert!(get("PUMA").area_efficiency > get("DaDianNao").area_efficiency);
        assert!(get("DaDianNao").area_efficiency > get("TPU").area_efficiency);
        assert!(get("WAX").power_efficiency > 1.0);
    }
}
