//! Tile- and chip-level cost roll-ups — paper Table IV.

use crate::components::{ComponentCost, DigitalUnitModel, HyperTransportModel};
use crate::mcu::McuConfig;

/// MCUs per tile in both FORMS and ISAAC.
pub const MCUS_PER_TILE: usize = 12;

/// Tiles per chip in both FORMS and ISAAC.
pub const CHIP_TILES: usize = 168;

/// Cost of one tile: 12 MCUs plus the digital unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TileCost {
    /// Cost of the 12 MCUs.
    pub mcus: ComponentCost,
    /// Cost of the digital unit (incl. eDRAM).
    pub digital: ComponentCost,
    /// Tile total.
    pub total: ComponentCost,
}

impl TileCost {
    /// Rolls up one tile for an MCU configuration. FORMS tiles carry 128 KB
    /// of eDRAM (they finish more results per unit time), ISAAC tiles 64 KB
    /// (paper §V-B).
    pub fn for_mcu(config: &McuConfig) -> Self {
        let edram_kb = if config.zero_skipping { 128 } else { 64 };
        let mcus = {
            let c = config.cost();
            ComponentCost::new(c.power_mw, c.area_mm2).times(MCUS_PER_TILE as f64)
        };
        let digital = DigitalUnitModel::default().cost(edram_kb);
        TileCost {
            mcus,
            digital,
            total: mcus.plus(digital),
        }
    }
}

/// Cost of one chip: 168 tiles plus the HyperTransport link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChipCost {
    /// All tiles.
    pub tiles: ComponentCost,
    /// Off-chip link.
    pub hyper_transport: ComponentCost,
    /// Chip total.
    pub total: ComponentCost,
}

impl ChipCost {
    /// Rolls up a full chip for an MCU configuration.
    pub fn for_mcu(config: &McuConfig) -> Self {
        let tile = TileCost::for_mcu(config);
        let tiles = tile.total.times(CHIP_TILES as f64);
        let hyper_transport = HyperTransportModel::default().cost();
        ChipCost {
            tiles,
            hyper_transport,
            total: tiles.plus(hyper_transport),
        }
    }
}

/// The fully digital DaDianNao comparator (paper Table IV, scaled from
/// 28 nm to 32 nm by the authors). Constants are carried as published.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DadiannaoModel {
    /// Neural functional units (16).
    pub nfu: ComponentCost,
    /// 36 MB of eDRAM (4 per tile).
    pub edram: ComponentCost,
    /// 128-bit global bus.
    pub global_bus: ComponentCost,
    /// HyperTransport link.
    pub hyper_transport: ComponentCost,
}

impl Default for DadiannaoModel {
    fn default() -> Self {
        Self {
            nfu: ComponentCost::new(4886.0, 16.09),
            edram: ComponentCost::new(4760.0, 33.12),
            global_bus: ComponentCost::new(12.8, 15.66),
            hyper_transport: HyperTransportModel::default().cost(),
        }
    }
}

impl DadiannaoModel {
    /// Chip total.
    pub fn total(&self) -> ComponentCost {
        self.nfu
            .plus(self.edram)
            .plus(self.global_bus)
            .plus(self.hyper_transport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isaac_chip_matches_table_iv() {
        // Paper Table IV: ISAAC chip ≈ 65.8 W, 85.1 mm².
        let chip = ChipCost::for_mcu(&McuConfig::isaac());
        assert!(
            (chip.total.power_mw - 65808.0).abs() / 65808.0 < 0.03,
            "power {}",
            chip.total.power_mw
        );
        assert!(
            (chip.total.area_mm2 - 85.09).abs() / 85.09 < 0.05,
            "area {}",
            chip.total.area_mm2
        );
    }

    #[test]
    fn forms_chip_matches_table_iv() {
        // Paper Table IV: FORMS chip ≈ 66.4 W, 89.2 mm² — within ~0.1% power
        // and ~4.5% area of ISAAC.
        let forms = ChipCost::for_mcu(&McuConfig::forms(8));
        let isaac = ChipCost::for_mcu(&McuConfig::isaac());
        let dp = (forms.total.power_mw / isaac.total.power_mw - 1.0).abs();
        let da = (forms.total.area_mm2 / isaac.total.area_mm2 - 1.0).abs();
        // (Table IV's own tile area entries do not sum exactly — 0.152 +
        // 0.25 ≠ 0.39 — so we allow a slightly wider band on area.)
        assert!(dp < 0.02, "power delta {dp}");
        assert!(da < 0.08, "area delta {da}");
    }

    #[test]
    fn dadiannao_totals_match_table_iv() {
        let d = DadiannaoModel::default().total();
        assert!((d.power_mw - 20_058.8).abs() < 1.0, "power {}", d.power_mw);
        assert!((d.area_mm2 - 87.75).abs() < 0.1, "area {}", d.area_mm2);
    }

    #[test]
    fn forms_tile_near_isaac_tile() {
        let f = TileCost::for_mcu(&McuConfig::forms(8));
        let i = TileCost::for_mcu(&McuConfig::isaac());
        assert!((f.total.power_mw / i.total.power_mw - 1.0).abs() < 0.05);
    }

    #[test]
    fn reram_chips_burn_more_power_than_dadiannao() {
        // Paper: "in return for consuming more area and power compared with
        // DaDianNao, the throughput of FORMS is increased significantly".
        let forms = ChipCost::for_mcu(&McuConfig::forms(8));
        let dd = DadiannaoModel::default().total();
        assert!(forms.total.power_mw > dd.power_mw);
    }
}
