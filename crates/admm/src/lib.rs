//! # forms-admm
//!
//! The FORMS hardware-aware optimization framework (paper §III): ADMM-
//! regularized training that jointly enforces
//!
//! 1. **crossbar-aware structured pruning** — filter and filter-shape
//!    pruning with keep counts aligned to the crossbar dimension,
//! 2. **fragment polarization** — all weights mapped to one crossbar
//!    sub-array column share a sign (the paper's key novelty),
//! 3. **ReRAM-customized quantization** — weights restricted to a uniform
//!    grid matching the resolution of multi-bit ReRAM cells.
//!
//! Each constraint set has an exact Euclidean projection ([`project_all`]
//! and friends), and [`AdmmTrainer`] runs the two-subproblem iteration of
//! paper Eq. (4)–(6) around any [`forms_dnn::Network`].
//!
//! # Example
//!
//! ```
//! use forms_admm::{fragment_signs, project_polarization};
//! use forms_tensor::Tensor;
//!
//! // A 4-row, 1-column weight matrix = one fragment of size 4.
//! let w = Tensor::from_vec(vec![0.5, -0.1, 0.3, -0.2], &[4, 1]);
//! let signs = fragment_signs(&w, 4);
//! assert_eq!(signs, vec![true]); // sum = 0.5 ≥ 0 → positive fragment
//! let z = project_polarization(&w, 4, &signs);
//! assert_eq!(z.data(), &[0.5, 0.0, 0.3, 0.0]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compression;
mod constraints;
mod diagnostics;
mod fragment;
mod projections;
mod sensitivity;
mod trainer;

pub use compression::{CompressionSummary, LayerCompression};
pub use constraints::{crossbar_aware_keep, LayerConstraints, PolarizeSpec, PruneSpec, QuantSpec};
pub use diagnostics::{ResidualTrace, Residuals};
pub use forms_exec::{LayerPrecision, PrecisionPlan};
pub use fragment::{fragment_count, row_permutation, FilterGeometry, PolarizationPolicy};
pub use projections::{
    active_rows, fragment_signs, polarization_violations, project_all, project_polarization,
    project_quantization, project_structured_pruning, quantization_step,
};
pub use sensitivity::{
    plan_from_sensitivity, recommend_keeps, sensitivity_sweep, LayerSensitivity,
};
pub use trainer::{AdmmConfig, AdmmReport, AdmmTrainer};
