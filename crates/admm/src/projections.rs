//! Euclidean projections onto the three FORMS constraint sets
//! (paper Eq. (6): `Z = Π(W + U)`).
//!
//! All projections operate on the lowered 2-D weight matrix of paper Fig. 2:
//! shape `[rows, cols]`, where each column is one filter (or output neuron)
//! and rows are filter-shape positions, already reordered by the
//! polarization policy's row permutation.

use forms_tensor::Tensor;

use crate::constraints::LayerConstraints;

/// Fragment signs per paper Eq. (2): positive iff the fragment sum is ≥ 0.
///
/// Fragments are consecutive `fragment_size`-row chunks of each column,
/// column by column; the returned vector has
/// `cols * ceil(rows / fragment_size)` entries, fragments of column 0 first.
///
/// # Panics
///
/// Panics if `matrix` is not rank-2 or `fragment_size` is zero.
pub fn fragment_signs(matrix: &Tensor, fragment_size: usize) -> Vec<bool> {
    assert_eq!(matrix.shape().rank(), 2, "expected a [rows, cols] matrix");
    assert!(fragment_size > 0, "fragment size must be positive");
    let cols = matrix.dims()[1];
    let active = active_rows(matrix);
    let frags_per_col = active.len().div_ceil(fragment_size).max(1);
    let mut signs = Vec::with_capacity(cols * frags_per_col);
    for col in 0..cols {
        for chunk in active.chunks(fragment_size) {
            let sum: f32 = chunk.iter().map(|&r| matrix.data()[r * cols + col]).sum();
            signs.push(sum >= 0.0);
        }
        if active.is_empty() {
            signs.push(true);
        }
    }
    signs
}

/// Rows that survive structural pruning: rows with at least one non-zero
/// entry. Fragments are formed over these rows only, mirroring the paper's
/// pipeline where pruning removes rows *before* the pruned model is divided
/// into fragments (Fig. 1).
pub fn active_rows(matrix: &Tensor) -> Vec<usize> {
    let (rows, cols) = (matrix.dims()[0], matrix.dims()[1]);
    (0..rows)
        .filter(|&r| {
            matrix.data()[r * cols..(r + 1) * cols]
                .iter()
                .any(|&v| v != 0.0)
        })
        .collect()
}

/// Projects onto the fragment-polarization set **P** (paper §III-D2): every
/// weight whose sign disagrees with its fragment's target sign is set to
/// zero (the closest point with the required sign pattern).
///
/// `signs` must come from [`fragment_signs`] (or the trainer's cached copy)
/// with the same `fragment_size`.
///
/// # Panics
///
/// Panics if shapes disagree with the sign vector.
pub fn project_polarization(matrix: &Tensor, fragment_size: usize, signs: &[bool]) -> Tensor {
    assert_eq!(matrix.shape().rank(), 2, "expected a [rows, cols] matrix");
    let cols = matrix.dims()[1];
    let active = active_rows(matrix);
    let frags_per_col = active.len().div_ceil(fragment_size).max(1);
    assert_eq!(
        signs.len(),
        cols * frags_per_col,
        "sign vector length mismatch"
    );
    let mut out = matrix.clone();
    for col in 0..cols {
        for (frag, chunk) in active.chunks(fragment_size).enumerate() {
            let positive = signs[col * frags_per_col + frag];
            for &r in chunk {
                let v = &mut out.data_mut()[r * cols + col];
                if (positive && *v < 0.0) || (!positive && *v > 0.0) {
                    *v = 0.0;
                }
            }
        }
    }
    out
}

/// Counts weights whose sign violates the fragment polarization pattern
/// implied by the *current* fragment signs — 0 means the matrix is exactly
/// polarized.
pub fn polarization_violations(matrix: &Tensor, fragment_size: usize) -> usize {
    let signs = fragment_signs(matrix, fragment_size);
    let cols = matrix.dims()[1];
    let active = active_rows(matrix);
    let frags_per_col = active.len().div_ceil(fragment_size).max(1);
    let mut violations = 0;
    for col in 0..cols {
        for (frag, chunk) in active.chunks(fragment_size).enumerate() {
            let positive = signs[col * frags_per_col + frag];
            for &r in chunk {
                let v = matrix.data()[r * cols + col];
                if (positive && v < 0.0) || (!positive && v > 0.0) {
                    violations += 1;
                }
            }
        }
    }
    violations
}

/// Projects onto the structured-pruning set **S** (paper §III-D1): keeps the
/// `keep_cols` filters (columns) and `keep_rows` filter-shapes (rows) with
/// the largest L2 norms and zeroes the rest — the Euclidean projection onto
/// "at most α columns and β rows are non-zero".
///
/// # Panics
///
/// Panics if the keep counts exceed the matrix dimensions.
#[allow(clippy::needless_range_loop)] // several arrays are co-indexed
pub fn project_structured_pruning(matrix: &Tensor, keep_rows: usize, keep_cols: usize) -> Tensor {
    assert_eq!(matrix.shape().rank(), 2, "expected a [rows, cols] matrix");
    let (rows, cols) = (matrix.dims()[0], matrix.dims()[1]);
    assert!(keep_rows <= rows, "keep_rows {keep_rows} > rows {rows}");
    assert!(keep_cols <= cols, "keep_cols {keep_cols} > cols {cols}");
    let col_norm = |c: usize| -> f32 {
        (0..rows)
            .map(|r| {
                let v = matrix.data()[r * cols + c];
                v * v
            })
            .sum()
    };
    let row_norm = |r: usize| -> f32 {
        matrix.data()[r * cols..(r + 1) * cols]
            .iter()
            .map(|v| v * v)
            .sum()
    };
    let keep_mask = |n: usize, keep: usize, norm: &dyn Fn(usize) -> f32| -> Vec<bool> {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            norm(b)
                .partial_cmp(&norm(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut mask = vec![false; n];
        for &i in order.iter().take(keep) {
            mask[i] = true;
        }
        mask
    };
    let col_mask = keep_mask(cols, keep_cols, &col_norm);
    let row_mask = keep_mask(rows, keep_rows, &row_norm);
    let mut out = matrix.clone();
    for r in 0..rows {
        for c in 0..cols {
            if !row_mask[r] || !col_mask[c] {
                out.data_mut()[r * cols + c] = 0.0;
            }
        }
    }
    out
}

/// The quantization step for a symmetric uniform grid with `bits` bits:
/// `step = max|w| / (2^(bits-1) - 1)`, so codes span `[-(2^(b-1)-1), …,
/// 2^(b-1)-1]` — the grid realisable with sign-magnitude weights on
/// multi-bit ReRAM cells (paper §III-C).
///
/// Returns 1.0 for an all-zero tensor (any step quantizes zeros exactly).
///
/// # Panics
///
/// Panics if `bits < 2` (one magnitude bit plus sign is the minimum).
pub fn quantization_step(matrix: &Tensor, bits: u32) -> f32 {
    assert!(bits >= 2, "need at least 2 bits, got {bits}");
    let max = matrix.abs_max();
    let levels = (1u32 << (bits - 1)) - 1;
    if max > 0.0 {
        max / levels as f32
    } else {
        1.0
    }
}

/// Projects onto the quantization set **Q** (paper §III-D3): rounds every
/// weight to the nearest multiple of `step`, saturating at
/// `±(2^(bits-1)-1)·step`.
///
/// # Panics
///
/// Panics if `bits < 2` or `step` is not positive.
pub fn project_quantization(matrix: &Tensor, step: f32, bits: u32) -> Tensor {
    assert!(bits >= 2, "need at least 2 bits, got {bits}");
    assert!(step > 0.0 && step.is_finite(), "step must be positive");
    let levels = ((1u32 << (bits - 1)) - 1) as f32;
    matrix.map(|v| {
        let code = (v / step).round().clamp(-levels, levels);
        code * step
    })
}

/// Applies every constraint in `constraints`, in the paper's order
/// (prune → polarize → quantize), to a lowered weight matrix.
///
/// `signs` supplies the polarization targets when polarization is enabled
/// (`None` recomputes them from the input, matching the start-of-phase
/// behaviour in §III-B).
///
/// # Panics
///
/// Panics if a supplied sign vector has the wrong length.
pub fn project_all(
    matrix: &Tensor,
    constraints: &LayerConstraints,
    signs: Option<&[bool]>,
) -> Tensor {
    let mut z = matrix.clone();
    if let Some(prune) = &constraints.prune {
        let (rows, cols) = (z.dims()[0], z.dims()[1]);
        z = project_structured_pruning(&z, prune.keep_rows(rows), prune.keep_cols(cols));
    }
    if let Some(pol) = &constraints.polarize {
        let expected = z.dims()[1] * active_rows(&z).len().div_ceil(pol.fragment_size).max(1);
        // Cached signs are only valid while the pruning pattern (and hence
        // the fragment structure) is unchanged; when pruning shifts rows
        // between sign updates, re-derive the signs, as the paper does when
        // it re-evaluates signs from the current weights. Zeroing can
        // retire whole rows and re-shape the fragments, so the projection
        // iterates until the sign pattern is exactly satisfied.
        let mut pass = 0usize;
        loop {
            let s = match (signs, pass) {
                (Some(s), 0) if s.len() == expected => s.to_vec(),
                _ => fragment_signs(&z, pol.fragment_size),
            };
            z = project_polarization(&z, pol.fragment_size, &s);
            pass += 1;
            if polarization_violations(&z, pol.fragment_size) == 0 || pass > 64 {
                break;
            }
        }
    }
    if let Some(quant) = &constraints.quantize {
        let step = quantization_step(&z, quant.bits);
        z = project_quantization(&z, step, quant.bits);
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{PolarizeSpec, PruneSpec, QuantSpec};
    use crate::PolarizationPolicy;

    fn m(data: Vec<f32>, rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(data, &[rows, cols])
    }

    #[test]
    fn signs_follow_fragment_sums() {
        // Column 0: fragments [1,-2] (sum -1 → neg), [3,4] (pos).
        let w = m(vec![1.0, -2.0, 3.0, 4.0], 4, 1);
        assert_eq!(fragment_signs(&w, 2), vec![false, true]);
    }

    #[test]
    fn sign_tie_is_positive() {
        let w = m(vec![1.0, -1.0], 2, 1);
        assert_eq!(fragment_signs(&w, 2), vec![true]);
    }

    #[test]
    fn polarization_zeroes_minority_sign() {
        let w = m(vec![1.0, -2.0, 3.0, 4.0], 4, 1);
        let signs = fragment_signs(&w, 2);
        let z = project_polarization(&w, 2, &signs);
        // Fragment 0 negative → +1 dropped; fragment 1 positive → unchanged.
        assert_eq!(z.data(), &[0.0, -2.0, 3.0, 4.0]);
    }

    #[test]
    fn polarization_projection_is_idempotent() {
        let w = m(vec![0.3, -0.4, 0.1, 0.9, -0.8, 0.05], 3, 2);
        let signs = fragment_signs(&w, 3);
        let z = project_polarization(&w, 3, &signs);
        let z2 = project_polarization(&z, 3, &signs);
        assert_eq!(z, z2);
    }

    #[test]
    fn polarized_matrix_has_no_violations() {
        let w = m(vec![0.3, -0.4, 0.1, 0.9, -0.8, 0.05, 0.2, -0.6], 4, 2);
        let signs = fragment_signs(&w, 2);
        let z = project_polarization(&w, 2, &signs);
        assert_eq!(polarization_violations(&z, 2), 0);
    }

    #[test]
    fn partial_last_fragment_is_handled() {
        let w = m(vec![1.0, 2.0, -5.0], 3, 1); // fragment size 2: [1,2] and [-5]
        let signs = fragment_signs(&w, 2);
        assert_eq!(signs, vec![true, false]);
        let z = project_polarization(&w, 2, &signs);
        assert_eq!(z.data(), &[1.0, 2.0, -5.0]);
    }

    #[test]
    fn pruning_keeps_largest_groups() {
        // 2 rows × 3 cols; col norms: c0 small, c1 big, c2 medium.
        let w = m(vec![0.1, 3.0, 1.0, 0.1, 3.0, 1.0], 2, 3);
        let z = project_structured_pruning(&w, 2, 2);
        assert_eq!(z.data(), &[0.0, 3.0, 1.0, 0.0, 3.0, 1.0]);
    }

    #[test]
    fn pruning_rows_and_cols_compose() {
        let w = m(vec![5.0, 0.2, 0.1, 0.1, 4.0, 0.1, 0.1, 0.1, 0.1], 3, 3);
        let z = project_structured_pruning(&w, 2, 2);
        // Rows 0,1 and cols 0,1 survive.
        assert_eq!(z.get(&[2, 0]), 0.0);
        assert_eq!(z.get(&[0, 2]), 0.0);
        assert_eq!(z.get(&[0, 0]), 5.0);
        assert_eq!(z.get(&[1, 1]), 4.0);
    }

    #[test]
    fn pruning_projection_is_idempotent() {
        let w = m(vec![5.0, 0.2, 0.1, 0.1, 4.0, 0.1, 0.1, 0.1, 0.1], 3, 3);
        let z = project_structured_pruning(&w, 2, 2);
        assert_eq!(project_structured_pruning(&z, 2, 2), z);
    }

    #[test]
    fn quantization_rounds_to_grid() {
        let w = m(vec![0.0, 0.3, -0.9, 1.0], 4, 1);
        let step = quantization_step(&w, 3); // 3 bits → 3 levels → step 1/3
        let z = project_quantization(&w, step, 3);
        for &v in z.data() {
            let code = v / step;
            assert!((code - code.round()).abs() < 1e-6, "off grid: {v}");
        }
        assert_eq!(z.data()[3], 1.0); // max maps to top level exactly
    }

    #[test]
    fn quantization_is_idempotent() {
        let w = m(vec![0.11, -0.72, 0.55, 0.98], 4, 1);
        let step = quantization_step(&w, 4);
        let z = project_quantization(&w, step, 4);
        assert_eq!(project_quantization(&z, step, 4), z);
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let w = m((0..32).map(|i| (i as f32 * 0.77).sin()).collect(), 32, 1);
        let step = quantization_step(&w, 8);
        let z = project_quantization(&w, step, 8);
        assert!(w.max_abs_diff(&z) <= step / 2.0 + 1e-6);
    }

    #[test]
    fn quantization_of_zero_matrix() {
        let w = Tensor::zeros(&[4, 1]);
        let step = quantization_step(&w, 8);
        let z = project_quantization(&w, step, 8);
        assert_eq!(z, w);
    }

    #[test]
    fn project_all_satisfies_every_constraint() {
        let w = m(
            (0..64)
                .map(|i| ((i * 37 % 64) as f32 / 32.0) - 1.0)
                .collect(),
            8,
            8,
        );
        let constraints = LayerConstraints {
            prune: Some(PruneSpec {
                shape_keep: 0.5,
                filter_keep: 0.75,
            }),
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            quantize: Some(QuantSpec { bits: 4 }),
        };
        let z = project_all(&w, &constraints, None);
        // Pruning: at most 4 rows, 6 cols non-zero.
        let (rows, cols) = (8, 8);
        let nz_rows = (0..rows)
            .filter(|&r| (0..cols).any(|c| z.get(&[r, c]) != 0.0))
            .count();
        let nz_cols = (0..cols)
            .filter(|&c| (0..rows).any(|r| z.get(&[r, c]) != 0.0))
            .count();
        assert!(nz_rows <= 4, "rows {nz_rows}");
        assert!(nz_cols <= 6, "cols {nz_cols}");
        // Polarization: no violations.
        assert_eq!(polarization_violations(&z, 4), 0);
        // Quantization: on a uniform grid.
        let step = quantization_step(&z, 4);
        for &v in z.data() {
            assert!(((v / step) - (v / step).round()).abs() < 1e-5);
        }
    }
}
