//! Compression accounting for Tables I and II.
//!
//! Converts the sparsity pattern of a compressed network into the paper's
//! headline metrics: per-layer prune ratios and the end-to-end *crossbar
//! reduction* relative to the uncompressed baseline mapped with the
//! splitting scheme (positive/negative crossbar pairs, ref. \[41\] in the
//! paper).

use forms_dnn::{Network, WeightLayerMut};

/// Compression metrics of one weight layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerCompression {
    /// Rows of the lowered weight matrix (filter-shape positions).
    pub rows: usize,
    /// Columns of the lowered weight matrix (filters / output neurons).
    pub cols: usize,
    /// Rows with at least one non-zero weight.
    pub nonzero_rows: usize,
    /// Columns with at least one non-zero weight.
    pub nonzero_cols: usize,
    /// Non-zero weights.
    pub nonzero_weights: usize,
}

impl LayerCompression {
    /// Weight prune ratio of this layer (total / non-zero structure),
    /// computed from the surviving rows × columns as in structured pruning.
    pub fn prune_ratio(&self) -> f32 {
        let kept = (self.nonzero_rows * self.nonzero_cols).max(1);
        (self.rows * self.cols) as f32 / kept as f32
    }
}

/// Whole-network compression summary.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressionSummary {
    /// Per-layer metrics in weight-layer visit order.
    pub layers: Vec<LayerCompression>,
    /// Baseline weight bits (the paper's uncompressed models are 32-bit).
    pub baseline_bits: u32,
    /// Compressed weight bits (the paper evaluates 8-bit).
    pub compressed_bits: u32,
    /// ReRAM cell resolution in bits (the paper uses 2-bit cells).
    pub cell_bits: u32,
    /// Physical crossbar dimension (the paper uses 128×128).
    pub crossbar_dim: usize,
}

impl CompressionSummary {
    /// Measures a network's current sparsity structure.
    ///
    /// `baseline_bits`/`compressed_bits` describe the quantization change
    /// (32 → 8 in the paper), `cell_bits` the ReRAM resolution, and
    /// `crossbar_dim` the physical array dimension.
    pub fn measure(
        net: &mut Network,
        baseline_bits: u32,
        compressed_bits: u32,
        cell_bits: u32,
        crossbar_dim: usize,
    ) -> Self {
        assert!(cell_bits > 0, "cell bits must be positive");
        assert!(crossbar_dim > 0, "crossbar dimension must be positive");
        let mut layers = Vec::new();
        net.for_each_weight_layer(&mut |wl| {
            let m = match wl {
                WeightLayerMut::Conv(c) => c.weight_matrix(),
                WeightLayerMut::Linear(l) => l.weight_matrix(),
            };
            let (rows, cols) = (m.dims()[0], m.dims()[1]);
            let nz = |r: usize, c: usize| m.data()[r * cols + c] != 0.0;
            let nonzero_rows = (0..rows).filter(|&r| (0..cols).any(|c| nz(r, c))).count();
            let nonzero_cols = (0..cols).filter(|&c| (0..rows).any(|r| nz(r, c))).count();
            layers.push(LayerCompression {
                rows,
                cols,
                nonzero_rows,
                nonzero_cols,
                nonzero_weights: m.count_nonzero(),
            });
        });
        Self {
            layers,
            baseline_bits,
            compressed_bits,
            cell_bits,
            crossbar_dim,
        }
    }

    /// Overall weight prune ratio (total weights / structurally surviving
    /// weights).
    pub fn prune_ratio(&self) -> f32 {
        let total: usize = self.layers.iter().map(|l| l.rows * l.cols).sum();
        let kept: usize = self
            .layers
            .iter()
            .map(|l| (l.nonzero_rows * l.nonzero_cols).max(1))
            .sum();
        total as f32 / kept as f32
    }

    /// ReRAM cells per weight for a bit width (ceil(bits / cell_bits)).
    fn cells_per_weight(&self, bits: u32) -> usize {
        bits.div_ceil(self.cell_bits) as usize
    }

    /// Crossbars needed to map one layer of `rows`×`cols` weights at `bits`
    /// bits per weight, with `split` = 2 for the positive/negative splitting
    /// scheme and 1 for FORMS' polarized magnitude-only mapping.
    fn layer_crossbars(&self, rows: usize, cols: usize, bits: u32, split: usize) -> usize {
        let cells_cols = cols * self.cells_per_weight(bits);
        rows.div_ceil(self.crossbar_dim) * cells_cols.div_ceil(self.crossbar_dim) * split
    }

    /// Total crossbars for the uncompressed baseline: full matrices at
    /// `baseline_bits`, mapped with the splitting scheme (2 crossbars).
    pub fn baseline_crossbars(&self) -> usize {
        self.layers
            .iter()
            .map(|l| self.layer_crossbars(l.rows, l.cols, self.baseline_bits, 2))
            .sum()
    }

    /// Total crossbars for the compressed, polarized model: surviving
    /// rows/columns at `compressed_bits`, magnitude-only (1 crossbar).
    pub fn compressed_crossbars(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                self.layer_crossbars(
                    l.nonzero_rows.max(1),
                    l.nonzero_cols.max(1),
                    self.compressed_bits,
                    1,
                )
            })
            .sum()
    }

    /// The paper's headline *crossbar reduction*:
    /// baseline crossbars / compressed crossbars.
    pub fn crossbar_reduction(&self) -> f32 {
        self.baseline_crossbars() as f32 / self.compressed_crossbars().max(1) as f32
    }

    /// The analytic decomposition the paper quotes (e.g. "23.18× from
    /// pruning, 4× from quantization, 2× from polarization"): returns
    /// (prune, quantization, polarization) factors whose product
    /// approximates [`crossbar_reduction`](Self::crossbar_reduction) when
    /// layers are large relative to the crossbar.
    pub fn reduction_factors(&self) -> (f32, f32, f32) {
        let quant = self.cells_per_weight(self.baseline_bits) as f32
            / self.cells_per_weight(self.compressed_bits) as f32;
        (self.prune_ratio(), quant, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_dnn::{Layer, Network};
    use forms_rng::StdRng;
    use forms_tensor::Tensor;

    fn net_with_zeroed_half() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Network::new(vec![Layer::linear(&mut rng, 8, 8)]);
        // Zero half the rows and half the columns of the lowered matrix.
        net.for_each_weight_layer(&mut |wl| {
            if let WeightLayerMut::Linear(l) = wl {
                let mut m = l.weight_matrix();
                let (rows, cols) = (m.dims()[0], m.dims()[1]);
                for r in 0..rows {
                    for c in 0..cols {
                        if r >= rows / 2 || c >= cols / 2 {
                            m.data_mut()[r * cols + c] = 0.0;
                        }
                    }
                }
                l.set_weight_matrix(&m);
            }
        });
        net
    }

    #[test]
    fn measures_structural_sparsity() {
        let mut net = net_with_zeroed_half();
        let s = CompressionSummary::measure(&mut net, 32, 8, 2, 128);
        assert_eq!(s.layers.len(), 1);
        assert_eq!(s.layers[0].nonzero_rows, 4);
        assert_eq!(s.layers[0].nonzero_cols, 4);
        assert!((s.prune_ratio() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn crossbar_reduction_combines_three_factors() {
        // A layer that fills crossbars densely: 256 rows, 128 cols.
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Network::new(vec![Layer::linear(&mut rng, 256, 128)]);
        let s = CompressionSummary::measure(&mut net, 32, 8, 2, 128);
        // Baseline: rows 2 × cols ceil(128*16/128)=16 × 2 = 64 crossbars.
        assert_eq!(s.baseline_crossbars(), 64);
        // Compressed (no pruning): 2 × ceil(128*4/128)=4 × 1 = 8 crossbars.
        assert_eq!(s.compressed_crossbars(), 8);
        assert!((s.crossbar_reduction() - 8.0).abs() < 1e-6);
        // Factors: prune 1×, quant 4×, polarization 2× → product 8×.
        let (p, q, pol) = s.reduction_factors();
        assert!((p - 1.0).abs() < 1e-6);
        assert!((q - 4.0).abs() < 1e-6);
        assert!((pol - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_column_layer_does_not_divide_by_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Network::new(vec![Layer::linear(&mut rng, 4, 4)]);
        net.for_each_weight_layer(&mut |wl| {
            if let WeightLayerMut::Linear(l) = wl {
                l.set_weight_matrix(&Tensor::zeros(&[4, 4]));
            }
        });
        let s = CompressionSummary::measure(&mut net, 32, 8, 2, 128);
        assert!(s.crossbar_reduction() > 0.0);
    }
}
