//! Per-layer constraint specifications (the sets **S**, **P**, **Q** of
//! paper Eq. (1)).

use crate::PolarizationPolicy;

/// Crossbar-aware structured pruning targets for one layer
/// (paper §III-A / §III-D1).
///
/// `filter_keep` is the paper's `α` (fraction of non-zero filters, i.e.
/// columns of the lowered matrix) and `shape_keep` is `β` (fraction of
/// non-zero filter-shape rows).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PruneSpec {
    /// Fraction of filter-shape rows to keep, `β ∈ (0, 1]`.
    pub shape_keep: f32,
    /// Fraction of filters (columns) to keep, `α ∈ (0, 1]`.
    pub filter_keep: f32,
}

impl PruneSpec {
    /// Keep-everything spec.
    pub fn none() -> Self {
        Self {
            shape_keep: 1.0,
            filter_keep: 1.0,
        }
    }

    /// Number of rows kept for a matrix with `rows` rows (at least 1).
    pub fn keep_rows(&self, rows: usize) -> usize {
        keep_count(rows, self.shape_keep)
    }

    /// Number of columns kept for a matrix with `cols` columns (at least 1).
    pub fn keep_cols(&self, cols: usize) -> usize {
        keep_count(cols, self.filter_keep)
    }

    /// The overall weight keep fraction (`α · β`).
    pub fn keep_fraction(&self) -> f32 {
        self.shape_keep * self.filter_keep
    }

    /// The paper-style prune *ratio* (e.g. `4×` means keeping a quarter of
    /// the weights).
    pub fn prune_ratio(&self) -> f32 {
        1.0 / self.keep_fraction()
    }
}

fn keep_count(n: usize, frac: f32) -> usize {
    assert!(
        (0.0..=1.0).contains(&frac),
        "keep fraction must be in (0, 1], got {frac}"
    );
    ((n as f32 * frac).round() as usize).clamp(1, n)
}

/// Fragment polarization spec for one layer (paper §III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolarizeSpec {
    /// Rows per crossbar sub-array (= weights per fragment), typically 4, 8
    /// or 16.
    pub fragment_size: usize,
    /// Linearisation order of filter weights.
    pub policy: PolarizationPolicy,
}

/// ReRAM-customized quantization spec (paper §III-C): weights restricted to
/// a symmetric uniform grid of `bits` total bits, where `bits` should be a
/// multiple of the per-cell resolution (2-bit cells → even `bits`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuantSpec {
    /// Total weight bits (sign + magnitude), e.g. 8.
    pub bits: u32,
}

/// All constraints applied to one weight layer.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct LayerConstraints {
    /// Structured pruning, if enabled.
    pub prune: Option<PruneSpec>,
    /// Fragment polarization, if enabled.
    pub polarize: Option<PolarizeSpec>,
    /// Quantization, if enabled.
    pub quantize: Option<QuantSpec>,
}

impl LayerConstraints {
    /// No constraints (plain training).
    pub fn unconstrained() -> Self {
        Self::default()
    }

    /// The paper's full optimization stack with uniform hyperparameters.
    pub fn full(
        shape_keep: f32,
        filter_keep: f32,
        fragment_size: usize,
        policy: PolarizationPolicy,
        bits: u32,
    ) -> Self {
        Self {
            prune: Some(PruneSpec {
                shape_keep,
                filter_keep,
            }),
            polarize: Some(PolarizeSpec {
                fragment_size,
                policy,
            }),
            quantize: Some(QuantSpec { bits }),
        }
    }
}

/// Crossbar-aware adjustment of a keep count (paper §III-A): pruned
/// rows/columns only save hardware in multiples of the crossbar dimension,
/// so *keep more weights* until the stored count sits exactly on a crossbar
/// boundary — same crossbar count, strictly less accuracy risk.
///
/// Returns the adjusted keep count in `[desired_keep, total]`.
///
/// # Examples
///
/// ```
/// use forms_admm::crossbar_aware_keep;
///
/// // 300 rows, want to keep 100, crossbar dimension 128: 100 kept rows
/// // still occupy one 128-row crossbar, so keep 128 instead.
/// assert_eq!(crossbar_aware_keep(300, 100, 128), 128);
/// // Keeping 140 already needs two crossbars (256 rows of capacity);
/// // round up to use them fully — but never beyond the total.
/// assert_eq!(crossbar_aware_keep(300, 140, 128), 256);
/// assert_eq!(crossbar_aware_keep(200, 140, 128), 200);
/// ```
///
/// # Panics
///
/// Panics if `crossbar_dim` is zero or `desired_keep > total`.
pub fn crossbar_aware_keep(total: usize, desired_keep: usize, crossbar_dim: usize) -> usize {
    assert!(crossbar_dim > 0, "crossbar dimension must be positive");
    assert!(
        desired_keep <= total,
        "desired keep {desired_keep} exceeds total {total}"
    );
    if desired_keep == 0 {
        return 0;
    }
    let crossbars = desired_keep.div_ceil(crossbar_dim);
    (crossbars * crossbar_dim).min(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_counts_round_and_clamp() {
        let p = PruneSpec {
            shape_keep: 0.38,
            filter_keep: 0.57,
        };
        assert_eq!(p.keep_rows(100), 38);
        assert_eq!(p.keep_cols(100), 57);
        assert_eq!(p.keep_rows(1), 1); // never below 1
    }

    #[test]
    fn prune_ratio_matches_paper_example() {
        // Paper §III-D1: α=0.57, β=0.38 for 43% filter / 62% shape sparsity.
        let p = PruneSpec {
            shape_keep: 0.38,
            filter_keep: 0.57,
        };
        assert!((p.keep_fraction() - 0.2166).abs() < 1e-4);
        assert!((p.prune_ratio() - 4.6168).abs() < 1e-3);
    }

    #[test]
    fn crossbar_aware_keep_rounds_to_boundary() {
        assert_eq!(crossbar_aware_keep(256, 1, 128), 128);
        assert_eq!(crossbar_aware_keep(256, 128, 128), 128);
        assert_eq!(crossbar_aware_keep(256, 129, 128), 256);
        assert_eq!(crossbar_aware_keep(256, 0, 128), 0);
    }

    #[test]
    fn crossbar_aware_keep_never_exceeds_total() {
        assert_eq!(crossbar_aware_keep(100, 90, 128), 100);
    }

    #[test]
    fn full_constraints_populate_all_sets() {
        let c = LayerConstraints::full(0.5, 0.5, 8, PolarizationPolicy::CMajor, 8);
        assert!(c.prune.is_some() && c.polarize.is_some() && c.quantize.is_some());
        assert_eq!(c.polarize.unwrap().fragment_size, 8);
    }
}
