//! Fragments and polarization policies (paper §III-B, Fig. 3).
//!
//! A *fragment* is the set of consecutive weights that land on one column of
//! a crossbar sub-array. Which weights become consecutive is decided by the
//! polarization policy: the order in which a filter's 3-D weight volume
//! (width W, height H, channel C) is linearised before being chopped into
//! fragments of the sub-array row count.

use std::fmt;

/// The linearisation order of a filter's weights before fragmenting
/// (paper Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PolarizationPolicy {
    /// Width-major: walk each row of the filter left-to-right, rows
    /// top-to-bottom, one channel after another — `(c, h, w)` with `w`
    /// fastest. The paper's best policy on ImageNet.
    #[default]
    WMajor,
    /// Height-major: columns first — `(c, w, h)` with `h` fastest.
    HMajor,
    /// Channel-major: all channels of one spatial position first —
    /// `(h, w, c)` with `c` fastest. The paper's best policy on CIFAR.
    CMajor,
}

impl fmt::Display for PolarizationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolarizationPolicy::WMajor => write!(f, "W-major"),
            PolarizationPolicy::HMajor => write!(f, "H-major"),
            PolarizationPolicy::CMajor => write!(f, "C-major"),
        }
    }
}

/// Geometry of one convolution filter: channels × height × width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FilterGeometry {
    /// Input channels.
    pub channels: usize,
    /// Kernel height.
    pub height: usize,
    /// Kernel width.
    pub width: usize,
}

impl FilterGeometry {
    /// Creates a filter geometry.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "filter extents must be positive"
        );
        Self {
            channels,
            height,
            width,
        }
    }

    /// Total weights in one filter.
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Whether the filter has no weights (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Row permutation implementing a polarization policy.
///
/// The lowered weight matrix of [`forms_dnn::Conv2d::weight_matrix`] stores
/// filter weights in `(c, h, w)` order with `w` fastest. This function
/// returns `perm` such that `reordered_row_i = original_row_{perm[i]}`
/// linearises the filter volume in the requested policy order.
///
/// # Example
///
/// ```
/// use forms_admm::{row_permutation, FilterGeometry, PolarizationPolicy};
///
/// let g = FilterGeometry::new(2, 1, 3); // 2 channels, 1×3 kernel
/// // C-major: position (0,0) over channels first → rows 0, 3, then (0,1)…
/// let perm = row_permutation(PolarizationPolicy::CMajor, g);
/// assert_eq!(perm, vec![0, 3, 1, 4, 2, 5]);
/// ```
pub fn row_permutation(policy: PolarizationPolicy, geom: FilterGeometry) -> Vec<usize> {
    let (c_n, h_n, w_n) = (geom.channels, geom.height, geom.width);
    let original = |c: usize, h: usize, w: usize| (c * h_n + h) * w_n + w;
    let mut perm = Vec::with_capacity(geom.len());
    match policy {
        PolarizationPolicy::WMajor => {
            for c in 0..c_n {
                for h in 0..h_n {
                    for w in 0..w_n {
                        perm.push(original(c, h, w));
                    }
                }
            }
        }
        PolarizationPolicy::HMajor => {
            for c in 0..c_n {
                for w in 0..w_n {
                    for h in 0..h_n {
                        perm.push(original(c, h, w));
                    }
                }
            }
        }
        PolarizationPolicy::CMajor => {
            for h in 0..h_n {
                for w in 0..w_n {
                    for c in 0..c_n {
                        perm.push(original(c, h, w));
                    }
                }
            }
        }
    }
    perm
}

/// Number of fragments needed to cover a column of `rows` weights with
/// fragments of `fragment_size` (the last fragment may be partial).
///
/// # Panics
///
/// Panics if `fragment_size` is zero.
pub fn fragment_count(rows: usize, fragment_size: usize) -> usize {
    assert!(fragment_size > 0, "fragment size must be positive");
    rows.div_ceil(fragment_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w_major_is_identity() {
        let g = FilterGeometry::new(3, 2, 2);
        let perm = row_permutation(PolarizationPolicy::WMajor, g);
        assert_eq!(perm, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn h_major_transposes_spatial() {
        let g = FilterGeometry::new(1, 2, 3);
        // original rows: (h,w) = 00,01,02,10,11,12 → h-major: 00,10,01,11,02,12
        let perm = row_permutation(PolarizationPolicy::HMajor, g);
        assert_eq!(perm, vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn c_major_groups_channels() {
        let g = FilterGeometry::new(2, 2, 1);
        // original (c,h): 00→0, 01→1, 10→2, 11→3; c-major: (h,c)=00,10,01,11 → 0,2,1,3
        let perm = row_permutation(PolarizationPolicy::CMajor, g);
        assert_eq!(perm, vec![0, 2, 1, 3]);
    }

    #[test]
    fn permutations_are_bijective() {
        let g = FilterGeometry::new(3, 3, 3);
        for policy in [
            PolarizationPolicy::WMajor,
            PolarizationPolicy::HMajor,
            PolarizationPolicy::CMajor,
        ] {
            let mut perm = row_permutation(policy, g);
            perm.sort_unstable();
            assert_eq!(perm, (0..27).collect::<Vec<_>>(), "{policy} not bijective");
        }
    }

    #[test]
    fn fragment_count_rounds_up() {
        assert_eq!(fragment_count(16, 8), 2);
        assert_eq!(fragment_count(17, 8), 3);
        assert_eq!(fragment_count(7, 8), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fragment_size_rejected() {
        fragment_count(8, 0);
    }

    #[test]
    fn geometry_len() {
        assert_eq!(FilterGeometry::new(16, 3, 3).len(), 144);
    }
}
