//! Per-layer pruning sensitivity analysis.
//!
//! The paper's crossbar-aware pruning "carefully choos[es] the pruning
//! ratio for each DNN layer to avoid unnecessary accuracy drop" (§III-A).
//! The standard way to pick those ratios (as in ADMM-NN) is a sensitivity
//! sweep: prune each layer *alone* at several keep fractions via one-shot
//! projection (no retraining) and observe the accuracy, then assign
//! aggressive ratios to insensitive layers and gentle ratios to sensitive
//! ones.

use forms_dnn::data::Dataset;
use forms_dnn::{evaluate, Network, WeightLayerMut};
use forms_exec::{LayerPrecision, PrecisionPlan};

use crate::project_structured_pruning;

/// Sensitivity of one layer: accuracy at each tested keep fraction.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerSensitivity {
    /// Weight-layer index (visit order).
    pub layer: usize,
    /// `(keep_fraction, accuracy)` pairs in sweep order.
    pub accuracy_at_keep: Vec<(f32, f32)>,
}

impl LayerSensitivity {
    /// The smallest tested keep fraction whose accuracy stays within
    /// `tolerance` of the unpruned accuracy, or `1.0` if none does.
    pub fn smallest_safe_keep(&self, baseline: f32, tolerance: f32) -> f32 {
        self.accuracy_at_keep
            .iter()
            .filter(|(_, acc)| baseline - acc <= tolerance)
            .map(|(keep, _)| *keep)
            .fold(1.0, f32::min)
    }
}

/// Sweeps pruning sensitivity for every weight layer.
///
/// For each layer and each keep fraction, both the rows and columns of its
/// lowered matrix are pruned to that fraction by one-shot projection (the
/// rest of the network untouched), and test accuracy is measured.
///
/// # Panics
///
/// Panics if `keeps` is empty or contains values outside `(0, 1]`.
pub fn sensitivity_sweep(
    net: &Network,
    data: &Dataset,
    keeps: &[f32],
    batch_size: usize,
) -> Vec<LayerSensitivity> {
    assert!(!keeps.is_empty(), "need at least one keep fraction");
    assert!(
        keeps.iter().all(|&k| k > 0.0 && k <= 1.0),
        "keep fractions must be in (0, 1]"
    );
    let count = net.weight_layer_count();
    let mut out = Vec::with_capacity(count);
    for layer in 0..count {
        let mut accuracy_at_keep = Vec::with_capacity(keeps.len());
        for &keep in keeps {
            let mut pruned = net.clone();
            let mut idx = 0;
            pruned.for_each_weight_layer(&mut |wl| {
                if idx == layer {
                    let m = match &wl {
                        WeightLayerMut::Conv(c) => c.weight_matrix(),
                        WeightLayerMut::Linear(l) => l.weight_matrix(),
                    };
                    let (rows, cols) = (m.dims()[0], m.dims()[1]);
                    let keep_rows = ((rows as f32 * keep).round() as usize).clamp(1, rows);
                    let keep_cols = ((cols as f32 * keep).round() as usize).clamp(1, cols);
                    let z = project_structured_pruning(&m, keep_rows, keep_cols);
                    match wl {
                        WeightLayerMut::Conv(c) => c.set_weight_matrix(&z),
                        WeightLayerMut::Linear(l) => l.set_weight_matrix(&z),
                    }
                }
                idx += 1;
            });
            accuracy_at_keep.push((keep, evaluate(&mut pruned, data, batch_size)));
        }
        out.push(LayerSensitivity {
            layer,
            accuracy_at_keep,
        });
    }
    out
}

/// Turns a sensitivity sweep into per-layer keep recommendations: the
/// smallest safe keep per layer, with the final layer never filter-pruned
/// below `1.0` handled by the caller.
pub fn recommend_keeps(
    sweep: &[LayerSensitivity],
    baseline_accuracy: f32,
    tolerance: f32,
) -> Vec<f32> {
    sweep
        .iter()
        .map(|s| s.smallest_safe_keep(baseline_accuracy, tolerance))
        .collect()
}

/// Derives a per-layer mixed-precision [`PrecisionPlan`] from a pruning
/// sensitivity sweep.
///
/// The sweep already measures how much damage each layer shrugs off: a
/// layer whose accuracy survives *some* pruning cut within `tolerance`
/// (`smallest_safe_keep < 1.0`) is robust to parameter perturbation and
/// gets the cheap `tolerant` precision; a layer where every tested cut
/// broke accuracy is fragile and keeps the `sensitive` precision. This is
/// the same signal ADMM-NN uses to assign per-layer compression ratios,
/// repurposed for bit widths.
///
/// The returned plan covers the sweep's layers in visit order.
///
/// # Panics
///
/// Panics if `sweep` is empty.
pub fn plan_from_sensitivity(
    sweep: &[LayerSensitivity],
    baseline_accuracy: f32,
    tolerance: f32,
    sensitive: LayerPrecision,
    tolerant: LayerPrecision,
) -> PrecisionPlan {
    assert!(!sweep.is_empty(), "need at least one layer's sensitivity");
    PrecisionPlan::per_layer(
        sweep
            .iter()
            .map(|s| {
                if s.smallest_safe_keep(baseline_accuracy, tolerance) < 1.0 {
                    tolerant
                } else {
                    sensitive
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use forms_dnn::data::SyntheticSpec;
    use forms_dnn::{models, train_epoch, Sgd};
    use forms_rng::StdRng;

    fn trained_setup() -> (Network, Dataset, f32) {
        let mut rng = StdRng::seed_from_u64(50);
        let spec = SyntheticSpec {
            classes: 3,
            channels: 1,
            height: 8,
            width: 8,
            train_per_class: 16,
            test_per_class: 8,
            noise: 0.12,
        };
        let (mut train, test) = spec.generate(&mut rng);
        let mut net = models::mlp(&mut rng, 64, &[24, 16], 3);
        let mut opt = Sgd::new(0.1).momentum(0.9);
        for _ in 0..12 {
            train_epoch(&mut net, &mut opt, &mut train, 16, &mut rng);
        }
        let acc = evaluate(&mut net, &test, 16);
        (net, test, acc)
    }

    #[test]
    fn sweep_covers_every_layer_and_keep() {
        let (net, test, _) = trained_setup();
        let sweep = sensitivity_sweep(&net, &test, &[0.5, 1.0], 16);
        assert_eq!(sweep.len(), 3); // three linear layers
        for s in &sweep {
            assert_eq!(s.accuracy_at_keep.len(), 2);
        }
    }

    #[test]
    fn keep_one_is_lossless() {
        let (net, test, baseline) = trained_setup();
        let sweep = sensitivity_sweep(&net, &test, &[1.0], 16);
        for s in &sweep {
            assert!(
                (s.accuracy_at_keep[0].1 - baseline).abs() < 1e-6,
                "keep 1.0 must not change accuracy"
            );
        }
    }

    #[test]
    fn recommendations_respect_tolerance() {
        let (net, test, baseline) = trained_setup();
        let sweep = sensitivity_sweep(&net, &test, &[0.25, 0.5, 0.75, 1.0], 16);
        let keeps = recommend_keeps(&sweep, baseline, 0.05);
        assert_eq!(keeps.len(), sweep.len());
        for (&keep, s) in keeps.iter().zip(&sweep) {
            // The recommended keep must itself be safe.
            let (_, acc) = s
                .accuracy_at_keep
                .iter()
                .find(|(k, _)| (*k - keep).abs() < 1e-6)
                .expect("recommended keep was tested");
            assert!(baseline - acc <= 0.05 + 1e-6);
        }
    }

    #[test]
    fn plan_from_sensitivity_splits_tolerant_and_fragile_layers() {
        // Synthetic sweep, no training needed: layer 0 survives a 50% cut
        // (tolerant), layer 1 loses 20 points at every tested cut
        // (sensitive), layer 2 was only tested at keep 1.0 (sensitive by
        // default — no cut is known to be safe).
        let sweep = vec![
            LayerSensitivity {
                layer: 0,
                accuracy_at_keep: vec![(0.5, 0.89), (1.0, 0.9)],
            },
            LayerSensitivity {
                layer: 1,
                accuracy_at_keep: vec![(0.5, 0.70), (1.0, 0.9)],
            },
            LayerSensitivity {
                layer: 2,
                accuracy_at_keep: vec![(1.0, 0.9)],
            },
        ];
        let sensitive = LayerPrecision::new(8, 16);
        let tolerant = LayerPrecision::new(4, 8);
        let plan = plan_from_sensitivity(&sweep, 0.9, 0.05, sensitive, tolerant);
        assert_eq!(plan.len(), Some(3));
        assert_eq!(plan.layer(0), tolerant);
        assert_eq!(plan.layer(1), sensitive);
        assert_eq!(plan.layer(2), sensitive);
        assert!(!plan.is_uniform());
        assert_eq!(plan.max_input_bits(), 16);
    }

    #[test]
    fn all_fragile_sweep_yields_a_uniform_sensitive_plan() {
        let sweep = vec![LayerSensitivity {
            layer: 0,
            accuracy_at_keep: vec![(0.25, 0.1), (0.5, 0.2)],
        }];
        let sensitive = LayerPrecision::new(8, 16);
        let plan = plan_from_sensitivity(&sweep, 0.9, 0.02, sensitive, LayerPrecision::new(4, 8));
        assert!(plan.is_uniform());
        assert_eq!(plan.layer(0), sensitive);
    }

    #[test]
    fn zero_tolerance_can_force_keep_one() {
        let (net, test, baseline) = trained_setup();
        let sweep = sensitivity_sweep(&net, &test, &[0.25], 16);
        let keeps = recommend_keeps(&sweep, baseline + 1.0, 0.0);
        // An unreachable baseline makes every cut unsafe.
        assert!(keeps.iter().all(|&k| k == 1.0));
    }
}
