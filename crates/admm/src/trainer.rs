//! The ADMM-regularized training loop (paper §III-D, Fig. 4).
//!
//! The constrained problem Eq. (1) is split into the SGD-friendly
//! subproblem Eq. (4) — ordinary training plus the proximal penalty
//! `ρ/2‖W − Z + U‖²` — and the projection subproblem Eq. (5), solved in
//! closed form by `Z = Π(W + U)` (Eq. (6)), with the dual update
//! `U ← U + W − Z`.

use forms_dnn::data::Dataset;
use forms_dnn::WeightLayerMut;
use forms_dnn::{evaluate, softmax_cross_entropy, Network, Optimizer, Sgd};
use forms_rng::Rng;
use forms_tensor::Tensor;

use crate::{
    fragment_signs, project_all, row_permutation, FilterGeometry, LayerConstraints,
    PolarizationPolicy, ResidualTrace, Residuals,
};

/// Hyperparameters of an ADMM training run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmmConfig {
    /// Penalty coefficient ρ of Eq. (4)–(5).
    pub rho: f32,
    /// Epochs between consecutive Z/U updates (ADMM iterations).
    pub admm_interval: usize,
    /// Epochs between fragment-sign re-evaluations (the paper's `M`).
    pub sign_update_interval: usize,
    /// Total training epochs (the paper's `N`).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Multiplicative ρ growth applied at every ADMM update (1.0 = fixed ρ;
    /// a gentle ramp like 1.3 forces `W → Z` convergence late in training,
    /// the standard trick for non-convex ADMM).
    pub rho_growth: f32,
    /// Projected-SGD epochs after the hard projection (masked retraining,
    /// as in ADMM-NN): the pruning masks, fragment signs and quantization
    /// grid are frozen and surviving weights keep training on the feasible
    /// set, recovering the accuracy the one-shot projection costs.
    pub retrain_epochs: usize,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        Self {
            rho: 1e-2,
            admm_interval: 1,
            sign_update_interval: 2,
            epochs: 12,
            batch_size: 16,
            lr: 0.05,
            momentum: 0.9,
            rho_growth: 1.3,
            retrain_epochs: 6,
        }
    }
}

/// Outcome of an ADMM training run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmmReport {
    /// Mean training loss of the final epoch (cross-entropy only, without
    /// the proximal penalty).
    pub final_loss: f32,
    /// Test accuracy of the trained, *finalized* (hard-projected) model.
    pub test_accuracy: f32,
    /// Test accuracy just before the final hard projection.
    pub pre_projection_accuracy: f32,
    /// Constraint violations remaining before the hard projection (weights
    /// whose sign pattern, sparsity pattern or grid position disagreed).
    pub violations_before_finalize: usize,
}

/// Per-layer ADMM state.
#[derive(Clone, Debug)]
struct LayerState {
    constraints: LayerConstraints,
    /// Row permutation mapping policy order → original row order
    /// (`None` for linear layers and W-major convs, where it is identity).
    perm: Option<Vec<usize>>,
    /// Auxiliary variable Z (in policy row order).
    z: Tensor,
    /// Scaled dual variable U (in policy row order).
    u: Tensor,
    /// Cached fragment signs for the polarization projection.
    signs: Option<Vec<bool>>,
}

/// ADMM trainer wrapping a [`Network`].
///
/// Construct with the per-weight-layer constraints (visit order of
/// [`Network::for_each_weight_layer`]), then call
/// [`train`](AdmmTrainer::train) — or drive the pieces
/// ([`penalty_gradients`](AdmmTrainer::penalty_gradients),
/// [`admm_update`](AdmmTrainer::admm_update),
/// [`finalize`](AdmmTrainer::finalize)) from a custom loop.
#[derive(Clone, Debug)]
pub struct AdmmTrainer {
    states: Vec<LayerState>,
    config: AdmmConfig,
    current_rho: f32,
    trace: ResidualTrace,
}

/// Extracts the lowered weight matrix of every weight layer, in visit
/// order, together with its conv filter geometry (if any).
fn layer_matrices(net: &mut Network) -> Vec<(Tensor, Option<FilterGeometry>)> {
    let mut out = Vec::new();
    net.for_each_weight_layer(&mut |wl| match wl {
        WeightLayerMut::Conv(c) => {
            let geom = FilterGeometry::new(c.in_channels(), c.kernel(), c.kernel());
            out.push((c.weight_matrix(), Some(geom)));
        }
        WeightLayerMut::Linear(l) => out.push((l.weight_matrix(), None)),
    });
    out
}

/// Writes lowered weight matrices back into the network, in visit order.
///
/// # Panics
///
/// Panics if `matrices` has the wrong length.
fn set_layer_matrices(net: &mut Network, matrices: &[Tensor]) {
    let mut idx = 0;
    net.for_each_weight_layer(&mut |wl| {
        let m = &matrices[idx];
        match wl {
            WeightLayerMut::Conv(c) => c.set_weight_matrix(m),
            WeightLayerMut::Linear(l) => l.set_weight_matrix(m),
        }
        idx += 1;
    });
    assert_eq!(idx, matrices.len(), "matrix count mismatch");
}

/// Training accuracy of the current (feasible) network, used to pick the
/// best snapshot during masked retraining.
fn feasible_train_accuracy(net: &mut Network, train: &Dataset) -> f32 {
    evaluate(net, train, 64)
}

/// Permutes matrix rows: `out[i] = in[perm[i]]`.
fn permute_rows(m: &Tensor, perm: &[usize]) -> Tensor {
    let (rows, cols) = (m.dims()[0], m.dims()[1]);
    assert_eq!(perm.len(), rows, "permutation length mismatch");
    let mut out = Tensor::zeros(&[rows, cols]);
    for (i, &src) in perm.iter().enumerate() {
        out.data_mut()[i * cols..(i + 1) * cols]
            .copy_from_slice(&m.data()[src * cols..(src + 1) * cols]);
    }
    out
}

/// Inverse of [`permute_rows`].
fn unpermute_rows(m: &Tensor, perm: &[usize]) -> Tensor {
    let (rows, cols) = (m.dims()[0], m.dims()[1]);
    assert_eq!(perm.len(), rows, "permutation length mismatch");
    let mut out = Tensor::zeros(&[rows, cols]);
    for (i, &dst) in perm.iter().enumerate() {
        out.data_mut()[dst * cols..(dst + 1) * cols]
            .copy_from_slice(&m.data()[i * cols..(i + 1) * cols]);
    }
    out
}

impl AdmmTrainer {
    /// Creates a trainer for `net` with one [`LayerConstraints`] per weight
    /// layer.
    ///
    /// Initializes `Z = Π(W)` and `U = 0`, and evaluates the initial
    /// fragment signs from the (typically pretrained, structurally pruned)
    /// starting weights as §III-B prescribes.
    ///
    /// # Panics
    ///
    /// Panics if `constraints.len()` differs from the network's weight-layer
    /// count.
    pub fn new(net: &mut Network, constraints: Vec<LayerConstraints>, config: AdmmConfig) -> Self {
        let mats = layer_matrices(net);
        assert_eq!(
            mats.len(),
            constraints.len(),
            "need one LayerConstraints per weight layer ({} vs {})",
            mats.len(),
            constraints.len()
        );
        let states = mats
            .into_iter()
            .zip(constraints)
            .map(|((matrix, geom), constraints)| {
                let perm = match (&constraints.polarize, geom) {
                    (Some(p), Some(g)) if p.policy != PolarizationPolicy::WMajor => {
                        // One filter's rows repeat `rows / filter_len` times
                        // is impossible here: the lowered matrix has exactly
                        // filter_len rows, so the permutation applies once.
                        Some(row_permutation(p.policy, g))
                    }
                    _ => None,
                };
                let policy_matrix = match &perm {
                    Some(p) => permute_rows(&matrix, p),
                    None => matrix,
                };
                let signs = constraints
                    .polarize
                    .map(|p| fragment_signs(&policy_matrix, p.fragment_size));
                let z = project_all(&policy_matrix, &constraints, signs.as_deref());
                let u = Tensor::zeros(policy_matrix.dims());
                LayerState {
                    constraints,
                    perm,
                    z,
                    u,
                    signs,
                }
            })
            .collect();
        Self {
            states,
            config,
            current_rho: config.rho,
            trace: ResidualTrace::new(),
        }
    }

    /// The residual trace recorded across ADMM iterations (one entry per
    /// [`admm_update`](Self::admm_update)).
    pub fn trace(&self) -> &ResidualTrace {
        &self.trace
    }

    /// The configuration this trainer was built with.
    pub fn config(&self) -> &AdmmConfig {
        &self.config
    }

    /// Current weight matrices in policy row order, one per layer.
    fn policy_matrices(&self, net: &mut Network) -> Vec<Tensor> {
        layer_matrices(net)
            .into_iter()
            .zip(&self.states)
            .map(|((m, _), s)| match &s.perm {
                Some(p) => permute_rows(&m, p),
                None => m,
            })
            .collect()
    }

    /// Adds the proximal penalty gradient `ρ(W − Z + U)` of Eq. (4) to the
    /// network's accumulated weight gradients. Call after `backward` and
    /// before the optimizer step.
    pub fn penalty_gradients(&self, net: &mut Network) {
        let policy_mats = self.policy_matrices(net);
        let mut idx = 0;
        let states = &self.states;
        let rho = self.current_rho;
        net.for_each_weight_layer(&mut |wl| {
            let s = &states[idx];
            let mut g = policy_mats[idx].clone();
            g.axpy(-1.0, &s.z);
            g.axpy(1.0, &s.u);
            g.scale(rho);
            let g = match &s.perm {
                Some(p) => unpermute_rows(&g, p),
                None => g,
            };
            match wl {
                WeightLayerMut::Conv(c) => {
                    let f = c.filters();
                    let patch = g.dims()[0];
                    let wdims = c.weight().value.dims().to_vec();
                    let g4 = g.transpose().reshape(&wdims);
                    debug_assert_eq!(patch * f, g4.len());
                    c.weight_mut().grad.axpy(1.0, &g4);
                }
                WeightLayerMut::Linear(l) => {
                    l.weight_mut().grad.axpy(1.0, &g.transpose());
                }
            }
            idx += 1;
        });
    }

    /// One ADMM iteration: `Z ← Π(W + U)` (Eq. (6)) and `U ← U + W − Z`,
    /// then ramps ρ by the configured growth factor.
    pub fn admm_update(&mut self, net: &mut Network) {
        self.current_rho *= self.config.rho_growth;
        let policy_mats = self.policy_matrices(net);
        let mut residual_layers = Vec::with_capacity(self.states.len());
        for (s, w) in self.states.iter_mut().zip(policy_mats) {
            let z_prev = s.z.clone();
            let mut wu = w.clone();
            wu.axpy(1.0, &s.u);
            s.z = project_all(&wu, &s.constraints, s.signs.as_deref());
            // U ← U + W − Z
            s.u.axpy(1.0, &w);
            s.u.axpy(-1.0, &s.z);
            residual_layers.push((w, s.z.clone(), z_prev));
        }
        self.trace
            .push(Residuals::compute(&residual_layers, self.current_rho));
    }

    /// Re-evaluates fragment signs from the current weights (done every `M`
    /// epochs per §III-B).
    pub fn update_signs(&mut self, net: &mut Network) {
        let policy_mats = self.policy_matrices(net);
        for (s, w) in self.states.iter_mut().zip(policy_mats) {
            if let Some(p) = &s.constraints.polarize {
                s.signs = Some(fragment_signs(&w, p.fragment_size));
            }
        }
    }

    /// Total elementwise distance-to-feasibility of the current weights:
    /// the number of entries `Π(W)` would change. Zero means every
    /// constraint is satisfied exactly.
    pub fn constraint_violations(&self, net: &mut Network) -> usize {
        self.policy_matrices(net)
            .iter()
            .zip(&self.states)
            .map(|(w, s)| {
                let z = project_all(w, &s.constraints, s.signs.as_deref());
                w.data()
                    .iter()
                    .zip(z.data())
                    .filter(|(a, b)| (**a - **b).abs() > 1e-6)
                    .count()
            })
            .sum()
    }

    /// Hard-projects the weights onto their constraint sets: `W ← Π(W)`,
    /// iterated to a fixed point (quantization can zero small weights,
    /// retiring rows and re-shaping fragments, so one pass is not always
    /// stable). After this call the network satisfies every constraint
    /// exactly, further calls are no-ops, and the model can be mapped onto
    /// polarized crossbars.
    pub fn finalize(&mut self, net: &mut Network) {
        let policy_mats = self.policy_matrices(net);
        let mut finalized = Vec::with_capacity(policy_mats.len());
        for (w, s) in policy_mats.iter().zip(&mut self.states) {
            let mut z = w.clone();
            for pass in 0..16 {
                let signs = if pass == 0 { s.signs.as_deref() } else { None };
                let next = project_all(&z, &s.constraints, signs);
                let stable = next == z;
                z = next;
                if stable {
                    break;
                }
            }
            // The hard projection can retire rows and flip near-tie
            // fragment sums, invalidating the cached sign pattern; refresh
            // it so it describes the finalized weights (keeping repeated
            // finalize calls no-ops and masked retraining consistent).
            if let Some(pol) = &s.constraints.polarize {
                s.signs = Some(fragment_signs(&z, pol.fragment_size));
            }
            finalized.push(match &s.perm {
                Some(p) => unpermute_rows(&z, p),
                None => z,
            });
        }
        set_layer_matrices(net, &finalized);
    }

    /// Projects one policy-order matrix onto the *frozen* structure of a
    /// reference (finalized) matrix: the reference's structural zeros
    /// (pruned rows/columns), fragment signs, and quantization grid. Only
    /// structural zeros are frozen — individually quantization-rounded
    /// zeros may revive during retraining (they cannot change the fragment
    /// structure, which is defined by the active rows). Used by masked
    /// retraining.
    #[allow(clippy::needless_range_loop)] // several arrays are co-indexed
    fn project_frozen(
        constraints: &LayerConstraints,
        reference: &Tensor,
        signs: &[bool],
        step: f32,
        w: &Tensor,
    ) -> Tensor {
        let (rows, cols) = (w.dims()[0], w.dims()[1]);
        let mut z = w.clone();
        let active = crate::active_rows(reference);
        let row_active: Vec<bool> = {
            let mut m = vec![false; rows];
            for &r in &active {
                m[r] = true;
            }
            m
        };
        let col_active: Vec<bool> = (0..cols)
            .map(|c| (0..rows).any(|r| reference.data()[r * cols + c] != 0.0))
            .collect();
        for r in 0..rows {
            for c in 0..cols {
                if !row_active[r] || !col_active[c] {
                    z.data_mut()[r * cols + c] = 0.0;
                }
            }
        }
        if let Some(p) = &constraints.polarize {
            let frag = p.fragment_size;
            let frags_per_col = active.len().div_ceil(frag).max(1);
            for col in 0..cols {
                for (f, chunk) in active.chunks(frag).enumerate() {
                    let positive = signs[col * frags_per_col + f];
                    for &r in chunk {
                        let v = &mut z.data_mut()[r * cols + col];
                        if (positive && *v < 0.0) || (!positive && *v > 0.0) {
                            *v = 0.0;
                        }
                    }
                }
            }
        }
        if let Some(q) = &constraints.quantize {
            z = crate::project_quantization(&z, step, q.bits);
        }
        z
    }

    /// Masked (projected-SGD) retraining on the feasible set: after
    /// [`finalize`](Self::finalize), every optimizer step is followed by a
    /// projection onto the *frozen* structure (masks, signs, grid) captured
    /// from the finalized weights.
    pub fn retrain_masked<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        train: &mut Dataset,
        epochs: usize,
        rng: &mut R,
    ) {
        if epochs == 0 {
            return;
        }
        // Capture the frozen structure from the (finalized) weights.
        let refs = self.policy_matrices(net);
        let frozen: Vec<(Tensor, Vec<bool>, f32)> = refs
            .iter()
            .zip(&self.states)
            .map(|(m, st)| {
                let signs = match &st.constraints.polarize {
                    Some(p) => crate::fragment_signs(m, p.fragment_size),
                    None => Vec::new(),
                };
                let step = match &st.constraints.quantize {
                    Some(q) => crate::quantization_step(m, q.bits),
                    None => 1.0,
                };
                (m.clone(), signs, step)
            })
            .collect();
        let mut opt = Sgd::new(self.config.lr * 0.25).momentum(self.config.momentum);
        // Every epoch ends on a feasible point; keep the best one (by
        // training accuracy) so retraining can only help.
        let mut best_snapshot = net.param_values();
        let mut best_accuracy = feasible_train_accuracy(net, train);
        for _ in 0..epochs {
            train.shuffle(rng);
            let mut cursor = 0;
            while cursor < train.len() {
                let len = self.config.batch_size.min(train.len() - cursor);
                let (x, labels) = train.batch(cursor, len);
                cursor += len;
                net.zero_grad();
                let logits = net.forward_train(&x);
                let out = softmax_cross_entropy(&logits, labels);
                net.backward(&out.grad);
                opt.step(net);
                // Projection back onto the frozen feasible set.
                let mats = self.policy_matrices(net);
                let projected: Vec<Tensor> = mats
                    .iter()
                    .zip(&self.states)
                    .zip(&frozen)
                    .map(|((w, st), (reference, signs, step))| {
                        let z = Self::project_frozen(&st.constraints, reference, signs, *step, w);
                        match &st.perm {
                            Some(p) => unpermute_rows(&z, p),
                            None => z,
                        }
                    })
                    .collect();
                set_layer_matrices(net, &projected);
            }
            let accuracy = feasible_train_accuracy(net, train);
            if accuracy > best_accuracy {
                best_accuracy = accuracy;
                best_snapshot = net.param_values();
            }
        }
        net.set_param_values(&best_snapshot);
    }

    /// Runs the full ADMM training loop of Fig. 4 and returns a report.
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        net: &mut Network,
        train: &mut Dataset,
        test: &Dataset,
        rng: &mut R,
    ) -> AdmmReport {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        let mut opt = Sgd::new(self.config.lr).momentum(self.config.momentum);
        let mut final_loss = 0.0;
        for epoch in 0..self.config.epochs {
            train.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0.0;
            let mut cursor = 0;
            while cursor < train.len() {
                let len = self.config.batch_size.min(train.len() - cursor);
                let (x, labels) = train.batch(cursor, len);
                cursor += len;
                net.zero_grad();
                let logits = net.forward_train(&x);
                let out = softmax_cross_entropy(&logits, labels);
                net.backward(&out.grad);
                self.penalty_gradients(net);
                opt.step(net);
                epoch_loss += out.loss;
                batches += 1.0;
            }
            final_loss = epoch_loss / batches;
            if (epoch + 1) % self.config.admm_interval == 0 {
                self.admm_update(net);
            }
            if (epoch + 1) % self.config.sign_update_interval == 0 {
                self.update_signs(net);
            }
        }
        let violations = self.constraint_violations(net);
        let pre_projection_accuracy = evaluate(net, test, self.config.batch_size);
        self.finalize(net);
        self.retrain_masked(net, train, self.config.retrain_epochs, rng);
        let test_accuracy = evaluate(net, test, self.config.batch_size);
        AdmmReport {
            final_loss,
            test_accuracy,
            pre_projection_accuracy,
            violations_before_finalize: violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{polarization_violations, PolarizeSpec, PruneSpec, QuantSpec};
    use forms_dnn::data::SyntheticSpec;
    use forms_dnn::models;
    use forms_rng::StdRng;

    fn small_conv_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![
            forms_dnn::Layer::conv2d(&mut rng, 1, 8, 3, 1, 1),
            forms_dnn::Layer::relu(),
            forms_dnn::Layer::max_pool(2),
            forms_dnn::Layer::flatten(),
            forms_dnn::Layer::linear(&mut rng, 8 * 4 * 4, 4),
        ])
    }

    fn uniform_constraints(net: &mut Network, c: LayerConstraints) -> Vec<LayerConstraints> {
        vec![c; net.weight_layer_count()]
    }

    #[test]
    fn new_initializes_feasible_z() {
        let mut net = small_conv_net(0);
        let c = LayerConstraints {
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            ..Default::default()
        };
        let cs = uniform_constraints(&mut net, c);
        let trainer = AdmmTrainer::new(&mut net, cs, AdmmConfig::default());
        for s in &trainer.states {
            assert_eq!(polarization_violations(&s.z, 4), 0);
        }
    }

    #[test]
    fn finalize_enforces_all_constraints() {
        let mut net = small_conv_net(1);
        let c = LayerConstraints::full(0.5, 0.5, 4, PolarizationPolicy::CMajor, 8);
        let cs = uniform_constraints(&mut net, c);
        let mut trainer = AdmmTrainer::new(&mut net, cs, AdmmConfig::default());
        assert!(trainer.constraint_violations(&mut net) > 0);
        trainer.finalize(&mut net);
        assert_eq!(trainer.constraint_violations(&mut net), 0);
    }

    #[test]
    fn penalty_pulls_weights_toward_z() {
        let mut net = small_conv_net(2);
        let c = LayerConstraints {
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            ..Default::default()
        };
        let cs = uniform_constraints(&mut net, c);
        let config = AdmmConfig {
            rho: 1.0,
            ..Default::default()
        };
        let trainer = AdmmTrainer::new(&mut net, cs, config);
        let before = trainer.constraint_violations(&mut net);
        // Gradient-only steps with the penalty should reduce violations.
        let mut opt = Sgd::new(0.3);
        for _ in 0..200 {
            net.zero_grad();
            trainer.penalty_gradients(&mut net);
            opt.step(&mut net);
        }
        let after = trainer.constraint_violations(&mut net);
        assert!(after < before, "penalty did not help: {before} → {after}");
    }

    #[test]
    fn admm_training_preserves_accuracy_and_enforces_constraints() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = SyntheticSpec {
            classes: 4,
            channels: 1,
            height: 8,
            width: 8,
            train_per_class: 16,
            test_per_class: 8,
            noise: 0.15,
        };
        let (mut train, test) = spec.generate(&mut rng);
        let mut net = models::mlp(&mut rng, 64, &[32], 4);
        // Pretrain briefly.
        let mut opt = Sgd::new(0.1).momentum(0.9);
        for _ in 0..8 {
            forms_dnn::train_epoch(&mut net, &mut opt, &mut train, 16, &mut rng);
        }
        let baseline = evaluate(&mut net, &test, 16);
        let c = LayerConstraints {
            prune: Some(PruneSpec {
                shape_keep: 0.75,
                filter_keep: 0.75,
            }),
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            quantize: Some(QuantSpec { bits: 8 }),
        };
        // As in the paper, the classifier head keeps all its filters
        // (pruning output columns would delete classes outright).
        let mut cs = uniform_constraints(&mut net, c);
        if let Some(last) = cs.last_mut() {
            last.prune = Some(PruneSpec {
                shape_keep: 0.75,
                filter_keep: 1.0,
            });
        }
        let config = AdmmConfig {
            epochs: 16,
            rho: 1e-2,
            lr: 0.05,
            ..Default::default()
        };
        let mut trainer = AdmmTrainer::new(&mut net, cs, config);
        let report = trainer.train(&mut net, &mut train, &test, &mut rng);
        assert_eq!(trainer.constraint_violations(&mut net), 0);
        assert!(
            report.test_accuracy >= baseline - 0.25,
            "accuracy collapsed: {baseline} → {}",
            report.test_accuracy
        );
    }

    #[test]
    fn sign_updates_track_current_weights() {
        let mut net = small_conv_net(4);
        let c = LayerConstraints {
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            ..Default::default()
        };
        let cs = uniform_constraints(&mut net, c);
        let mut trainer = AdmmTrainer::new(&mut net, cs, AdmmConfig::default());
        // Flip all weights; signs must flip after update_signs.
        let old_signs = trainer.states[0].signs.clone().unwrap();
        net.for_each_weight_layer(&mut |wl| match wl {
            WeightLayerMut::Conv(cv) => cv.weight_mut().value.scale(-1.0),
            WeightLayerMut::Linear(l) => l.weight_mut().value.scale(-1.0),
        });
        trainer.update_signs(&mut net);
        let new_signs = trainer.states[0].signs.clone().unwrap();
        let flipped = old_signs
            .iter()
            .zip(&new_signs)
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            flipped > old_signs.len() / 2,
            "signs did not track weights ({flipped}/{})",
            old_signs.len()
        );
    }

    #[test]
    fn residual_trace_is_recorded_and_converges() {
        let mut rng = StdRng::seed_from_u64(31);
        let spec = SyntheticSpec {
            classes: 3,
            channels: 1,
            height: 4,
            width: 4,
            train_per_class: 12,
            test_per_class: 4,
            noise: 0.1,
        };
        let (mut train, test) = spec.generate(&mut rng);
        let mut net = models::mlp(&mut rng, 16, &[12], 3);
        let c = LayerConstraints {
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::WMajor,
            }),
            ..Default::default()
        };
        let cs = uniform_constraints(&mut net, c);
        let config = AdmmConfig {
            epochs: 8,
            lr: 0.05,
            ..Default::default()
        };
        let mut trainer = AdmmTrainer::new(&mut net, cs, config);
        trainer.train(&mut net, &mut train, &test, &mut rng);
        assert_eq!(trainer.trace().len(), 8, "one entry per ADMM iteration");
        assert!(
            trainer.trace().primal_converging(),
            "primal residual should shrink:\n{}",
            trainer.trace().render()
        );
    }

    #[test]
    fn permutation_round_trip_through_finalize() {
        // With C-major policy the perm must be undone on write-back:
        // finalizing twice must be a no-op the second time.
        let mut net = small_conv_net(5);
        let c = LayerConstraints {
            polarize: Some(PolarizeSpec {
                fragment_size: 4,
                policy: PolarizationPolicy::CMajor,
            }),
            ..Default::default()
        };
        let cs = uniform_constraints(&mut net, c);
        let mut trainer = AdmmTrainer::new(&mut net, cs, AdmmConfig::default());
        trainer.finalize(&mut net);
        let snap = net.param_values();
        trainer.finalize(&mut net);
        assert_eq!(net.param_values(), snap);
    }
}
