//! ADMM convergence diagnostics.
//!
//! Standard ADMM monitoring (Boyd et al., the paper's ref. \[30\]): the
//! *primal residual* `‖W − Z‖` measures constraint violation, the *dual
//! residual* `ρ‖Z_t − Z_{t−1}‖` measures how much the consensus point is
//! still moving. Both shrinking toward zero is the convergence signal; a
//! stuck primal residual means ρ is too small, an oscillating dual one
//! that ρ grew too fast.

use forms_tensor::Tensor;

/// Residuals of one ADMM iteration, summed over all layers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Residuals {
    /// Primal residual `‖W − Z‖_F` (root of the summed squares).
    pub primal: f32,
    /// Dual residual `ρ‖Z − Z_prev‖_F`.
    pub dual: f32,
    /// The ρ in effect at this iteration.
    pub rho: f32,
}

impl Residuals {
    /// Computes residuals from per-layer `(W, Z, Z_prev)` triples.
    ///
    /// # Panics
    ///
    /// Panics if tensor shapes disagree within a layer.
    pub fn compute(layers: &[(Tensor, Tensor, Tensor)], rho: f32) -> Self {
        let mut primal_sq = 0.0f32;
        let mut dual_sq = 0.0f32;
        for (w, z, z_prev) in layers {
            let mut d = w.clone();
            d.axpy(-1.0, z);
            primal_sq += d.norm_sq();
            let mut dz = z.clone();
            dz.axpy(-1.0, z_prev);
            dual_sq += dz.norm_sq();
        }
        Residuals {
            primal: primal_sq.sqrt(),
            dual: rho * dual_sq.sqrt(),
            rho,
        }
    }
}

/// A recorded trace of residuals across ADMM iterations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResidualTrace {
    entries: Vec<Residuals>,
}

impl ResidualTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one iteration's residuals.
    pub fn push(&mut self, r: Residuals) {
        self.entries.push(r);
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> &[Residuals] {
        &self.entries
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the primal residual decreased overall (first vs last),
    /// the basic convergence check.
    pub fn primal_converging(&self) -> bool {
        match (self.entries.first(), self.entries.last()) {
            (Some(first), Some(last)) => last.primal <= first.primal,
            _ => false,
        }
    }

    /// The last iteration's residuals.
    pub fn last(&self) -> Option<&Residuals> {
        self.entries.last()
    }

    /// Renders the trace as a small table for logs.
    pub fn render(&self) -> String {
        let mut out = String::from("iter | primal      | dual        | rho\n");
        for (i, r) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "{i:4} | {:11.5} | {:11.5} | {:.4}\n",
                r.primal, r.dual, r.rho
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()])
    }

    #[test]
    fn residuals_of_consensus_are_zero() {
        let w = t(&[1.0, 2.0]);
        let r = Residuals::compute(&[(w.clone(), w.clone(), w.clone())], 0.1);
        assert_eq!(r.primal, 0.0);
        assert_eq!(r.dual, 0.0);
    }

    #[test]
    fn primal_measures_w_z_gap() {
        let r = Residuals::compute(&[(t(&[3.0, 0.0]), t(&[0.0, 4.0]), t(&[0.0, 4.0]))], 1.0);
        assert!((r.primal - (9.0f32 + 16.0).sqrt() - 0.0).abs() < 1e-6);
        assert_eq!(r.dual, 0.0);
    }

    #[test]
    fn dual_scales_with_rho() {
        let layers = [(t(&[0.0]), t(&[1.0]), t(&[0.0]))];
        let r1 = Residuals::compute(&layers, 1.0);
        let r2 = Residuals::compute(&layers, 2.0);
        assert!((r2.dual / r1.dual - 2.0).abs() < 1e-6);
    }

    #[test]
    fn multi_layer_residuals_accumulate() {
        let single = Residuals::compute(&[(t(&[2.0]), t(&[0.0]), t(&[0.0]))], 1.0);
        let double = Residuals::compute(
            &[
                (t(&[2.0]), t(&[0.0]), t(&[0.0])),
                (t(&[2.0]), t(&[0.0]), t(&[0.0])),
            ],
            1.0,
        );
        assert!((double.primal - single.primal * 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn trace_convergence_check() {
        let mut trace = ResidualTrace::new();
        assert!(!trace.primal_converging());
        trace.push(Residuals {
            primal: 10.0,
            dual: 1.0,
            rho: 0.01,
        });
        trace.push(Residuals {
            primal: 2.0,
            dual: 0.5,
            rho: 0.013,
        });
        assert!(trace.primal_converging());
        assert_eq!(trace.len(), 2);
        assert!(trace.render().contains("iter"));
    }
}
