//! Design-space exploration (paper §IV-C: "We performed design space
//! exploration to find the best size of crossbar arrays, ADCs, DACs and
//! eDRAM storage").
//!
//! Sweeps the architecture axes — fragment size, cells per weight, ADCs per
//! crossbar — through the calibrated cost models, scores each point by
//! throughput per area and per watt at a given workload EIC, and extracts
//! the Pareto-efficient set. The paper's chosen point (fragment 8, 2-bit
//! cells, 4 ADCs per crossbar) should sit on that frontier.

use forms_hwmodel::{ChipCost, McuConfig, ThroughputModel};

/// One evaluated design point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DesignPoint {
    /// Fragment size (sub-array rows).
    pub fragment_size: usize,
    /// Bits per ReRAM cell.
    pub cell_bits: u32,
    /// ADCs per crossbar.
    pub adcs_per_crossbar: usize,
    /// Chip power in watts.
    pub chip_power_w: f64,
    /// Chip area in mm².
    pub chip_area_mm2: f64,
    /// Effective GOPs at the workload EIC.
    pub gops: f64,
    /// GOPs per mm².
    pub gops_per_mm2: f64,
    /// GOPs per watt.
    pub gops_per_watt: f64,
}

impl DesignPoint {
    /// Whether `self` dominates `other` (at least as good on both
    /// efficiency axes, strictly better on one).
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let ge =
            self.gops_per_mm2 >= other.gops_per_mm2 && self.gops_per_watt >= other.gops_per_watt;
        let gt = self.gops_per_mm2 > other.gops_per_mm2 || self.gops_per_watt > other.gops_per_watt;
        ge && gt
    }
}

/// The swept axes.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignSpace {
    /// Fragment sizes to evaluate (must divide 128).
    pub fragment_sizes: Vec<usize>,
    /// Cell resolutions to evaluate.
    pub cell_bits: Vec<u32>,
    /// ADC sharing factors to evaluate.
    pub adcs_per_crossbar: Vec<usize>,
    /// Weight precision (bits).
    pub weight_bits: u32,
    /// Mean effective input cycles of the workload (16 = no skipping).
    pub input_cycles: f64,
}

impl Default for DesignSpace {
    fn default() -> Self {
        Self {
            fragment_sizes: vec![4, 8, 16, 32],
            cell_bits: vec![1, 2, 4],
            adcs_per_crossbar: vec![1, 2, 4, 8],
            weight_bits: 16,
            input_cycles: 10.7, // paper Fig. 8(b)
        }
    }
}

impl DesignSpace {
    /// Evaluates every point in the grid.
    pub fn evaluate(&self) -> Vec<DesignPoint> {
        let mut points = Vec::new();
        for &fragment_size in &self.fragment_sizes {
            for &cell_bits in &self.cell_bits {
                for &adcs in &self.adcs_per_crossbar {
                    let mut mcu = McuConfig::forms(fragment_size);
                    mcu.cell_bits = cell_bits;
                    mcu.adcs_per_crossbar = adcs;
                    // The ADC must resolve fragment_size × (2^cell_bits − 1)
                    // levels.
                    let max = (fragment_size as u64) * ((1u64 << cell_bits) - 1);
                    mcu.adc_bits = (64 - max.max(1).leading_zeros()).clamp(1, 12);
                    mcu.adc_freq_ghz = (3.0 - 0.225 * mcu.adc_bits as f64).max(0.3);
                    let model = ThroughputModel {
                        input_cycles: self.input_cycles,
                        weight_bits: self.weight_bits,
                        ..ThroughputModel::baseline(mcu)
                    };
                    let chip = ChipCost::for_mcu(&mcu).total;
                    let gops = model.effective_gops();
                    points.push(DesignPoint {
                        fragment_size,
                        cell_bits,
                        adcs_per_crossbar: adcs,
                        chip_power_w: chip.power_mw / 1000.0,
                        chip_area_mm2: chip.area_mm2,
                        gops,
                        gops_per_mm2: gops / chip.area_mm2,
                        gops_per_watt: gops / (chip.power_mw / 1000.0),
                    });
                }
            }
        }
        points
    }

    /// The Pareto-efficient subset (not dominated on the two efficiency
    /// axes), sorted by area efficiency.
    pub fn pareto_frontier(&self) -> Vec<DesignPoint> {
        let points = self.evaluate();
        let mut frontier: Vec<DesignPoint> = points
            .iter()
            .filter(|p| !points.iter().any(|q| q.dominates(p)))
            .copied()
            .collect();
        frontier.sort_by(|a, b| {
            a.gops_per_mm2
                .partial_cmp(&b.gops_per_mm2)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        frontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_fully_evaluated() {
        let space = DesignSpace::default();
        let n = space.fragment_sizes.len() * space.cell_bits.len() * space.adcs_per_crossbar.len();
        assert_eq!(space.evaluate().len(), n);
    }

    #[test]
    fn frontier_is_nonempty_and_undominated() {
        let space = DesignSpace::default();
        let frontier = space.pareto_frontier();
        assert!(!frontier.is_empty());
        for a in &frontier {
            for b in &frontier {
                assert!(
                    !a.dominates(b) || a == b,
                    "frontier contains dominated point"
                );
            }
        }
    }

    #[test]
    fn paper_design_point_is_competitive() {
        // Fragment 8 / 2-bit cells / 4 ADCs must not be grossly dominated:
        // it should be within 20% of the frontier on at least one axis.
        let space = DesignSpace::default();
        let points = space.evaluate();
        let paper = points
            .iter()
            .find(|p| p.fragment_size == 8 && p.cell_bits == 2 && p.adcs_per_crossbar == 4)
            .expect("paper point in grid");
        let best_area = points.iter().map(|p| p.gops_per_mm2).fold(0.0, f64::max);
        let best_power = points.iter().map(|p| p.gops_per_watt).fold(0.0, f64::max);
        let near_area = paper.gops_per_mm2 >= 0.3 * best_area;
        let near_power = paper.gops_per_watt >= 0.3 * best_power;
        assert!(
            near_area || near_power,
            "paper point far off frontier: {paper:?} (best area {best_area}, power {best_power})"
        );
    }

    #[test]
    fn dominance_is_irreflexive() {
        let p = DesignSpace::default().evaluate()[0];
        assert!(!p.dominates(&p));
    }

    #[test]
    fn skipping_improves_every_point() {
        let with = DesignSpace {
            input_cycles: 10.7,
            ..Default::default()
        };
        let without = DesignSpace {
            input_cycles: 16.0,
            ..Default::default()
        };
        for (a, b) in with.evaluate().iter().zip(without.evaluate().iter()) {
            assert!(a.gops > b.gops);
        }
    }
}
