//! Effective input cycles and the zero-skipping logic (paper §IV-B, Fig. 7
//! and Fig. 9).
//!
//! Inputs are fed to the crossbar bit-serially, least-significant bit
//! first, from parallel-in/serial-out shift registers. Every cycle the
//! remaining register contents are NOR-ed per input and AND-ed across the
//! fragment; the moment every register is empty the skip signal fires and
//! the remaining (all-zero, most-significant) cycles are skipped. The
//! number of cycles actually spent equals the fragment's *effective input
//! cycles* (EIC): the maximum effective bit count over the fragment's
//! inputs.

/// Number of *effective bits* of an input code: its bit length after
/// stripping leading zeros (paper Fig. 7). Zero has 0 effective bits.
///
/// # Example
///
/// ```
/// use forms_arch::effective_bits;
///
/// assert_eq!(effective_bits(0), 0);
/// assert_eq!(effective_bits(0b0000_1011), 4);
/// assert_eq!(effective_bits(0b0100_0000), 7);
/// ```
pub fn effective_bits(code: u32) -> u32 {
    32 - code.leading_zeros()
}

/// The *effective input cycles* a fragment needs: the maximum effective
/// bits over all of the fragment's inputs (paper Fig. 7 — `inp₂` with 7
/// effective bits forces EIC 7 even though `inp₁` only has 6).
///
/// Returns 0 for an all-zero fragment (its computation can be skipped
/// outright).
pub fn fragment_eic(codes: &[u32]) -> u32 {
    codes.iter().copied().map(effective_bits).max().unwrap_or(0)
}

/// Cycles saved by zero-skipping relative to feeding all `input_bits` bits.
///
/// # Panics
///
/// Panics if any code needs more than `input_bits` bits.
pub fn cycles_saved(codes: &[u32], input_bits: u32) -> u32 {
    let eic = fragment_eic(codes);
    assert!(
        eic <= input_bits,
        "input code exceeds {input_bits}-bit representation (EIC {eic})"
    );
    input_bits - eic
}

/// The bank of parallel-in/serial-out shift registers feeding one fragment,
/// with the NOR/AND zero-skip detector of paper Fig. 9.
#[derive(Clone, Debug, PartialEq)]
pub struct ShiftRegisterBank {
    registers: Vec<u32>,
    cycles: u32,
}

impl ShiftRegisterBank {
    /// Loads the fragment's input codes in parallel.
    pub fn load(codes: &[u32]) -> Self {
        Self {
            registers: codes.to_vec(),
            cycles: 0,
        }
    }

    /// The skip signal: AND over the per-register NORs — true when every
    /// remaining register content is zero and shifting can stop.
    pub fn all_zero(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Shifts one cycle, returning the current LSB of every register — the
    /// bits driven onto the DACs this cycle — or `None` if the skip signal
    /// has fired and the cycle is saved.
    pub fn step(&mut self) -> Option<Vec<bool>> {
        if self.all_zero() {
            return None;
        }
        self.cycles += 1;
        let bits = self.registers.iter().map(|&r| r & 1 == 1).collect();
        for r in &mut self.registers {
            *r >>= 1;
        }
        Some(bits)
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// Drains the bank, returning all bit vectors (cycle by cycle, LSB
    /// first) — exactly `fragment_eic` of them.
    pub fn drain(mut self) -> Vec<Vec<bool>> {
        let mut planes = Vec::new();
        while let Some(bits) = self.step() {
            planes.push(bits);
        }
        planes
    }
}

/// Statistics of EIC over many fragments (backs paper Fig. 8).
#[derive(Clone, Debug, PartialEq)]
pub struct EicStats {
    /// Histogram: `histogram[e]` = number of fragments with EIC `e`
    /// (index 0..=input_bits).
    pub histogram: Vec<usize>,
    /// Mean EIC over all fragments.
    pub mean: f64,
    /// Number of fragments measured.
    pub fragments: usize,
}

/// Measures EIC over consecutive fragments of `fragment_size` inputs
/// (the last fragment may be partial).
///
/// # Panics
///
/// Panics if `fragment_size` is zero or any code exceeds `input_bits` bits.
pub fn eic_stats(codes: &[u32], fragment_size: usize, input_bits: u32) -> EicStats {
    assert!(fragment_size > 0, "fragment size must be positive");
    let mut histogram = vec![0usize; input_bits as usize + 1];
    let mut total = 0u64;
    let mut fragments = 0usize;
    for chunk in codes.chunks(fragment_size) {
        let eic = fragment_eic(chunk);
        assert!(
            eic <= input_bits,
            "code exceeds {input_bits}-bit representation"
        );
        histogram[eic as usize] += 1;
        total += eic as u64;
        fragments += 1;
    }
    EicStats {
        histogram,
        mean: if fragments == 0 {
            0.0
        } else {
            total as f64 / fragments as f64
        },
        fragments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bits_examples_from_fig7() {
        // Fig. 7: a 16-bit input 0000000000101101 has 6 effective bits;
        // 0000000001001011 has 7.
        assert_eq!(effective_bits(0b101101), 6);
        assert_eq!(effective_bits(0b1001011), 7);
    }

    #[test]
    fn fragment_eic_is_max_over_inputs() {
        // Fig. 7's fragment: inp1 (6 bits) and inp2 (7 bits) → EIC 7.
        assert_eq!(fragment_eic(&[0b101101, 0b1001011]), 7);
        assert_eq!(fragment_eic(&[]), 0);
        assert_eq!(fragment_eic(&[0, 0, 0]), 0);
    }

    #[test]
    fn shift_bank_stops_after_eic_cycles() {
        let codes = [0b101101u32, 0b1001011, 0, 3];
        let mut bank = ShiftRegisterBank::load(&codes);
        let mut cycles = 0;
        while bank.step().is_some() {
            cycles += 1;
        }
        assert_eq!(cycles, fragment_eic(&codes));
        assert_eq!(bank.cycles(), 7);
    }

    #[test]
    fn shift_bank_bits_reconstruct_codes() {
        let codes = [0b1011u32, 0b0110, 0b0001];
        let planes = ShiftRegisterBank::load(&codes).drain();
        let mut rebuilt = vec![0u32; codes.len()];
        for (cycle, bits) in planes.iter().enumerate() {
            for (r, &b) in rebuilt.iter_mut().zip(bits) {
                *r |= (b as u32) << cycle;
            }
        }
        assert_eq!(rebuilt, codes);
    }

    #[test]
    fn all_zero_fragment_is_skipped_entirely() {
        let mut bank = ShiftRegisterBank::load(&[0, 0, 0, 0]);
        assert!(bank.all_zero());
        assert_eq!(bank.step(), None);
        assert_eq!(bank.cycles(), 0);
    }

    #[test]
    fn zero_skip_never_changes_the_dot_product() {
        // Feeding only EIC cycles must yield the same weighted sum as
        // feeding all 16: the skipped planes are all-zero.
        let codes = [37u32, 1200, 0, 15];
        let weights = [3u64, 1, 2, 3];
        let full: u64 = codes
            .iter()
            .zip(&weights)
            .map(|(&c, &w)| c as u64 * w)
            .sum();
        let mut acc = 0u64;
        for (cycle, bits) in ShiftRegisterBank::load(&codes).drain().iter().enumerate() {
            let plane: u64 = bits
                .iter()
                .zip(&weights)
                .map(|(&b, &w)| (b as u64) * w)
                .sum();
            acc += plane << cycle;
        }
        assert_eq!(acc, full);
    }

    #[test]
    fn cycles_saved_matches_paper_arithmetic() {
        // Average EIC 10.7 over 16 bits saves 33% of cycles (paper §IV-B).
        assert_eq!(cycles_saved(&[0b101101], 16), 10);
        assert_eq!(cycles_saved(&[0], 16), 16);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_code_rejected_in_cycles_saved() {
        cycles_saved(&[1 << 17], 16);
    }

    #[test]
    fn drain_length_equals_eic_on_random_fragments() {
        // The shift bank must spend exactly `fragment_eic` cycles — no
        // more (zero-skipping works) and no fewer (no bits are dropped).
        use forms_rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xE1C);
        for case in 0..200 {
            let len = rng.gen_range(1..=64usize);
            let codes: Vec<u32> = (0..len).map(|_| rng.gen_range(0..1u32 << 16)).collect();
            let planes = ShiftRegisterBank::load(&codes).drain();
            assert_eq!(
                planes.len(),
                fragment_eic(&codes) as usize,
                "case {case}: drain length must equal the fragment EIC"
            );
        }
    }

    #[test]
    fn drain_length_equals_eic_on_all_zero_fragment() {
        let codes = [0u32; 8];
        assert_eq!(fragment_eic(&codes), 0);
        assert!(ShiftRegisterBank::load(&codes).drain().is_empty());
    }

    #[test]
    fn drain_length_equals_eic_on_partial_fragments() {
        // Fragments narrower than the hardware width (a layer's tail
        // rows), including the degenerate empty fragment.
        for codes in [&[][..], &[5][..], &[0, 0, 9][..], &[1, 0][..]] {
            let planes = ShiftRegisterBank::load(codes).drain();
            assert_eq!(planes.len(), fragment_eic(codes) as usize);
        }
    }

    #[test]
    fn packed_planes_match_drained_planes_on_random_fragments() {
        // Property check behind the packed MVM hot path: for any fragment,
        // the `u64` bit planes from `pack_bit_planes` drive exactly the
        // rows the shift-register bank's `drain()` planes drive, cycle for
        // cycle — so dot products accumulated from either representation
        // are bitwise identical.
        use forms_reram::{for_each_set_bit, pack_bit_planes};
        use forms_rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(99);
        let input_bits = 10u32;
        // Lengths cover sub-word, exact-word and multi-word partial tails.
        for &len in &[1usize, 3, 8, 63, 64, 65, 70, 128, 130] {
            for case in 0..8 {
                let codes: Vec<u32> = match case {
                    // All-zero fragment: zero planes on both sides.
                    0 => vec![0; len],
                    // A single driven row in an otherwise dead fragment.
                    1 => (0..len).map(|i| u32::from(i == len / 2)).collect(),
                    _ => (0..len)
                        .map(|_| rng.next_u32() & ((1 << input_bits) - 1))
                        .collect(),
                };
                let weights: Vec<f64> = (0..len)
                    .map(|_| (rng.next_u32() % 97) as f64 * 0.25)
                    .collect();
                let drained = ShiftRegisterBank::load(&codes).drain();
                let eic = fragment_eic(&codes);
                assert_eq!(drained.len(), eic as usize);
                let mut planes = Vec::new();
                let words = pack_bit_planes(&codes, eic, &mut planes);
                for (p, bits) in drained.iter().enumerate() {
                    let mask = &planes[p * words..(p + 1) * words];
                    let mut unpacked_dot = 0.0f64;
                    let mut unpacked_rows = 0usize;
                    for (i, &b) in bits.iter().enumerate() {
                        if b {
                            unpacked_dot += weights[i];
                            unpacked_rows += 1;
                        }
                    }
                    let mut packed_dot = 0.0f64;
                    let mut packed_rows = 0usize;
                    for_each_set_bit(mask, |i| {
                        assert!(bits[i], "plane {p}: packed drives row {i}, bank does not");
                        packed_dot += weights[i];
                        packed_rows += 1;
                    });
                    assert_eq!(packed_rows, unpacked_rows, "plane {p} row count");
                    assert_eq!(
                        packed_dot.to_bits(),
                        unpacked_dot.to_bits(),
                        "plane {p}: dot products differ (len {len}, case {case})"
                    );
                }
            }
        }
    }

    #[test]
    fn eic_stats_histogram_and_mean() {
        // Fragments of 2: [3, 0] → EIC 2; [1, 1] → 1; [0, 0] → 0.
        let stats = eic_stats(&[3, 0, 1, 1, 0, 0], 2, 16);
        assert_eq!(stats.fragments, 3);
        assert_eq!(stats.histogram[2], 1);
        assert_eq!(stats.histogram[1], 1);
        assert_eq!(stats.histogram[0], 1);
        assert!((stats.mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn larger_fragments_never_decrease_eic() {
        // Monotonicity: the max over a superset is ≥ the max over a subset,
        // so mean EIC grows with fragment size (the paper's Fig. 8 trend).
        let codes: Vec<u32> = (0..256).map(|i| (i * 37) % 4096).collect();
        let mut last = 0.0;
        for frag in [4usize, 8, 16, 32, 64, 128] {
            let mean = eic_stats(&codes, frag, 16).mean;
            assert!(mean >= last, "EIC decreased at fragment {frag}");
            last = mean;
        }
    }
}
