//! Tile allocation and the mesh network-on-chip (paper §IV-C, Fig. 10).
//!
//! "The FORMS system is organized into multiple nodes/tiles … tiles are
//! connected together in a mesh-based network while the data flow between
//! different layers (tiles) in a pipelined manner." This module assigns a
//! model's mapped layers to MCUs and tiles, places the tiles on the mesh,
//! and estimates the inter-layer communication the mesh must carry.

use forms_hwmodel::{McuConfig, CHIP_TILES, MCUS_PER_TILE};

/// One layer's placement request: how many crossbars it needs and how many
/// activation bytes it sends to the next layer per inference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerPlacement {
    /// Physical crossbars the layer occupies.
    pub crossbars: usize,
    /// Bytes of activations this layer produces per inference.
    pub output_bytes: usize,
}

/// A layer's assigned tile range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileAssignment {
    /// First tile index used by the layer.
    pub first_tile: usize,
    /// Number of tiles used (≥ 1).
    pub tiles: usize,
    /// MCUs used in total.
    pub mcus: usize,
}

impl TileAssignment {
    /// The tile that forwards this layer's outputs (its last tile).
    pub fn egress_tile(&self) -> usize {
        self.first_tile + self.tiles - 1
    }
}

/// Result of placing a whole model on the chip.
#[derive(Clone, Debug, PartialEq)]
pub struct ChipPlacement {
    assignments: Vec<TileAssignment>,
    mesh_side: usize,
    total_tiles: usize,
}

/// Error placing a model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// The model needs more tiles than the chip has; carries the shortfall.
    DoesNotFit {
        /// Tiles required.
        required: usize,
        /// Tiles available.
        available: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::DoesNotFit {
                required,
                available,
            } => write!(
                f,
                "model needs {required} tiles but the chip has {available}"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

impl ChipPlacement {
    /// Places layers onto tiles greedily in layer order (each layer gets
    /// whole tiles; layers never share a tile, as in ISAAC/FORMS where a
    /// layer is mapped to one or multiple tiles).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::DoesNotFit`] if the model exceeds the
    /// chip's 168 tiles.
    pub fn place(mcu: &McuConfig, layers: &[LayerPlacement]) -> Result<Self, PlacementError> {
        let xbars_per_tile = mcu.crossbars * MCUS_PER_TILE;
        let mut assignments = Vec::with_capacity(layers.len());
        let mut next_tile = 0usize;
        for layer in layers {
            let mcus = layer.crossbars.div_ceil(mcu.crossbars).max(1);
            let tiles = layer.crossbars.div_ceil(xbars_per_tile).max(1);
            assignments.push(TileAssignment {
                first_tile: next_tile,
                tiles,
                mcus,
            });
            next_tile += tiles;
        }
        if next_tile > CHIP_TILES {
            return Err(PlacementError::DoesNotFit {
                required: next_tile,
                available: CHIP_TILES,
            });
        }
        // Smallest square mesh that covers the used tiles (the physical
        // chip is a fixed 13×13 = 169 ≥ 168 mesh; a smaller model occupies
        // a corner of it).
        let mesh_side = (1..=13).find(|s| s * s >= next_tile.max(1)).unwrap_or(13);
        Ok(Self {
            assignments,
            mesh_side,
            total_tiles: next_tile,
        })
    }

    /// Per-layer assignments, in layer order.
    pub fn assignments(&self) -> &[TileAssignment] {
        &self.assignments
    }

    /// Tiles used in total.
    pub fn total_tiles(&self) -> usize {
        self.total_tiles
    }

    /// Side length of the occupied mesh region.
    pub fn mesh_side(&self) -> usize {
        self.mesh_side
    }

    /// Mesh coordinates of a tile (row-major snake order, the common
    /// layout that keeps consecutive tiles adjacent).
    pub fn tile_coords(&self, tile: usize) -> (usize, usize) {
        let row = tile / self.mesh_side;
        let col = tile % self.mesh_side;
        if row.is_multiple_of(2) {
            (row, col)
        } else {
            (row, self.mesh_side - 1 - col)
        }
    }

    /// Manhattan hop count between two tiles on the mesh.
    pub fn hops(&self, from: usize, to: usize) -> usize {
        let (r1, c1) = self.tile_coords(from);
        let (r2, c2) = self.tile_coords(to);
        r1.abs_diff(r2) + c1.abs_diff(c2)
    }

    /// Total hop·bytes of inter-layer traffic per inference: each layer's
    /// output travels from its egress tile to the next layer's first tile.
    #[allow(clippy::needless_range_loop)] // several arrays are co-indexed
    pub fn traffic_hop_bytes(&self, layers: &[LayerPlacement]) -> u64 {
        assert_eq!(layers.len(), self.assignments.len(), "layer count mismatch");
        let mut total = 0u64;
        for i in 0..self.assignments.len().saturating_sub(1) {
            let hops = self.hops(
                self.assignments[i].egress_tile(),
                self.assignments[i + 1].first_tile,
            ) as u64;
            total += hops * layers[i].output_bytes as u64;
        }
        total
    }

    /// Mesh transfer time per inference at `bytes_per_hop_ns` (bytes a link
    /// moves per nanosecond), assuming transfers pipeline with compute and
    /// only the bottleneck link matters — returns the *worst single
    /// transfer* latency in ns.
    #[allow(clippy::needless_range_loop)] // several arrays are co-indexed
    pub fn worst_transfer_ns(&self, layers: &[LayerPlacement], bytes_per_ns: f64) -> f64 {
        assert!(bytes_per_ns > 0.0, "bandwidth must be positive");
        let mut worst: f64 = 0.0;
        for i in 0..self.assignments.len().saturating_sub(1) {
            let hops = self.hops(
                self.assignments[i].egress_tile(),
                self.assignments[i + 1].first_tile,
            ) as f64;
            let t = layers[i].output_bytes as f64 / bytes_per_ns + hops;
            worst = worst.max(t);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(crossbars: usize, output_bytes: usize) -> LayerPlacement {
        LayerPlacement {
            crossbars,
            output_bytes,
        }
    }

    #[test]
    fn small_model_uses_few_tiles() {
        let mcu = McuConfig::forms(8);
        let p = ChipPlacement::place(&mcu, &[layer(8, 100), layer(96, 100)]).unwrap();
        // 8 crossbars = 1 MCU = 1 tile; 96 crossbars = 12 MCUs = 1 tile.
        assert_eq!(p.total_tiles(), 2);
        assert_eq!(p.assignments()[0].tiles, 1);
        assert_eq!(p.assignments()[1].mcus, 12);
    }

    #[test]
    fn large_layer_spans_tiles() {
        let mcu = McuConfig::forms(8);
        let p = ChipPlacement::place(&mcu, &[layer(200, 0)]).unwrap();
        // 200 crossbars / (8×12 per tile) = 3 tiles.
        assert_eq!(p.assignments()[0].tiles, 3);
    }

    #[test]
    fn oversized_model_is_rejected() {
        let mcu = McuConfig::forms(8);
        let layers = vec![layer(96 * 2, 0); 100]; // 200 tiles
        let err = ChipPlacement::place(&mcu, &layers).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::DoesNotFit { required: 200, .. }
        ));
    }

    #[test]
    fn snake_order_keeps_consecutive_tiles_adjacent() {
        let mcu = McuConfig::forms(8);
        let layers = vec![layer(96, 64); 9]; // one tile each, 3×3 mesh
        let p = ChipPlacement::place(&mcu, &layers).unwrap();
        assert_eq!(p.mesh_side(), 3);
        for t in 0..8 {
            assert_eq!(p.hops(t, t + 1), 1, "tiles {t}->{} not adjacent", t + 1);
        }
    }

    #[test]
    fn traffic_counts_hop_bytes() {
        let mcu = McuConfig::forms(8);
        let layers = vec![layer(96, 128), layer(96, 64), layer(96, 32)];
        let p = ChipPlacement::place(&mcu, &layers).unwrap();
        // Adjacent tiles: 1 hop each → 128 + 64 hop·bytes.
        assert_eq!(p.traffic_hop_bytes(&layers), 128 + 64);
    }

    #[test]
    fn worst_transfer_latency_reflects_bandwidth() {
        let mcu = McuConfig::forms(8);
        let layers = vec![layer(96, 1000), layer(96, 10)];
        let p = ChipPlacement::place(&mcu, &layers).unwrap();
        let fast = p.worst_transfer_ns(&layers, 100.0);
        let slow = p.worst_transfer_ns(&layers, 10.0);
        assert!(slow > fast);
    }
}
